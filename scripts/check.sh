#!/usr/bin/env bash
# Offline CI gate: build, test, lint — no network required.
#
#   scripts/check.sh            # the full gate
#   scripts/check.sh --quick    # skip clippy (fast inner loop)
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo fmt --all --check
cargo build --workspace --release
cargo test --workspace -q

if [[ "${1:-}" != "--quick" ]]; then
    cargo clippy --workspace --all-targets -- -D warnings
fi

# Certified verdicts on the case-study examples: every counterexample must
# replay through the reference interpreter and every proof must survive
# its independent re-check — any certificate rejection fails the gate.
# (Exit 2 = property violated, which the examples are; only exit 1 is an
# error.)
for model in examples/models/step_counter.vd examples/models/leaky_bucket.vd; do
    status=0
    out=$(./target/release/verdict check "$model" --certify --json) || status=$?
    if [[ $status != 0 && $status != 2 ]]; then
        echo "check.sh: verdict check failed on $model (exit $status)" >&2
        exit 1
    fi
    if grep -q '"certificate":"rejected"' <<<"$out"; then
        echo "check.sh: certificate REJECTED on $model" >&2
        echo "$out" >&2
        exit 1
    fi
done

# Incremental-synthesis smoke: one repetition on the small test topology.
# The bench binary asserts the incremental sweep is verdict-for-verdict
# identical to the clone path before it reports any timing, so this also
# gates correctness, not just that the binary runs.
synth_out=$(mktemp)
trap 'rm -f "$synth_out"' EXIT
./target/release/synth --topology test --reps 1 --out "$synth_out" >/dev/null

echo "check.sh: all green"
