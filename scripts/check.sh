#!/usr/bin/env bash
# Offline CI gate: build, test, lint — no network required.
#
#   scripts/check.sh            # the full gate
#   scripts/check.sh --quick    # skip clippy (fast inner loop)
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --workspace --release
cargo test --workspace -q

if [[ "${1:-}" != "--quick" ]]; then
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "check.sh: all green"
