#!/usr/bin/env bash
# Offline CI gate: build, test, lint — no network required.
#
#   scripts/check.sh            # the full gate
#   scripts/check.sh --quick    # skip clippy (fast inner loop)
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo build --workspace --release
cargo test --workspace -q

if [[ "${1:-}" != "--quick" ]]; then
    cargo clippy --workspace --all-targets -- -D warnings
fi

# Certified verdicts on the case-study examples: every counterexample must
# replay through the reference interpreter and every proof must survive
# its independent re-check — any certificate rejection fails the gate.
# (Exit 2 = property violated, which the examples are; only exit 1 is an
# error.)
for model in examples/models/step_counter.vd examples/models/leaky_bucket.vd; do
    status=0
    out=$(./target/release/verdict check "$model" --certify --json) || status=$?
    if [[ $status != 0 && $status != 2 ]]; then
        echo "check.sh: verdict check failed on $model (exit $status)" >&2
        exit 1
    fi
    if grep -q '"certificate":"rejected"' <<<"$out"; then
        echo "check.sh: certificate REJECTED on $model" >&2
        echo "$out" >&2
        exit 1
    fi
done

echo "check.sh: all green"
