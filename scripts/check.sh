#!/usr/bin/env bash
# Offline CI gate: build, test, lint — no network required.
#
#   scripts/check.sh            # the full gate
#   scripts/check.sh --quick    # skip clippy (fast inner loop)
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

cargo fmt --all --check
cargo build --workspace --release
cargo test --workspace -q

if [[ "${1:-}" != "--quick" ]]; then
    cargo clippy --workspace --all-targets -- -D warnings
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q
    # Lock-free runtime stress lane: long-running SPSC/doorbell/published
    # interleaving tests, feature-gated out of the default suite.
    cargo test -p verdict-ring --features stress -q
    # Output-contract guard: `verdict schema` against the frozen schema-2
    # baseline — removing or retyping a documented field without bumping
    # STATS_SCHEMA_VERSION fails here.
    cargo test -p verdict-cli --test schema_compat -q
fi

# Certified verdicts on the case-study examples: every counterexample must
# replay through the reference interpreter and every proof must survive
# its independent re-check — any certificate rejection fails the gate.
# (Exit 2 = property violated, which the examples are; only exit 1 is an
# error.)
for model in examples/models/step_counter.vd examples/models/leaky_bucket.vd; do
    status=0
    out=$(./target/release/verdict check "$model" --certify --json) || status=$?
    if [[ $status != 0 && $status != 2 ]]; then
        echo "check.sh: verdict check failed on $model (exit $status)" >&2
        exit 1
    fi
    if grep -q '"certificate":"rejected"' <<<"$out"; then
        echo "check.sh: certificate REJECTED on $model" >&2
        echo "$out" >&2
        exit 1
    fi
done

# Observability smoke: --stats --json must emit the versioned schema-2
# document with nonzero counters and per-depth timings, and --trace must
# write parseable JSONL, on both case-study models.
stats_smoke_dir=$(mktemp -d)
for model in examples/models/step_counter.vd examples/models/leaky_bucket.vd; do
    trace_file="$stats_smoke_dir/$(basename "$model").trace.jsonl"
    status=0
    out=$(./target/release/verdict check "$model" --stats --json --trace "$trace_file") \
        || status=$?
    if [[ $status != 0 && $status != 2 ]]; then
        echo "check.sh: verdict check --stats failed on $model (exit $status)" >&2
        exit 1
    fi
    for field in '^{"schema":2,' '"stats":{"schema":2' '"depths":\[{"depth":' \
                 '"phases":{"encode_us":' '"contenders":\['; do
        if ! grep -qE "$field" <<<"$out"; then
            echo "check.sh: --stats --json on $model missing $field" >&2
            echo "$out" >&2
            exit 1
        fi
    done
    # At least one counter group reports work (the determinism tests pin
    # exact values; here we only require non-emptiness).
    if ! grep -qE '"(decisions|pivots|nodes_allocated|states_visited)":[1-9]' <<<"$out"; then
        echo "check.sh: --stats --json on $model has all-zero counters" >&2
        echo "$out" >&2
        exit 1
    fi
    if [[ ! -s "$trace_file" ]]; then
        echo "check.sh: --trace wrote nothing for $model" >&2
        exit 1
    fi
    if grep -vqE '^\{"ts_us":[0-9]+,"kind":"(span|depth|mark)",' "$trace_file"; then
        echo "check.sh: malformed trace line in $trace_file" >&2
        grep -vE '^\{"ts_us":[0-9]+,"kind":"(span|depth|mark)",' "$trace_file" | head >&2
        exit 1
    fi
done
rm -rf "$stats_smoke_dir"

# Incremental-synthesis smoke on the small test topology, at jobs 1 and
# jobs 2. The bench binary asserts the incremental sweep is
# verdict-for-verdict identical to the clone path before it reports any
# timing, so this also gates correctness, not just that the binary runs.
synth_out=$(mktemp)
smoke_dir=$(mktemp -d)
trap 'rm -f "$synth_out"; rm -rf "$smoke_dir"' EXIT
./target/release/synth --topology test --jobs 2 --reps 2 --out "$synth_out" >/dev/null
# The ring-based runtime must not make jobs=2 slower than jobs=1: allow
# 15% plus a 50ms epsilon for thread spin-up and timer noise on starved
# (single-core CI) hosts. Each case line carries incremental_secs twice,
# jobs1 first, jobs2 second.
while read -r j1 j2; do
    awk -v j1="$j1" -v j2="$j2" 'BEGIN { exit !(j2 <= j1 * 1.15 + 0.05) }' || {
        echo "check.sh: jobs=2 incremental sweep regressed: ${j2}s vs ${j1}s at jobs=1" >&2
        cat "$synth_out" >&2
        exit 1
    }
done < <(grep -o '"incremental_secs": [0-9.]*' "$synth_out" | awk '{print $2}' | paste - -)

# Kill-and-resume smoke: SIGINT a journaled sweep mid-flight, resume it,
# and require the verdict map to match an uninterrupted run exactly
# (wall-clock stripped).
cat >"$smoke_dir/sweep.vd" <<'VD'
system smoke {
    var n : 0..120;
    param a : 1..8;
    param b : 1..8;
    init n = 0;
    trans next(n) = if n <= 100 then n + a + b else n;
    invariant miss: n != 37;
}
VD
clean=$(./target/release/verdict synth "$smoke_dir/sweep.vd" --params a,b --json \
    | sed 's/"wall_ms":[0-9]*//')
./target/release/verdict synth "$smoke_dir/sweep.vd" --params a,b \
    --journal "$smoke_dir/sweep.jsonl" --json >/dev/null &
victim=$!
for _ in $(seq 1 500); do
    if [[ $(grep -c '"type":"verdict"' "$smoke_dir/sweep.jsonl" 2>/dev/null || true) -ge 3 ]]; then
        break
    fi
    sleep 0.01
done
kill -INT "$victim" 2>/dev/null || true
wait "$victim" || true   # 130 when interrupted mid-run; 0 if it finished first
resumed=$(./target/release/verdict synth "$smoke_dir/sweep.vd" --params a,b \
    --resume "$smoke_dir/sweep.jsonl" --json 2>/dev/null \
    | sed 's/"wall_ms":[0-9]*//')
if [[ "$resumed" != "$clean" ]]; then
    echo "check.sh: resumed sweep differs from uninterrupted run" >&2
    diff <(echo "$clean") <(echo "$resumed") >&2 || true
    exit 1
fi

# Fault-injection smoke: an injected worker panic plus retries must land
# on the clean verdict map; without retries it must not crash.
faulted=$(./target/release/verdict synth "$smoke_dir/sweep.vd" --params a,b \
    --fault mc.synth.worker:panic:1 --retries 2 --retry-backoff-ms 0 --json 2>/dev/null \
    | sed 's/"wall_ms":[0-9]*//; s/"attempts":[0-9]*//g')
clean_noattempts=$(sed 's/"attempts":[0-9]*//g' <<<"$clean")
if [[ "$faulted" != "$clean_noattempts" ]]; then
    echo "check.sh: faulted+retried sweep differs from clean run" >&2
    exit 1
fi
./target/release/verdict synth "$smoke_dir/sweep.vd" --params a,b \
    --fault mc.synth.worker:panic:1 --json >/dev/null 2>&1 \
    || { echo "check.sh: fault injection crashed the sweep" >&2; exit 1; }

# Verdict-as-a-service lane: run the daemon, complete both case studies
# through it, leave a slow job mid-flight, SIGKILL the daemon, restart on
# the same WAL, and require (a) the recovery banner to account for every
# acknowledged job — decided ones trusted, the interrupted one requeued —
# and (b) a SIGTERM drain that exits 0.
srv_dir="$smoke_dir/server"
mkdir -p "$srv_dir"
cat >"$srv_dir/slow.vd" <<'VD'
system slow {
    var n : 0..20000;
    init n = 0;
    trans next(n) = if n < 20000 then n + 1 else n;
    invariant nonneg: n >= 0;
}
VD
./target/release/verdict serve --socket "$srv_dir/sock" --wal "$srv_dir/wal" \
    --workers 2 --grace 5 2>"$srv_dir/serve1.log" &
daemon=$!
for _ in $(seq 1 500); do [[ -S "$srv_dir/sock" ]] && break; sleep 0.01; done
for model in examples/models/step_counter.vd examples/models/leaky_bucket.vd; do
    status=0
    ./target/release/verdict submit "$model" --socket "$srv_dir/sock" --json \
        >>"$srv_dir/submits.json" || status=$?
    if [[ $status != 0 && $status != 2 ]]; then
        echo "check.sh: verdict submit failed on $model (exit $status)" >&2
        cat "$srv_dir/serve1.log" >&2
        exit 1
    fi
done
# A job the explicit engine grinds on (but abandons promptly when asked):
# acknowledged durably, still running when the daemon dies.
./target/release/verdict submit "$srv_dir/slow.vd" --socket "$srv_dir/sock" \
    --engine explicit --deadline 60 --no-wait >/dev/null
sleep 0.3
kill -9 "$daemon" 2>/dev/null || true
wait "$daemon" 2>/dev/null || true

./target/release/verdict serve --socket "$srv_dir/sock" --wal "$srv_dir/wal" \
    --workers 2 --grace 1 2>"$srv_dir/serve2.log" &
daemon=$!
# The socket binds inside Server::open but the recovery banner prints
# just after it returns — poll the log, not the socket.
for _ in $(seq 1 500); do
    grep -q "recovered" "$srv_dir/serve2.log" 2>/dev/null && break
    sleep 0.01
done
if ! grep -q "recovered 2 trusted, 1 requeued, 0 cancelled" "$srv_dir/serve2.log"; then
    echo "check.sh: daemon restart did not recover the WAL as expected" >&2
    cat "$srv_dir/serve2.log" >&2
    exit 1
fi
stats=$(./target/release/verdict server-stats --socket "$srv_dir/sock")
if ! grep -q '"jobs_recovered":3' <<<"$stats"; then
    echo "check.sh: server stats missing recovered jobs" >&2
    echo "$stats" >&2
    exit 1
fi
kill -TERM "$daemon" 2>/dev/null || true
drain_status=0
wait "$daemon" || drain_status=$?
if [[ $drain_status != 0 ]]; then
    echo "check.sh: SIGTERM drain exited $drain_status (want 0)" >&2
    cat "$srv_dir/serve2.log" >&2
    exit 1
fi
if ! grep -q "drained clean" "$srv_dir/serve2.log"; then
    echo "check.sh: drain summary missing from daemon log" >&2
    cat "$srv_dir/serve2.log" >&2
    exit 1
fi

# Self-healing chaos lane: a daemon with injected worker panics and a
# worker hang must (a) contain each panic into an honest engine-failure
# verdict, (b) quarantine the crash-looping spec and honor unquarantine,
# (c) abandon the hung worker via the watchdog and respawn the slot,
# (d) still serve the reference verdicts to concurrent submitters once
# the faults are exhausted, and (e) drain clean on SIGTERM.
chaos_dir="$smoke_dir/chaos"
mkdir -p "$chaos_dir"
cat >"$chaos_dir/sac.vd" <<'VD'
system sacrificial {
    var n : 0..7;
    init n = 0;
    trans next(n) = if n < 7 then n + 1 else n;
    invariant in_range: n <= 7;
}
VD
# The hang probe sits ahead of the panic probe and counts one arrival
# per execution, so the schedule is exact: executions 1 and 2 panic,
# executions 3 and 4 (the two concurrent slow jobs) hang — wedging the
# entire two-worker fleet at once.
./target/release/verdict serve --socket "$chaos_dir/sock" --wal "$chaos_dir/wal" \
    --workers 2 --grace 5 --watchdog-grace-ms 250 --quarantine-after 2 --no-hedge \
    --fault 'server.worker.panic:panic:1,server.worker.panic:panic:2,server.worker.hang:panic:3,server.worker.hang:panic:4' \
    2>"$chaos_dir/serve.log" &
daemon=$!
for _ in $(seq 1 500); do [[ -S "$chaos_dir/sock" ]] && break; sleep 0.01; done
# Two injected panics on the same spec: both contained, second one arms
# the circuit breaker.
for i in 1 2; do
    status=0
    out=$(./target/release/verdict submit "$chaos_dir/sac.vd" \
        --socket "$chaos_dir/sock" --json) || status=$?
    if [[ $status != 1 ]] || ! grep -q '"reason":"engine-failure"' <<<"$out"; then
        echo "check.sh: chaos panic $i not contained (exit $status)" >&2
        echo "$out" >&2
        cat "$chaos_dir/serve.log" >&2
        exit 1
    fi
done
status=0
out=$(./target/release/verdict submit "$chaos_dir/sac.vd" \
    --socket "$chaos_dir/sock" --json) || status=$?
if [[ $status != 1 ]] || ! grep -q '"reason":"quarantined"' <<<"$out"; then
    echo "check.sh: crash-looping spec was not quarantined (exit $status)" >&2
    echo "$out" >&2
    exit 1
fi
fp=$(grep -o '"fingerprint":"[0-9a-f]*"' <<<"$out" | cut -d'"' -f4)
# Wedge BOTH workers at once: two concurrent jobs hang past their
# deadline, the watchdog escalates each, abandons both threads,
# respawns both slots, and each job returns an honest unknown.
hang_pids=()
for i in 1 2; do
    ./target/release/verdict submit "$srv_dir/slow.vd" --socket "$chaos_dir/sock" \
        --engine explicit --deadline 1 --json >"$chaos_dir/hang.$i.json" &
    hang_pids+=($!)
done
for i in 1 2; do
    status=0
    wait "${hang_pids[$((i - 1))]}" || status=$?
    if [[ $status != 1 ]] || ! grep -q '"reason":"hung-worker"' "$chaos_dir/hang.$i.json"; then
        echo "check.sh: wedged worker $i did not yield unknown/hung-worker (exit $status)" >&2
        cat "$chaos_dir/hang.$i.json" "$chaos_dir/serve.log" >&2
        exit 1
    fi
done
# Lift the quarantine; the spec (faults exhausted) now runs clean on a
# respawned slot.
./target/release/verdict unquarantine --socket "$chaos_dir/sock" "$fp" >/dev/null
status=0
./target/release/verdict submit "$chaos_dir/sac.vd" --socket "$chaos_dir/sock" \
    >/dev/null || status=$?
if [[ $status != 0 ]]; then
    echo "check.sh: unquarantined spec failed to run clean (exit $status)" >&2
    cat "$chaos_dir/serve.log" >&2
    exit 1
fi
# Four concurrent submitters of the reference case studies: every
# verdict must match the local reference run, despite the earlier chaos.
ref_verdicts=$(for model in examples/models/step_counter.vd examples/models/leaky_bucket.vd; do
    ./target/release/verdict check "$model" --json || true
done | grep -o '"verdict":"[a-z]*"' | sort)
pids=()
for i in 1 2; do
    for model in examples/models/step_counter.vd examples/models/leaky_bucket.vd; do
        ./target/release/verdict submit "$model" --socket "$chaos_dir/sock" --json \
            >"$chaos_dir/sub.$i.$(basename "$model").json" &
        pids+=($!)
    done
done
for pid in "${pids[@]}"; do
    status=0
    wait "$pid" || status=$?
    if [[ $status != 0 && $status != 2 ]]; then
        echo "check.sh: concurrent chaos submit failed (exit $status)" >&2
        cat "$chaos_dir"/sub.*.json >&2
        exit 1
    fi
done
got_verdicts=$(cat "$chaos_dir"/sub.*.json | grep -o '"verdict":"[a-z]*"' | sort)
if [[ "$got_verdicts" != "$(printf '%s\n%s\n' "$ref_verdicts" "$ref_verdicts" | sort)" ]]; then
    echo "check.sh: chaos-lane verdicts diverge from the reference run" >&2
    diff <(echo "$ref_verdicts") <(echo "$got_verdicts") >&2 || true
    exit 1
fi
# The supervision counters must have seen the whole story.
stats=$(./target/release/verdict server-stats --socket "$chaos_dir/sock")
for probe in '"escalations":[1-9]' '"hung_workers":[1-9]' \
             '"workers_respawned":[1-9]' '"quarantine_hits":[1-9]' \
             '"quarantined":[1-9]'; do
    if ! grep -qE "$probe" <<<"$stats"; then
        echo "check.sh: chaos-lane stats missing $probe" >&2
        echo "$stats" >&2
        exit 1
    fi
done
kill -TERM "$daemon" 2>/dev/null || true
drain_status=0
wait "$daemon" || drain_status=$?
if [[ $drain_status != 0 ]] || ! grep -q "drained clean" "$chaos_dir/serve.log"; then
    echo "check.sh: chaos-lane SIGTERM drain exited $drain_status (want 0, clean)" >&2
    cat "$chaos_dir/serve.log" >&2
    exit 1
fi

# Hedged re-execution smoke: a job the explicit engine grinds on must be
# rescued by a speculative portfolio run — same verdict an unhedged run
# would reach, delivered promptly, with the certificate checked.
hedge_dir="$smoke_dir/hedge"
mkdir -p "$hedge_dir"
./target/release/verdict serve --socket "$hedge_dir/sock" --wal "$hedge_dir/wal" \
    --workers 2 --grace 5 --hedge-after-ms 100 2>"$hedge_dir/serve.log" &
daemon=$!
for _ in $(seq 1 500); do [[ -S "$hedge_dir/sock" ]] && break; sleep 0.01; done
status=0
out=$(timeout 60 ./target/release/verdict submit "$srv_dir/slow.vd" \
    --socket "$hedge_dir/sock" --engine explicit --deadline 120 --certify --json) \
    || status=$?
if [[ $status != 0 ]] || ! grep -q '"verdict":"safe"' <<<"$out"; then
    echo "check.sh: hedge did not rescue the slow primary (exit $status)" >&2
    echo "$out" >&2
    cat "$hedge_dir/serve.log" >&2
    exit 1
fi
stats=$(./target/release/verdict server-stats --socket "$hedge_dir/sock")
if ! grep -qE '"hedges_won":[1-9]' <<<"$stats"; then
    echo "check.sh: hedge smoke ran but hedges_won is zero" >&2
    echo "$stats" >&2
    exit 1
fi
kill -TERM "$daemon" 2>/dev/null || true
wait "$daemon" || { echo "check.sh: hedge-lane drain failed" >&2; exit 1; }

# Partitioned symbolic engine lane.
# (a) The partitioned relation is a pure optimization: partitioned and
# monolithic BDD runs must produce identical verdicts (and traces) on
# the finite case studies. (Exit 2 = violated is expected; wall times
# stripped before comparing.)
for model in examples/models/step_counter.vd examples/models/taint_loop.vd; do
    part_status=0 mono_status=0
    part=$(./target/release/verdict check "$model" --engine bdd --json \
        | sed 's/"wall_ms":[0-9]*//') || part_status=$?
    mono=$(./target/release/verdict check "$model" --engine bdd --bdd-monolithic --json \
        | sed 's/"wall_ms":[0-9]*//') || mono_status=$?
    for s in "$part_status" "$mono_status"; do
        if [[ $s != 0 && $s != 2 ]]; then
            echo "check.sh: BDD check failed on $model (exit $s)" >&2
            exit 1
        fi
    done
    if [[ "$part" != "$mono" || "$part_status" != "$mono_status" ]]; then
        echo "check.sh: partitioned and monolithic BDD disagree on $model" >&2
        diff <(echo "$part") <(echo "$mono") >&2 || true
        exit 1
    fi
done
# (b) Memory-safety regression: a tiny node ceiling must degrade to a
# prompt, explicit resource-exhausted Unknown (exit 1), never a crash,
# wrong verdict, or timeout-length thrash.
ceiling_status=0
ceiling=$(timeout 30 ./target/release/verdict check examples/models/step_counter.vd \
    --engine bdd --max-bdd-nodes 40 --json) || ceiling_status=$?
if [[ $ceiling_status != 1 ]] || ! grep -q 'resource budget exhausted' <<<"$ceiling"; then
    echo "check.sh: tiny --max-bdd-nodes did not fail promptly (exit $ceiling_status)" >&2
    echo "$ceiling" >&2
    exit 1
fi
# (c) The fat-tree sweep the partitioning exists for: k up to 6 must
# verify under the partitioned relation within the lane budget. The
# bench binary itself asserts mono/part verdict agreement wherever both
# are definitive before writing a line of JSON.
bdd_bench="$smoke_dir/bench_bdd.json"
timeout 600 ./target/release/bdd --max-arity 6 --timeout-secs 120 --out "$bdd_bench" \
    >/dev/null \
    || { echo "check.sh: BDD bench sweep failed" >&2; exit 1; }
if ! grep '"topology": "fattree6"' "$bdd_bench" \
    | grep -q '"partitioned": {"verdict": "holds"'; then
    echo "check.sh: fattree6 did not verify under the partitioned relation" >&2
    cat "$bdd_bench" >&2
    exit 1
fi

# Scenario-factory lane: enumerate the incident-driven matrix, sweep it
# locally under --certify, and push one pattern through a daemon.
# Required: (a) the enumeration floor — at least 40 instances spanning
# all five interference patterns, each mapped to at least one Table 1
# incident; (b) every engine verdict matches its ground-truth
# expectation (exit 0; the deliberately-unsafe grid points certify
# their counterexamples); (c) the through-server report is identical to
# the local one modulo the "mode" tag; (d) the exit-code contract
# rejects a bogus pattern with a usage error.
scen_dir="$smoke_dir/scenarios"
mkdir -p "$scen_dir"
listing=$(./target/release/verdict scenarios --list --json)
n_instances=$(grep -o '"id":' <<<"$listing" | wc -l)
if [[ $n_instances -lt 40 ]]; then
    echo "check.sh: scenario matrix floor: $n_instances < 40 instances" >&2
    exit 1
fi
for p in rollout-lb autoscaler-descheduler cascading-failover config-canary split-brain; do
    if ! grep -q "\"pattern\":\"$p\"" <<<"$listing"; then
        echo "check.sh: scenario matrix missing pattern $p" >&2
        exit 1
    fi
done
status=0
scen_local=$(./target/release/verdict scenarios --certify --json) || status=$?
if [[ $status != 0 ]]; then
    echo "check.sh: certified scenario sweep exited $status (want 0: all matched)" >&2
    echo "$scen_local" >&2
    exit 1
fi
if grep -qE '"(mismatched|infra)":[1-9]' <<<"$scen_local"; then
    echo "check.sh: scenario sweep rollup reports mismatches/infra failures" >&2
    echo "$scen_local" >&2
    exit 1
fi
if grep -q '"incidents":\[\]' <<<"$scen_local"; then
    echo "check.sh: a scenario pattern maps to no Table 1 incident" >&2
    exit 1
fi
./target/release/verdict serve --socket "$scen_dir/sock" --wal "$scen_dir/wal" \
    --workers 2 --grace 5 2>"$scen_dir/serve.log" &
daemon=$!
for _ in $(seq 1 500); do [[ -S "$scen_dir/sock" ]] && break; sleep 0.01; done
status=0
scen_srv=$(./target/release/verdict scenarios --pattern config-canary \
    --socket "$scen_dir/sock" --json) || status=$?
if [[ $status != 0 ]]; then
    echo "check.sh: through-server scenario sweep exited $status" >&2
    cat "$scen_dir/serve.log" >&2
    exit 1
fi
scen_ref=$(./target/release/verdict scenarios --pattern config-canary --json) \
    || { echo "check.sh: local config-canary sweep failed" >&2; exit 1; }
if [[ "$(sed 's/"mode":"server"/"mode":"-"/' <<<"$scen_srv")" \
   != "$(sed 's/"mode":"local"/"mode":"-"/' <<<"$scen_ref")" ]]; then
    echo "check.sh: local and through-server scenario reports diverge" >&2
    diff <(echo "$scen_ref") <(echo "$scen_srv") >&2 || true
    exit 1
fi
kill -TERM "$daemon" 2>/dev/null || true
wait "$daemon" || { echo "check.sh: scenario-lane drain failed" >&2; exit 1; }
if ./target/release/verdict scenarios --pattern bogus >/dev/null 2>&1; then
    echo "check.sh: bogus pattern did not fail with a usage error" >&2
    exit 1
fi

echo "check.sh: all green"
