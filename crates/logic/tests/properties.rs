//! Property-based tests for `verdict-logic`: rational field laws and
//! Tseitin equisatisfiability on random formulas.
//!
//! Compiled only with `--features proptest`: the offline build container
//! cannot fetch the proptest dev-dependency, so it has been removed from
//! Cargo.toml — restore it there before enabling the feature.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use verdict_logic::{Formula, Rational, Tseitin, Var};

/// Strategy for rationals with small components (keeps products in range).
fn small_rational() -> impl Strategy<Value = Rational> {
    (-1000i128..1000, 1i128..1000).prop_map(|(n, d)| Rational::new(n, d))
}

proptest! {
    #[test]
    fn rational_add_commutes(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn rational_mul_commutes(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn rational_add_associates(
        a in small_rational(), b in small_rational(), c in small_rational()
    ) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn rational_distributes(
        a in small_rational(), b in small_rational(), c in small_rational()
    ) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn rational_sub_neg(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a - b, a + (-b));
        prop_assert_eq!(a - a, Rational::ZERO);
    }

    #[test]
    fn rational_div_inverts(a in small_rational(), b in small_rational()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!((a / b) * b, a);
    }

    #[test]
    fn rational_order_total(a in small_rational(), b in small_rational()) {
        let lt = a < b;
        let gt = a > b;
        let eq = a == b;
        prop_assert_eq!(u8::from(lt) + u8::from(gt) + u8::from(eq), 1);
        // Order respects addition.
        if lt {
            prop_assert!(a + Rational::ONE <= b + Rational::ONE);
        }
    }

    #[test]
    fn rational_display_parses_back(a in small_rational()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Rational>().unwrap(), a);
    }

    #[test]
    fn rational_floor_ceil_bracket(a in small_rational()) {
        let f = Rational::integer(a.floor());
        let c = Rational::integer(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!(c - f <= Rational::ONE);
    }
}

/// Random formula over `n` variables with bounded depth.
fn formula(n: u32, depth: u32) -> BoxedStrategy<Formula> {
    let leaf = prop_oneof![
        (0..n).prop_map(|i| Formula::var(Var(i))),
        Just(Formula::tt()),
        Just(Formula::ff()),
    ];
    leaf.prop_recursive(depth, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.xor(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.iff(b)),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| Formula::ite(c, t, e)),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For every input assignment, the Tseitin CNF (with inputs fixed) is
    /// satisfiable iff the formula evaluates true — full functional
    /// equivalence of the encoding, brute-forced over auxiliary variables.
    #[test]
    fn tseitin_is_faithful(f in formula(4, 3)) {
        let n = 4u32;
        let mut enc = Tseitin::new();
        enc.reserve_inputs(n);
        enc.assert(&f);
        let cnf = enc.into_cnf();
        let aux = cnf.num_vars() - n;
        prop_assume!(aux <= 14);
        for bits in 0u32..1 << n {
            let fval = f.eval(&|v| bits >> v.0 & 1 == 1);
            let sat = (0u64..1u64 << aux).any(|aux_bits| {
                let assignment: Vec<bool> = (0..cnf.num_vars())
                    .map(|i| if i < n {
                        bits >> i & 1 == 1
                    } else {
                        aux_bits >> (i - n) & 1 == 1
                    })
                    .collect();
                cnf.eval(&assignment)
            });
            prop_assert_eq!(fval, sat);
        }
    }

    /// eval is consistent with the simplifying constructors.
    #[test]
    fn constructors_preserve_semantics(f in formula(4, 3), bits in 0u32..16) {
        let assign = move |v: Var| bits >> v.0 & 1 == 1;
        prop_assert_eq!(f.clone().not().eval(&assign), !f.eval(&assign));
        let g = f.clone().and(f.clone());
        prop_assert_eq!(g.eval(&assign), f.eval(&assign));
        let h = f.clone().or(f.clone());
        prop_assert_eq!(h.eval(&assign), f.eval(&assign));
        let x = f.clone().xor(f.clone());
        prop_assert!(!x.eval(&assign));
    }
}
