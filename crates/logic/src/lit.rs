//! Boolean variables and literals.
//!
//! A [`Var`] is a dense index (0-based). A [`Lit`] packs a variable and a
//! polarity into one `u32` using the common `2 * var + sign` scheme, so a
//! literal can index watch lists directly and negation is a single XOR.

use std::fmt;
use std::ops::Not;

/// A Boolean variable, identified by a dense 0-based index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The variable's 0-based index, for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }

    /// Literal of this variable with the given polarity.
    #[inline]
    pub fn lit(self, positive: bool) -> Lit {
        Lit::new(self, positive)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable with a polarity.
///
/// Encoded as `2 * var + (positive ? 0 : 1)`, so `!lit` flips the low bit.
///
/// ```
/// use verdict_logic::{Lit, Var};
/// let x = Var(3);
/// let l = x.positive();
/// assert_eq!(!l, x.negative());
/// assert_eq!((!l).var(), x);
/// assert!(l.is_positive() && !(!l).is_positive());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Builds a literal from a variable and polarity.
    #[inline]
    pub fn new(var: Var, positive: bool) -> Lit {
        Lit(var.0 << 1 | u32::from(!positive))
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True iff the literal is the positive phase of its variable.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense index of the literal itself (for watch lists): `2v` or `2v+1`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::index`].
    #[inline]
    pub fn from_index(index: usize) -> Lit {
        Lit(index as u32)
    }

    /// DIMACS representation: 1-based, sign = polarity.
    pub fn to_dimacs(self) -> i64 {
        let v = i64::from(self.0 >> 1) + 1;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }

    /// Parses a DIMACS literal (non-zero 1-based signed integer).
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn from_dimacs(d: i64) -> Lit {
        assert!(d != 0, "DIMACS literal cannot be zero");
        Lit::new(Var((d.unsigned_abs() - 1) as u32), d > 0)
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "v{}", self.0 >> 1)
        } else {
            write!(f, "!v{}", self.0 >> 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_round_trips() {
        for idx in [0u32, 1, 2, 41, 1000] {
            let v = Var(idx);
            assert_eq!(v.positive().var(), v);
            assert_eq!(v.negative().var(), v);
            assert!(v.positive().is_positive());
            assert!(!v.negative().is_positive());
            assert_eq!(!v.positive(), v.negative());
            assert_eq!(!!v.positive(), v.positive());
            assert_eq!(Lit::from_index(v.positive().index()), v.positive());
        }
    }

    #[test]
    fn dimacs_round_trips() {
        for d in [1i64, -1, 5, -42] {
            assert_eq!(Lit::from_dimacs(d).to_dimacs(), d);
        }
        assert_eq!(Var(0).positive().to_dimacs(), 1);
        assert_eq!(Var(0).negative().to_dimacs(), -1);
    }

    #[test]
    #[should_panic(expected = "cannot be zero")]
    fn dimacs_zero_panics() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn display() {
        assert_eq!(Var(3).positive().to_string(), "v3");
        assert_eq!(Var(3).negative().to_string(), "!v3");
    }
}
