//! Propositional formula AST.
//!
//! [`Formula`] is a reference-counted tree over Boolean variables. The
//! constructors perform cheap constant folding and involution/idempotence
//! simplification so that naive formula construction in encoders does not
//! balloon; heavier normalization belongs to the Tseitin pass in
//! [`crate::cnf`].

use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;

use crate::lit::Var;

/// A propositional formula over [`Var`]s.
///
/// ```
/// use verdict_logic::{Formula, Var};
/// let x = Formula::var(Var(0));
/// let y = Formula::var(Var(1));
/// let f = x.clone().and(y.clone()).or(x.not());
/// assert!(f.eval(&|_| true)); // x & y
/// assert!(f.eval(&|_| false)); // !x is true
/// assert!(!f.eval(&|v| v == Var(0))); // x=1, y=0: both disjuncts false
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// A variable.
    Var(Var),
    /// Negation.
    Not(Rc<Formula>),
    /// N-ary conjunction (empty = true).
    And(Rc<Vec<Formula>>),
    /// N-ary disjunction (empty = false).
    Or(Rc<Vec<Formula>>),
    /// Exclusive or (binary).
    Xor(Rc<Formula>, Rc<Formula>),
    /// If-and-only-if (binary).
    Iff(Rc<Formula>, Rc<Formula>),
    /// If-then-else on formulas: `Ite(c, t, e)` means `(c ∧ t) ∨ (¬c ∧ e)`.
    Ite(Rc<Formula>, Rc<Formula>, Rc<Formula>),
}

impl Formula {
    /// The constant true.
    pub fn tt() -> Formula {
        Formula::True
    }

    /// The constant false.
    pub fn ff() -> Formula {
        Formula::False
    }

    /// A single-variable formula.
    pub fn var(v: Var) -> Formula {
        Formula::Var(v)
    }

    /// A literal as a formula: `v` or `¬v`.
    pub fn lit(v: Var, positive: bool) -> Formula {
        if positive {
            Formula::Var(v)
        } else {
            Formula::Var(v).not()
        }
    }

    /// Boolean constant as a formula.
    pub fn constant(b: bool) -> Formula {
        if b {
            Formula::True
        } else {
            Formula::False
        }
    }

    /// Negation with involution and constant folding.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        match self {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => inner.as_ref().clone(),
            other => Formula::Not(Rc::new(other)),
        }
    }

    /// Conjunction with unit/zero folding and flattening of nested `And`s.
    pub fn and(self, rhs: Formula) -> Formula {
        Formula::and_all([self, rhs])
    }

    /// Disjunction with unit/zero folding and flattening of nested `Or`s.
    pub fn or(self, rhs: Formula) -> Formula {
        Formula::or_all([self, rhs])
    }

    /// N-ary conjunction of an iterator of formulas.
    pub fn and_all<I: IntoIterator<Item = Formula>>(items: I) -> Formula {
        let mut parts = Vec::new();
        for f in items {
            match f {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(xs) => parts.extend(xs.iter().cloned()),
                other => parts.push(other),
            }
        }
        match parts.len() {
            0 => Formula::True,
            1 => parts.pop().expect("len checked"),
            _ => Formula::And(Rc::new(parts)),
        }
    }

    /// Raw binary conjunction without flattening — for encoder-generated
    /// shared DAGs, where the flattening constructors would copy child
    /// vectors quadratically.
    pub fn and_pair(a: Formula, b: Formula) -> Formula {
        match (&a, &b) {
            (Formula::False, _) | (_, Formula::False) => return Formula::False,
            (Formula::True, _) => return b,
            (_, Formula::True) => return a,
            _ => {}
        }
        Formula::And(Rc::new(vec![a, b]))
    }

    /// Raw binary disjunction without flattening (see [`Formula::and_pair`]).
    pub fn or_pair(a: Formula, b: Formula) -> Formula {
        match (&a, &b) {
            (Formula::True, _) | (_, Formula::True) => return Formula::True,
            (Formula::False, _) => return b,
            (_, Formula::False) => return a,
            _ => {}
        }
        Formula::Or(Rc::new(vec![a, b]))
    }

    /// N-ary disjunction of an iterator of formulas.
    pub fn or_all<I: IntoIterator<Item = Formula>>(items: I) -> Formula {
        let mut parts = Vec::new();
        for f in items {
            match f {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(xs) => parts.extend(xs.iter().cloned()),
                other => parts.push(other),
            }
        }
        match parts.len() {
            0 => Formula::False,
            1 => parts.pop().expect("len checked"),
            _ => Formula::Or(Rc::new(parts)),
        }
    }

    /// Implication `self → rhs`.
    pub fn implies(self, rhs: Formula) -> Formula {
        self.not().or(rhs)
    }

    /// Exclusive or, with constant folding.
    pub fn xor(self, rhs: Formula) -> Formula {
        match (self, rhs) {
            (Formula::False, f) | (f, Formula::False) => f,
            (Formula::True, f) | (f, Formula::True) => f.not(),
            (a, b) => Formula::Xor(Rc::new(a), Rc::new(b)),
        }
    }

    /// If-and-only-if, with constant folding.
    pub fn iff(self, rhs: Formula) -> Formula {
        match (self, rhs) {
            (Formula::True, f) | (f, Formula::True) => f,
            (Formula::False, f) | (f, Formula::False) => f.not(),
            (a, b) => Formula::Iff(Rc::new(a), Rc::new(b)),
        }
    }

    /// If-then-else, with condition folding.
    pub fn ite(cond: Formula, then: Formula, els: Formula) -> Formula {
        match cond {
            Formula::True => then,
            Formula::False => els,
            c => Formula::Ite(Rc::new(c), Rc::new(then), Rc::new(els)),
        }
    }

    /// "Exactly one of" over a slice of formulas (pairwise encoding —
    /// adequate for the small cardinalities used in controller models).
    pub fn exactly_one(items: &[Formula]) -> Formula {
        let at_least = Formula::or_all(items.iter().cloned());
        at_least.and(Formula::at_most_one(items))
    }

    /// "At most one of" over a slice of formulas (pairwise encoding).
    pub fn at_most_one(items: &[Formula]) -> Formula {
        let mut clauses = Vec::new();
        for i in 0..items.len() {
            for j in (i + 1)..items.len() {
                clauses.push(items[i].clone().not().or(items[j].clone().not()));
            }
        }
        Formula::and_all(clauses)
    }

    /// Evaluates under an assignment of variables to truth values.
    pub fn eval(&self, assignment: &dyn Fn(Var) -> bool) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Var(v) => assignment(*v),
            Formula::Not(f) => !f.eval(assignment),
            Formula::And(fs) => fs.iter().all(|f| f.eval(assignment)),
            Formula::Or(fs) => fs.iter().any(|f| f.eval(assignment)),
            Formula::Xor(a, b) => a.eval(assignment) ^ b.eval(assignment),
            Formula::Iff(a, b) => a.eval(assignment) == b.eval(assignment),
            Formula::Ite(c, t, e) => {
                if c.eval(assignment) {
                    t.eval(assignment)
                } else {
                    e.eval(assignment)
                }
            }
        }
    }

    /// Collects the set of variables occurring in the formula.
    pub fn variables(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Var(v) => {
                out.insert(*v);
            }
            Formula::Not(f) => f.collect_vars(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs.iter() {
                    f.collect_vars(out);
                }
            }
            Formula::Xor(a, b) | Formula::Iff(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Formula::Ite(c, t, e) => {
                c.collect_vars(out);
                t.collect_vars(out);
                e.collect_vars(out);
            }
        }
    }

    /// Number of AST nodes; used by tests and encoder diagnostics.
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Var(_) => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(Formula::size).sum::<usize>(),
            Formula::Xor(a, b) | Formula::Iff(a, b) => 1 + a.size() + b.size(),
            Formula::Ite(c, t, e) => 1 + c.size() + t.size() + e.size(),
        }
    }
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn join(
            f: &mut fmt::Formatter<'_>,
            items: &[Formula],
            sep: &str,
            empty: &str,
        ) -> fmt::Result {
            if items.is_empty() {
                return write!(f, "{empty}");
            }
            write!(f, "(")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, " {sep} ")?;
                }
                write!(f, "{item}")?;
            }
            write!(f, ")")
        }
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Var(v) => write!(f, "{v}"),
            Formula::Not(inner) => write!(f, "!{inner}"),
            Formula::And(fs) => join(f, fs, "&", "true"),
            Formula::Or(fs) => join(f, fs, "|", "false"),
            Formula::Xor(a, b) => write!(f, "({a} ^ {b})"),
            Formula::Iff(a, b) => write!(f, "({a} <-> {b})"),
            Formula::Ite(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Formula {
        Formula::var(Var(0))
    }
    fn y() -> Formula {
        Formula::var(Var(1))
    }
    fn z() -> Formula {
        Formula::var(Var(2))
    }

    #[test]
    fn constant_folding() {
        assert_eq!(Formula::tt().not(), Formula::ff());
        assert_eq!(x().not().not(), x());
        assert_eq!(x().and(Formula::tt()), x());
        assert_eq!(x().and(Formula::ff()), Formula::ff());
        assert_eq!(x().or(Formula::ff()), x());
        assert_eq!(x().or(Formula::tt()), Formula::tt());
        assert_eq!(x().xor(Formula::ff()), x());
        assert_eq!(x().xor(Formula::tt()), x().not());
        assert_eq!(x().iff(Formula::tt()), x());
        assert_eq!(x().iff(Formula::ff()), x().not());
        assert_eq!(Formula::ite(Formula::tt(), x(), y()), x());
        assert_eq!(Formula::ite(Formula::ff(), x(), y()), y());
    }

    #[test]
    fn and_or_flatten() {
        let f = x().and(y()).and(z());
        match &f {
            Formula::And(fs) => assert_eq!(fs.len(), 3),
            other => panic!("expected flattened And, got {other}"),
        }
        let f = x().or(y()).or(z());
        match &f {
            Formula::Or(fs) => assert_eq!(fs.len(), 3),
            other => panic!("expected flattened Or, got {other}"),
        }
    }

    #[test]
    fn eval_basic() {
        let f = x().and(y().not()).or(z());
        // x=1, y=0, z=0 -> true
        assert!(f.eval(&|v| v == Var(0)));
        // x=1, y=1, z=0 -> false
        assert!(!f.eval(&|v| v == Var(0) || v == Var(1)));
        // z=1 alone -> true
        assert!(f.eval(&|v| v == Var(2)));
    }

    #[test]
    fn implies_truth_table() {
        let f = x().implies(y());
        assert!(f.eval(&|_| false)); // 0 -> 0
        assert!(f.eval(&|v| v == Var(1))); // 0 -> 1
        assert!(!f.eval(&|v| v == Var(0))); // 1 -> 0
        assert!(f.eval(&|_| true)); // 1 -> 1
    }

    #[test]
    fn exactly_one_semantics() {
        let items = [x(), y(), z()];
        let f = Formula::exactly_one(&items);
        // Exhaustive over 8 assignments: true iff exactly one var set.
        for bits in 0u8..8 {
            let assign = move |v: Var| bits >> v.0 & 1 == 1;
            let expected = bits.count_ones() == 1;
            assert_eq!(f.eval(&assign), expected, "bits={bits:03b}");
        }
    }

    #[test]
    fn variables_collected_sorted() {
        let f = z().and(x()).xor(y());
        let vars: Vec<Var> = f.variables().into_iter().collect();
        assert_eq!(vars, vec![Var(0), Var(1), Var(2)]);
    }

    #[test]
    fn display_readable() {
        let f = x().and(y()).not();
        assert_eq!(f.to_string(), "!(v0 & v1)");
    }
}
