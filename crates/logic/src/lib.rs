//! Foundational logic types for the `verdict` workspace.
//!
//! This crate provides the pieces every solver and encoder above it shares:
//!
//! * [`Rational`] — exact rational arithmetic on `i128` numerator/denominator
//!   pairs, normalized and overflow-checked. Simplex (`verdict-smt`) and the
//!   real-valued transition-system sorts are built on it; floating point is
//!   never used for model semantics.
//! * [`Var`] / [`Lit`] — the variable and literal newtypes shared by the CNF
//!   representation, the SAT solver and the SMT solver, using the standard
//!   `2 * var + sign` literal packing.
//! * [`Formula`] — a reference-counted propositional formula AST with
//!   constructors that perform light simplification.
//! * [`Cnf`] — clause database with a [Tseitin] transformation from
//!   [`Formula`], DIMACS export, and truth-assignment evaluation helpers
//!   used heavily in tests.
//!
//! [Tseitin]: https://en.wikipedia.org/wiki/Tseytin_transformation
//!
//! The crate is dependency-free and deterministic: no randomness, no global
//! state, no `unsafe`.

pub mod cnf;
pub mod formula;
pub mod lit;
pub mod rational;

pub use cnf::{Clause, Cnf, Tseitin};
pub use formula::Formula;
pub use lit::{Lit, Var};
pub use rational::Rational;
