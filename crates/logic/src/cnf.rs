//! Conjunctive normal form and the Tseitin transformation.
//!
//! [`Cnf`] is the clause database consumed by `verdict-sat`. [`Tseitin`]
//! converts arbitrary [`Formula`]s into equisatisfiable CNF by introducing
//! one definition variable per distinct subformula, with memoization so that
//! shared subtrees (ubiquitous in transition-relation unrollings) are encoded
//! once.

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use crate::formula::Formula;
use crate::lit::{Lit, Var};

/// A disjunction of literals.
pub type Clause = Vec<Lit>;

/// A CNF instance: a number of variables and a list of clauses.
#[derive(Clone, Default)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Clause>,
}

impl Cnf {
    /// An empty instance with no variables and no clauses (trivially SAT).
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Ensures variables `0..n` exist.
    pub fn reserve_vars(&mut self, n: u32) {
        self.num_vars = self.num_vars.max(n);
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Adds a clause. An empty clause makes the instance trivially UNSAT.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        let clause: Clause = lits.into_iter().collect();
        for l in &clause {
            self.reserve_vars(l.var().0 + 1);
        }
        self.clauses.push(clause);
    }

    /// Adds a unit clause.
    pub fn add_unit(&mut self, lit: Lit) {
        self.add_clause([lit]);
    }

    /// Evaluates the CNF under a total assignment (indexed by variable).
    ///
    /// Used by tests to cross-check solver models.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| {
            c.iter()
                .any(|l| assignment[l.var().index()] == l.is_positive())
        })
    }

    /// Serializes in DIMACS `cnf` format.
    pub fn to_dimacs(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for c in &self.clauses {
            for l in c {
                let _ = write!(out, "{} ", l.to_dimacs());
            }
            let _ = writeln!(out, "0");
        }
        out
    }

    /// Parses DIMACS `cnf` format. Lines starting with `c` are comments.
    pub fn from_dimacs(text: &str) -> Result<Cnf, DimacsError> {
        let mut cnf = Cnf::new();
        let mut declared_vars = None;
        let mut current = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('p') {
                let mut parts = rest.split_whitespace();
                if parts.next() != Some("cnf") {
                    return Err(DimacsError::new(lineno, "expected `p cnf`"));
                }
                let vars: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| DimacsError::new(lineno, "bad var count"))?;
                declared_vars = Some(vars);
                continue;
            }
            for tok in line.split_whitespace() {
                let d: i64 = tok
                    .parse()
                    .map_err(|_| DimacsError::new(lineno, "bad literal"))?;
                if d == 0 {
                    cnf.add_clause(current.drain(..));
                } else {
                    current.push(Lit::from_dimacs(d));
                }
            }
        }
        if !current.is_empty() {
            return Err(DimacsError::new(0, "unterminated clause"));
        }
        if let Some(v) = declared_vars {
            cnf.reserve_vars(v);
        }
        Ok(cnf)
    }
}

impl fmt::Debug for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cnf {{ vars: {}, clauses: {} }}",
            self.num_vars,
            self.clauses.len()
        )
    }
}

/// Error parsing DIMACS input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimacsError {
    line: usize,
    message: &'static str,
}

impl DimacsError {
    fn new(line: usize, message: &'static str) -> DimacsError {
        DimacsError { line, message }
    }
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DIMACS parse error at line {}: {}",
            self.line + 1,
            self.message
        )
    }
}

impl std::error::Error for DimacsError {}

/// Memoizing Tseitin encoder from [`Formula`] to [`Cnf`].
///
/// Each distinct subformula (by pointer identity for shared `Rc`s plus
/// structural identity for small nodes) receives one definition literal.
/// The encoding is polarity-insensitive (full iff definitions), which keeps
/// the encoder simple and is entirely adequate for the clause volumes
/// produced by BMC unrollings in this workspace.
///
/// ```
/// use verdict_logic::{Formula, Tseitin, Var};
/// let f = Formula::var(Var(0)).xor(Formula::var(Var(1)));
/// let mut enc = Tseitin::new();
/// enc.reserve_inputs(2);
/// let root = enc.assert(&f);
/// let cnf = enc.into_cnf();
/// assert!(root.is_some());
/// assert!(cnf.clauses().len() >= 4);
/// ```
pub struct Tseitin {
    cnf: Cnf,
    cache: HashMap<FormulaKey, Lit>,
}

/// Structural key for memoization, built from already-encoded literal
/// indices so shared subtrees hash cheaply. (`Iff` reuses the `Xor` key via
/// negation; `Not` and `Var` need no definitions.)
#[derive(PartialEq, Eq, Hash)]
enum FormulaKey {
    And(Vec<usize>),
    Or(Vec<usize>),
    Xor(usize, usize),
    Ite(usize, usize, usize),
}

impl Default for Tseitin {
    fn default() -> Self {
        Tseitin::new()
    }
}

impl Tseitin {
    /// Fresh encoder with an empty clause database.
    pub fn new() -> Tseitin {
        Tseitin {
            cnf: Cnf::new(),
            cache: HashMap::new(),
        }
    }

    /// Ensures input variables `0..n` exist in the output CNF so that input
    /// variable indices survive the encoding unchanged.
    pub fn reserve_inputs(&mut self, n: u32) {
        self.cnf.reserve_vars(n);
    }

    /// Access to the clause database being built (e.g. to add raw clauses).
    pub fn cnf_mut(&mut self) -> &mut Cnf {
        &mut self.cnf
    }

    /// Encodes `f` and asserts it as a unit clause. Returns the definition
    /// literal, or `None` when the formula is a constant (`True` asserts
    /// nothing, `False` adds the empty clause).
    pub fn assert(&mut self, f: &Formula) -> Option<Lit> {
        let mut seen = HashMap::new();
        match self.encode(f, &mut seen) {
            EncodedLit::True => None,
            EncodedLit::False => {
                self.cnf.add_clause([]);
                None
            }
            EncodedLit::Lit(l) => {
                self.cnf.add_unit(l);
                Some(l)
            }
        }
    }

    /// Encodes `f` and returns a literal equivalent to it (without asserting),
    /// or a constant outcome.
    pub fn define(&mut self, f: &Formula) -> EncodedLit {
        let mut seen = HashMap::new();
        self.encode(f, &mut seen)
    }

    /// Finishes encoding and returns the CNF.
    pub fn into_cnf(self) -> Cnf {
        self.cnf
    }

    fn fresh(&mut self) -> Lit {
        self.cnf.fresh_var().positive()
    }

    /// Recursive encoder. `seen` memoizes by node identity *within one
    /// top-level call* (formulas are shared DAGs; without this the walk is
    /// exponential). It must not outlive the call: addresses of dropped
    /// formulas could be reused.
    fn encode(
        &mut self,
        f: &Formula,
        seen: &mut HashMap<*const Formula, EncodedLit>,
    ) -> EncodedLit {
        let key = f as *const Formula;
        if let Some(&hit) = seen.get(&key) {
            return hit;
        }
        let result = self.encode_uncached(f, seen);
        seen.insert(key, result);
        result
    }

    fn encode_uncached(
        &mut self,
        f: &Formula,
        seen: &mut HashMap<*const Formula, EncodedLit>,
    ) -> EncodedLit {
        match f {
            Formula::True => EncodedLit::True,
            Formula::False => EncodedLit::False,
            Formula::Var(v) => {
                self.cnf.reserve_vars(v.0 + 1);
                EncodedLit::Lit(v.positive())
            }
            Formula::Not(inner) => self.encode(inner, seen).negate(),
            Formula::And(parts) => self.encode_nary(parts, true, seen),
            Formula::Or(parts) => self.encode_nary(parts, false, seen),
            Formula::Xor(a, b) => {
                let (a, b) = (self.encode(a, seen), self.encode(b, seen));
                match (a, b) {
                    (EncodedLit::False, x) | (x, EncodedLit::False) => x,
                    (EncodedLit::True, x) | (x, EncodedLit::True) => x.negate(),
                    (EncodedLit::Lit(a), EncodedLit::Lit(b)) => {
                        let key = FormulaKey::Xor(a.index(), b.index());
                        if let Some(&l) = self.cache.get(&key) {
                            return EncodedLit::Lit(l);
                        }
                        let o = self.fresh();
                        // o <-> a xor b
                        self.cnf.add_clause([!o, a, b]);
                        self.cnf.add_clause([!o, !a, !b]);
                        self.cnf.add_clause([o, !a, b]);
                        self.cnf.add_clause([o, a, !b]);
                        self.cache.insert(key, o);
                        EncodedLit::Lit(o)
                    }
                }
            }
            Formula::Iff(a, b) => {
                // a <-> b  ==  !(a xor b); encode operands through the
                // memo, then combine like Xor.
                let (ea, eb) = (self.encode(a, seen), self.encode(b, seen));
                let xor = match (ea, eb) {
                    (EncodedLit::False, x) | (x, EncodedLit::False) => x,
                    (EncodedLit::True, x) | (x, EncodedLit::True) => x.negate(),
                    (EncodedLit::Lit(la), EncodedLit::Lit(lb)) => {
                        let key = FormulaKey::Xor(la.index(), lb.index());
                        if let Some(&l) = self.cache.get(&key) {
                            EncodedLit::Lit(l)
                        } else {
                            let o = self.fresh();
                            self.cnf.add_clause([!o, la, lb]);
                            self.cnf.add_clause([!o, !la, !lb]);
                            self.cnf.add_clause([o, !la, lb]);
                            self.cnf.add_clause([o, la, !lb]);
                            self.cache.insert(key, o);
                            EncodedLit::Lit(o)
                        }
                    }
                };
                xor.negate()
            }
            Formula::Ite(c, t, e) => {
                let c = self.encode(c, seen);
                match c {
                    EncodedLit::True => self.encode(t, seen),
                    EncodedLit::False => self.encode(e, seen),
                    EncodedLit::Lit(c) => {
                        let t = self.encode(t, seen);
                        let e = self.encode(e, seen);
                        match (t, e) {
                            (EncodedLit::True, EncodedLit::True) => EncodedLit::True,
                            (EncodedLit::False, EncodedLit::False) => EncodedLit::False,
                            (EncodedLit::True, EncodedLit::False) => EncodedLit::Lit(c),
                            (EncodedLit::False, EncodedLit::True) => EncodedLit::Lit(!c),
                            (t, e) => {
                                let t = self.materialize(t);
                                let e = self.materialize(e);
                                let key = FormulaKey::Ite(c.index(), t.index(), e.index());
                                if let Some(&l) = self.cache.get(&key) {
                                    return EncodedLit::Lit(l);
                                }
                                let o = self.fresh();
                                // o <-> ite(c, t, e)
                                self.cnf.add_clause([!c, !t, o]);
                                self.cnf.add_clause([!c, t, !o]);
                                self.cnf.add_clause([c, !e, o]);
                                self.cnf.add_clause([c, e, !o]);
                                self.cache.insert(key, o);
                                EncodedLit::Lit(o)
                            }
                        }
                    }
                }
            }
        }
    }

    /// Turns an encoded constant into a literal via a constrained fresh var;
    /// only reachable through `Ite` arms with one constant branch.
    fn materialize(&mut self, e: EncodedLit) -> Lit {
        match e {
            EncodedLit::Lit(l) => l,
            EncodedLit::True => {
                let l = self.fresh();
                self.cnf.add_unit(l);
                l
            }
            EncodedLit::False => {
                let l = self.fresh();
                self.cnf.add_unit(!l);
                l
            }
        }
    }

    fn encode_nary(
        &mut self,
        parts: &Rc<Vec<Formula>>,
        is_and: bool,
        seen: &mut HashMap<*const Formula, EncodedLit>,
    ) -> EncodedLit {
        let mut lits = Vec::with_capacity(parts.len());
        for p in parts.iter() {
            match (self.encode(p, seen), is_and) {
                (EncodedLit::True, true) | (EncodedLit::False, false) => {}
                (EncodedLit::False, true) => return EncodedLit::False,
                (EncodedLit::True, false) => return EncodedLit::True,
                (EncodedLit::Lit(l), _) => lits.push(l),
            }
        }
        match lits.len() {
            0 => {
                if is_and {
                    EncodedLit::True
                } else {
                    EncodedLit::False
                }
            }
            1 => EncodedLit::Lit(lits[0]),
            _ => {
                let mut key_ids: Vec<usize> = lits.iter().map(|l| l.index()).collect();
                key_ids.sort_unstable();
                key_ids.dedup();
                if key_ids.len() == 1 {
                    return EncodedLit::Lit(Lit::from_index(key_ids[0]));
                }
                let key = if is_and {
                    FormulaKey::And(key_ids)
                } else {
                    FormulaKey::Or(key_ids)
                };
                if let Some(&l) = self.cache.get(&key) {
                    return EncodedLit::Lit(l);
                }
                let o = self.fresh();
                if is_and {
                    // o -> each lit;  all lits -> o
                    let mut big: Clause = lits.iter().map(|&l| !l).collect();
                    for &l in &lits {
                        self.cnf.add_clause([!o, l]);
                    }
                    big.push(o);
                    self.cnf.add_clause(big);
                } else {
                    // each lit -> o;  o -> some lit
                    let mut big: Clause = lits.clone();
                    for &l in &lits {
                        self.cnf.add_clause([!l, o]);
                    }
                    big.push(!o);
                    self.cnf.add_clause(big);
                }
                self.cache.insert(key, o);
                EncodedLit::Lit(o)
            }
        }
    }
}

/// Result of encoding a formula: a literal or a constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EncodedLit {
    /// The formula is constantly true.
    True,
    /// The formula is constantly false.
    False,
    /// The formula is equivalent to this literal under the added definitions.
    Lit(Lit),
}

impl EncodedLit {
    fn negate(self) -> EncodedLit {
        match self {
            EncodedLit::True => EncodedLit::False,
            EncodedLit::False => EncodedLit::True,
            EncodedLit::Lit(l) => EncodedLit::Lit(!l),
        }
    }

    /// Extracts the literal, materializing constants is the caller's job.
    pub fn as_lit(self) -> Option<Lit> {
        match self {
            EncodedLit::Lit(l) => Some(l),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula;

    fn v(i: u32) -> Formula {
        Formula::var(Var(i))
    }

    /// Brute-force check: formula `f` (over vars 0..n) is satisfiable iff its
    /// Tseitin CNF is satisfiable, checked by enumerating all assignments of
    /// the CNF's full variable set.
    fn equisatisfiable(f: &Formula, n: u32) {
        let mut enc = Tseitin::new();
        enc.reserve_inputs(n);
        enc.assert(f);
        let cnf = enc.into_cnf();
        let cnf_vars = cnf.num_vars();
        assert!(cnf_vars <= 24, "test formula too large to brute force");
        let formula_sat = (0u32..1 << n).any(|bits| f.eval(&|v| bits >> v.0 & 1 == 1));
        let cnf_sat = (0u64..1 << cnf_vars).any(|bits| {
            let assignment: Vec<bool> = (0..cnf_vars).map(|i| bits >> i & 1 == 1).collect();
            cnf.eval(&assignment)
        });
        assert_eq!(formula_sat, cnf_sat, "formula: {f}");
    }

    /// Stronger check: for every assignment of the inputs, the formula value
    /// matches whether the CNF is satisfiable with the inputs fixed.
    fn equivalent_on_inputs(f: &Formula, n: u32) {
        let mut enc = Tseitin::new();
        enc.reserve_inputs(n);
        enc.assert(f);
        let cnf = enc.into_cnf();
        let cnf_vars = cnf.num_vars();
        let aux = cnf_vars - n;
        assert!(aux <= 16, "too many aux vars to brute force");
        for bits in 0u32..1 << n {
            let fval = f.eval(&|v| bits >> v.0 & 1 == 1);
            let sat_with_inputs = (0u64..1 << aux).any(|aux_bits| {
                let assignment: Vec<bool> = (0..cnf_vars)
                    .map(|i| {
                        if i < n {
                            bits >> i & 1 == 1
                        } else {
                            aux_bits >> (i - n) & 1 == 1
                        }
                    })
                    .collect();
                cnf.eval(&assignment)
            });
            assert_eq!(fval, sat_with_inputs, "formula {f} at inputs {bits:b}");
        }
    }

    #[test]
    fn tseitin_simple_ops() {
        equivalent_on_inputs(&v(0).and(v(1)), 2);
        equivalent_on_inputs(&v(0).or(v(1)), 2);
        equivalent_on_inputs(&v(0).xor(v(1)), 2);
        equivalent_on_inputs(&v(0).iff(v(1)), 2);
        equivalent_on_inputs(&v(0).implies(v(1)), 2);
        equivalent_on_inputs(&Formula::ite(v(0), v(1), v(2)), 3);
    }

    #[test]
    fn tseitin_nested() {
        let f = v(0).and(v(1)).or(v(2).xor(v(3)));
        equivalent_on_inputs(&f, 4);
        let g = Formula::ite(v(0).iff(v(1)), v(2).not(), v(3).and(v(0)));
        equivalent_on_inputs(&g, 4);
        let h = Formula::exactly_one(&[v(0), v(1), v(2), v(3)]);
        equivalent_on_inputs(&h, 4);
    }

    #[test]
    fn tseitin_constants() {
        equisatisfiable(&Formula::tt(), 0);
        let mut enc = Tseitin::new();
        enc.assert(&Formula::ff());
        let cnf = enc.into_cnf();
        assert!(cnf.clauses().iter().any(|c| c.is_empty()));
    }

    #[test]
    fn tseitin_contradiction_unsat() {
        equisatisfiable(&v(0).and(v(0).not()), 1);
        equivalent_on_inputs(&v(0).and(v(0).not()), 1);
    }

    #[test]
    fn tseitin_memoizes_shared_subtrees() {
        let shared = v(0).xor(v(1));
        let f = shared.clone().and(shared.clone().or(v(2)));
        let mut enc = Tseitin::new();
        enc.reserve_inputs(3);
        enc.assert(&f);
        let cnf = enc.into_cnf();
        // One xor definition (1 var), one or (1), one and (1): 3 aux vars.
        assert_eq!(cnf.num_vars(), 6, "xor must be encoded once");
    }

    #[test]
    fn dimacs_round_trip() {
        let mut cnf = Cnf::new();
        cnf.add_clause([Var(0).positive(), Var(1).negative()]);
        cnf.add_clause([Var(2).positive()]);
        let text = cnf.to_dimacs();
        let back = Cnf::from_dimacs(&text).unwrap();
        assert_eq!(back.num_vars(), 3);
        assert_eq!(back.clauses(), cnf.clauses());
    }

    #[test]
    fn dimacs_rejects_garbage() {
        assert!(Cnf::from_dimacs("p cnf x 1").is_err());
        assert!(Cnf::from_dimacs("1 2 3").is_err()); // unterminated
        assert!(Cnf::from_dimacs("p sat 3 1").is_err());
    }

    #[test]
    fn cnf_eval() {
        let mut cnf = Cnf::new();
        cnf.add_clause([Var(0).positive(), Var(1).positive()]);
        cnf.add_clause([Var(0).negative()]);
        assert!(cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[true, true]));
        assert!(!cnf.eval(&[false, false]));
    }
}
