//! Exact rational arithmetic over `i128`.
//!
//! All quantitative model semantics in `verdict` (link latency, traffic
//! loads, thresholds) are exact rationals — never floats — so that the SMT
//! simplex core and the transition-system evaluator agree bit-for-bit and
//! counterexamples replay deterministically.
//!
//! Values are kept normalized: the denominator is strictly positive and
//! `gcd(num, den) == 1`. Arithmetic uses checked `i128` operations and
//! panics on overflow with a descriptive message; model-checking workloads
//! stay far below the ~1.7e38 ceiling, and a loud panic is preferable to a
//! silent wrap in a verification tool.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(num, den) == 1`.
///
/// ```
/// use verdict_logic::Rational;
/// let a = Rational::new(1, 3);
/// let b = Rational::new(1, 6);
/// assert_eq!(a + b, Rational::new(1, 2));
/// assert!(a > b);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

/// Greatest common divisor of the absolute values (Euclid).
fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// The rational zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Builds `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rational {
        assert!(den != 0, "rational with zero denominator");
        let mut num = num;
        let mut den = den;
        if den < 0 {
            num = num.checked_neg().expect("rational overflow: negate");
            den = den.checked_neg().expect("rational overflow: negate");
        }
        if num == 0 {
            return Rational::ZERO;
        }
        let g = gcd(num, den);
        Rational {
            num: num / g,
            den: den / g,
        }
    }

    /// Builds the integer rational `n / 1`.
    pub const fn integer(n: i128) -> Rational {
        Rational { num: n, den: 1 }
    }

    /// The numerator (normalized; carries the sign).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// The denominator (always strictly positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// True iff the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// True iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// True iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// True iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Absolute value.
    pub fn abs(self) -> Rational {
        if self.num < 0 {
            -self
        } else {
            self
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(self) -> Rational {
        assert!(self.num != 0, "reciprocal of zero rational");
        Rational::new(self.den, self.num)
    }

    /// Largest integer `<= self` (floor), as an `i128`.
    pub fn floor(self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            // Round toward negative infinity.
            (self.num - (self.den - 1)) / self.den
        }
    }

    /// Smallest integer `>= self` (ceiling), as an `i128`.
    pub fn ceil(self) -> i128 {
        -((-self).floor())
    }

    /// Lossy conversion to `f64` for display and plotting only — never for
    /// model semantics.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// The midpoint `(self + other) / 2`, used by simplex when picking a
    /// concrete value strictly between two bounds.
    pub fn midpoint(self, other: Rational) -> Rational {
        (self + other) / Rational::integer(2)
    }

    /// Fallible addition: `None` when an `i128` intermediate overflows.
    /// The simplex core uses this so an overflow degrades the verdict
    /// instead of aborting the process.
    pub fn try_add(self, rhs: Rational) -> Option<Rational> {
        // a/b + c/d = (a*d + c*b) / (b*d), then normalize. Reduce by
        // gcd(b, d) first to keep intermediates small.
        let g = gcd(self.den, rhs.den);
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        let num = self.num.checked_mul(lhs_scale).and_then(|a| {
            rhs.num
                .checked_mul(rhs_scale)
                .and_then(|b| a.checked_add(b))
        })?;
        let den = self.den.checked_mul(lhs_scale)?;
        Some(Rational::new(num, den))
    }

    /// Fallible multiplication: `None` when an `i128` intermediate
    /// overflows. See [`Rational::try_add`].
    pub fn try_mul(self, rhs: Rational) -> Option<Rational> {
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Some(Rational::new(num, den))
    }

    /// Checked addition used by all operator impls.
    fn checked_add(self, rhs: Rational) -> Rational {
        self.try_add(rhs).expect("rational overflow: add")
    }

    fn checked_mul(self, rhs: Rational) -> Rational {
        self.try_mul(rhs).expect("rational overflow: mul")
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::integer(n as i128)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::integer(n as i128)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        self.checked_add(rhs)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self.checked_add(-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        self.checked_mul(rhs)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        self.checked_mul(rhs.recip())
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: self.num.checked_neg().expect("rational overflow: negate"),
            den: self.den,
        }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Rational) {
        *self = *self / rhs;
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0)
        let lhs = self
            .num
            .checked_mul(other.den)
            .expect("rational overflow: cmp");
        let rhs = other
            .num
            .checked_mul(self.den)
            .expect("rational overflow: cmp");
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Error produced when parsing a [`Rational`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError(String);

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.0)
    }
}

impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"3"`, `"-3"`, `"3/4"`, or decimal notation `"0.45"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || ParseRationalError(s.to_string());
        if let Some((n, d)) = s.split_once('/') {
            let num: i128 = n.trim().parse().map_err(|_| bad())?;
            let den: i128 = d.trim().parse().map_err(|_| bad())?;
            if den == 0 {
                return Err(bad());
            }
            Ok(Rational::new(num, den))
        } else if let Some((int_part, frac_part)) = s.split_once('.') {
            if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(bad());
            }
            let negative = int_part.trim_start().starts_with('-');
            let int: i128 = if int_part.is_empty() || int_part == "-" {
                0
            } else {
                int_part.trim().parse().map_err(|_| bad())?
            };
            let frac: i128 = frac_part.parse().map_err(|_| bad())?;
            let scale = 10i128.checked_pow(frac_part.len() as u32).ok_or_else(bad)?;
            let magnitude = Rational::integer(int.abs()) + Rational::new(frac, scale);
            Ok(if negative { -magnitude } else { magnitude })
        } else {
            let num: i128 = s.trim().parse().map_err(|_| bad())?;
            Ok(Rational::integer(num))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, -7), Rational::ZERO);
        assert_eq!(Rational::new(1, 2).denom(), 2);
        assert_eq!(Rational::new(-1, 2).numer(), -1);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 6);
        assert_eq!(a + b, Rational::new(1, 2));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 18));
        assert_eq!(a / b, Rational::integer(2));
        assert_eq!(-a, Rational::new(-1, 3));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) > Rational::new(1, 6));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::new(7, 7) == Rational::ONE);
        let mut v = vec![
            Rational::ONE,
            Rational::new(-3, 2),
            Rational::ZERO,
            Rational::new(1, 2),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Rational::new(-3, 2),
                Rational::ZERO,
                Rational::new(1, 2),
                Rational::ONE
            ]
        );
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::integer(5).floor(), 5);
        assert_eq!(Rational::integer(5).ceil(), 5);
        assert_eq!(Rational::integer(-5).floor(), -5);
    }

    #[test]
    fn parsing() {
        assert_eq!("3".parse::<Rational>().unwrap(), Rational::integer(3));
        assert_eq!("-3".parse::<Rational>().unwrap(), Rational::integer(-3));
        assert_eq!("3/4".parse::<Rational>().unwrap(), Rational::new(3, 4));
        assert_eq!("-3/4".parse::<Rational>().unwrap(), Rational::new(-3, 4));
        assert_eq!("0.45".parse::<Rational>().unwrap(), Rational::new(9, 20));
        assert_eq!("-0.5".parse::<Rational>().unwrap(), Rational::new(-1, 2));
        assert_eq!("2.25".parse::<Rational>().unwrap(), Rational::new(9, 4));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("abc".parse::<Rational>().is_err());
        assert!("1.".parse::<Rational>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for r in [
            Rational::new(3, 4),
            Rational::integer(-7),
            Rational::ZERO,
            Rational::new(-22, 7),
        ] {
            let shown = r.to_string();
            assert_eq!(shown.parse::<Rational>().unwrap(), r);
        }
    }

    #[test]
    fn midpoint_between() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 2);
        let m = a.midpoint(b);
        assert!(a < m && m < b);
        assert_eq!(m, Rational::new(5, 12));
    }

    #[test]
    fn recip() {
        assert_eq!(Rational::new(3, 4).recip(), Rational::new(4, 3));
        assert_eq!(Rational::new(-3, 4).recip(), Rational::new(-4, 3));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    fn try_arithmetic_detects_overflow() {
        let half_max = Rational::integer(i128::MAX / 2);
        assert_eq!(
            half_max.try_add(Rational::ONE),
            Some(half_max + Rational::ONE)
        );
        assert_eq!(Rational::integer(i128::MAX).try_add(Rational::ONE), None);
        assert_eq!(half_max.try_mul(Rational::integer(3)), None);
        assert_eq!(
            Rational::new(1, 3).try_mul(Rational::new(3, 7)),
            Some(Rational::new(1, 7))
        );
    }
}
