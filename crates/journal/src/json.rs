//! A minimal JSON reader/writer for the journal's own records.
//!
//! The workspace builds offline with zero external dependencies, so there
//! is no `serde`; this module implements exactly the JSON subset the
//! journal writes — objects, arrays, strings, integers, booleans, null —
//! and rejects everything else (floats, exponents, non-string keys).
//! Since the journal only ever parses lines it wrote itself (guarded by a
//! checksum), strictness is a feature: anything unexpected is corruption.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value (integer-only numbers).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the journal never writes floats).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps serialization order deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Escapes and quotes `s` as a JSON string literal.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Str(s) => write!(f, "{}", quote(s)),
            Json::Arr(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Json::Obj(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", quote(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// A parse failure, with a byte offset for diagnostics.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            message: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.integer(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn integer(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floats are not part of the journal format"));
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| self.err("integer out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let src = r#"{"a":[1,-2,"x\n\"y"],"b":null,"c":true,"d":{"e":false}}"#;
        let v = parse(src).unwrap();
        assert_eq!(parse(&v.to_string()).unwrap(), v);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_int(), Some(-2));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("x\n\"y")
        );
    }

    #[test]
    fn rejects_floats_and_garbage() {
        assert!(parse("1.5").is_err());
        assert!(parse("{\"a\":1}x").is_err());
        assert!(parse("{\"a\"").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""é""#).unwrap(), Json::Str("é".to_string()));
    }
}
