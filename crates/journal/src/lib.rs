//! Crash-safe verdict journal + deterministic fault injection.
//!
//! This crate gives long-running verification jobs two robustness
//! primitives:
//!
//! * [`Journal`] — an append-only JSONL file of verification records.
//!   Every line carries an FNV-1a checksum and is `fsync`'d before the
//!   append returns, so a record that the writer observed as durable
//!   survives `SIGKILL`. On resume, [`Journal::open_resume`] verifies
//!   every line and truncates the file at the first torn or corrupt
//!   record, returning the intact prefix.
//! * [`fault`] — a process-global registry of deterministic fault
//!   probes. Solver and orchestration code calls [`fault::probe`] at
//!   well-known sites; tests and the CLI arm a [`fault::FaultPlan`] to
//!   inject panics, simulated overflow, or simulated resource exhaustion
//!   at the k-th hit.
//!
//! The journal format is deliberately engine-agnostic: records carry
//! string tags and stringified parameter values, so this crate depends
//! on nothing but `verdict-prng` and the model-checking layer maps its
//! own types in and out.

pub mod fault;
pub mod json;
pub mod wal;

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use json::Json;

/// Journal format version, bumped on incompatible record changes.
pub const FORMAT_VERSION: i64 = 1;

/// FNV-1a 64-bit hash — the journal's line checksum and the basis of run
/// fingerprints. Not cryptographic; it guards against torn writes and
/// bit rot, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Outcome tag for a journaled verdict. `Cancelled` exists for
/// completeness but recorders should not persist cancelled verdicts —
/// they carry no reusable information.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerdictTag {
    /// Property holds under this assignment.
    Safe,
    /// Property violated; the record carries the counterexample trace.
    Unsafe,
    /// Undecided (reason tag in [`Record::Verdict::reason`]).
    Unknown,
    /// Run was cancelled mid-check.
    Cancelled,
}

impl VerdictTag {
    /// Stable lowercase tag used on disk.
    pub fn tag(self) -> &'static str {
        match self {
            VerdictTag::Safe => "safe",
            VerdictTag::Unsafe => "unsafe",
            VerdictTag::Unknown => "unknown",
            VerdictTag::Cancelled => "cancelled",
        }
    }

    /// Parses a tag produced by [`VerdictTag::tag`].
    pub fn from_tag(s: &str) -> Option<VerdictTag> {
        match s {
            "safe" => Some(VerdictTag::Safe),
            "unsafe" => Some(VerdictTag::Unsafe),
            "unknown" => Some(VerdictTag::Unknown),
            "cancelled" => Some(VerdictTag::Cancelled),
            _ => None,
        }
    }
}

/// A counterexample trace in journal form: variable names plus states of
/// stringified values, in `Display` form the model layer can re-parse
/// against the system's sorts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRec {
    /// State-variable names, in state-vector order.
    pub vars: Vec<String>,
    /// One vector of `Display`-formatted values per step.
    pub states: Vec<Vec<String>>,
    /// Lasso loop-back index for liveness counterexamples.
    pub loop_back: Option<usize>,
}

/// One journal record (one JSONL line).
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// First line of every journal: identifies the run so `--resume`
    /// can refuse to mix verdicts from a different model/property/engine.
    Header {
        /// Journal format version ([`FORMAT_VERSION`]).
        version: i64,
        /// Fingerprint of (system, params, property, engine) computed by
        /// the recording layer; resume must match exactly.
        fingerprint: u64,
        /// Total number of assignments in the sweep (0 for single checks).
        space: u64,
        /// Parameter names, in assignment-vector order.
        params: Vec<String>,
        /// Property name or rendering.
        property: String,
        /// Engine tag.
        engine: String,
    },
    /// A failed attempt that will be retried; audit trail for escalation.
    Attempt {
        /// Assignment index in odometer order.
        idx: u64,
        /// 1-based attempt number that failed.
        attempt: u32,
        /// `UnknownReason` tag for the failure.
        reason: String,
    },
    /// A final per-assignment verdict.
    Verdict {
        /// Assignment index in odometer order.
        idx: u64,
        /// Parameter values, `Display`-formatted, in `params` order.
        values: Vec<String>,
        /// The outcome.
        verdict: VerdictTag,
        /// `UnknownReason` tag when `verdict` is `Unknown`.
        reason: Option<String>,
        /// Total attempts spent (1 = first try succeeded).
        attempts: u32,
        /// Induction depth at which a `Safe` verdict was proved, when the
        /// engine reports it; enables certificate re-checking on resume.
        depth: Option<u64>,
        /// Counterexample for `Unsafe` verdicts.
        trace: Option<TraceRec>,
    },
    /// A per-property verdict from `check` (portfolio or solo engine).
    Property {
        /// Property name.
        name: String,
        /// The outcome.
        verdict: VerdictTag,
        /// `UnknownReason` tag when `verdict` is `Unknown`.
        reason: Option<String>,
        /// Engine that produced the verdict (portfolio winner, if racing).
        engine: String,
    },
}

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn str_arr(xs: &[String]) -> Json {
    Json::Arr(xs.iter().map(|s| Json::Str(s.clone())).collect())
}

fn opt_str(x: &Option<String>) -> Json {
    match x {
        Some(s) => Json::Str(s.clone()),
        None => Json::Null,
    }
}

impl Record {
    fn to_json(&self) -> Json {
        match self {
            Record::Header {
                version,
                fingerprint,
                space,
                params,
                property,
                engine,
            } => obj(vec![
                ("type", Json::Str("header".into())),
                ("version", Json::Int(*version)),
                ("fingerprint", Json::Str(format!("{fingerprint:016x}"))),
                ("space", Json::Int(*space as i64)),
                ("params", str_arr(params)),
                ("property", Json::Str(property.clone())),
                ("engine", Json::Str(engine.clone())),
            ]),
            Record::Attempt {
                idx,
                attempt,
                reason,
            } => obj(vec![
                ("type", Json::Str("attempt".into())),
                ("idx", Json::Int(*idx as i64)),
                ("attempt", Json::Int(*attempt as i64)),
                ("reason", Json::Str(reason.clone())),
            ]),
            Record::Verdict {
                idx,
                values,
                verdict,
                reason,
                attempts,
                depth,
                trace,
            } => {
                let mut pairs = vec![
                    ("type", Json::Str("verdict".into())),
                    ("idx", Json::Int(*idx as i64)),
                    ("values", str_arr(values)),
                    ("verdict", Json::Str(verdict.tag().into())),
                    ("reason", opt_str(reason)),
                    ("attempts", Json::Int(*attempts as i64)),
                    (
                        "depth",
                        match depth {
                            Some(d) => Json::Int(*d as i64),
                            None => Json::Null,
                        },
                    ),
                ];
                if let Some(t) = trace {
                    pairs.push((
                        "trace",
                        obj(vec![
                            ("vars", str_arr(&t.vars)),
                            (
                                "states",
                                Json::Arr(t.states.iter().map(|s| str_arr(s)).collect()),
                            ),
                            (
                                "loop_back",
                                match t.loop_back {
                                    Some(l) => Json::Int(l as i64),
                                    None => Json::Null,
                                },
                            ),
                        ]),
                    ));
                } else {
                    pairs.push(("trace", Json::Null));
                }
                obj(pairs)
            }
            Record::Property {
                name,
                verdict,
                reason,
                engine,
            } => obj(vec![
                ("type", Json::Str("property".into())),
                ("name", Json::Str(name.clone())),
                ("verdict", Json::Str(verdict.tag().into())),
                ("reason", opt_str(reason)),
                ("engine", Json::Str(engine.clone())),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<Record, String> {
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or("record missing `type`")?;
        let get_str = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("record missing string `{k}`"))
        };
        let get_int = |k: &str| -> Result<i64, String> {
            v.get(k)
                .and_then(Json::as_int)
                .ok_or_else(|| format!("record missing int `{k}`"))
        };
        let get_strs = |k: &str| -> Result<Vec<String>, String> {
            v.get(k)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("record missing array `{k}`"))?
                .iter()
                .map(|x| {
                    x.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("non-string element in `{k}`"))
                })
                .collect()
        };
        let get_opt_str =
            |k: &str| -> Option<String> { v.get(k).and_then(Json::as_str).map(str::to_string) };
        match ty {
            "header" => Ok(Record::Header {
                version: get_int("version")?,
                fingerprint: u64::from_str_radix(&get_str("fingerprint")?, 16)
                    .map_err(|_| "bad fingerprint".to_string())?,
                space: get_int("space")? as u64,
                params: get_strs("params")?,
                property: get_str("property")?,
                engine: get_str("engine")?,
            }),
            "attempt" => Ok(Record::Attempt {
                idx: get_int("idx")? as u64,
                attempt: get_int("attempt")? as u32,
                reason: get_str("reason")?,
            }),
            "verdict" => {
                let verdict =
                    VerdictTag::from_tag(&get_str("verdict")?).ok_or("bad verdict tag")?;
                let trace = match v.get("trace") {
                    None | Some(Json::Null) => None,
                    Some(t) => {
                        let vars = t
                            .get("vars")
                            .and_then(Json::as_arr)
                            .ok_or("trace missing vars")?
                            .iter()
                            .map(|x| x.as_str().map(str::to_string))
                            .collect::<Option<Vec<_>>>()
                            .ok_or("non-string trace var")?;
                        let states = t
                            .get("states")
                            .and_then(Json::as_arr)
                            .ok_or("trace missing states")?
                            .iter()
                            .map(|st| {
                                st.as_arr()?
                                    .iter()
                                    .map(|x| x.as_str().map(str::to_string))
                                    .collect::<Option<Vec<_>>>()
                            })
                            .collect::<Option<Vec<_>>>()
                            .ok_or("malformed trace state")?;
                        let loop_back = match t.get("loop_back") {
                            None | Some(Json::Null) => None,
                            Some(l) => Some(l.as_int().ok_or("bad loop_back")? as usize),
                        };
                        Some(TraceRec {
                            vars,
                            states,
                            loop_back,
                        })
                    }
                };
                Ok(Record::Verdict {
                    idx: get_int("idx")? as u64,
                    values: get_strs("values")?,
                    verdict,
                    reason: get_opt_str("reason"),
                    attempts: get_int("attempts")? as u32,
                    depth: match v.get("depth") {
                        None | Some(Json::Null) => None,
                        Some(d) => Some(d.as_int().ok_or("bad depth")? as u64),
                    },
                    trace,
                })
            }
            "property" => Ok(Record::Property {
                name: get_str("name")?,
                verdict: VerdictTag::from_tag(&get_str("verdict")?).ok_or("bad verdict tag")?,
                reason: get_opt_str("reason"),
                engine: get_str("engine")?,
            }),
            other => Err(format!("unknown record type `{other}`")),
        }
    }
}

/// Serializes a record to its on-disk line (no trailing newline): the
/// record body with a trailing `,"crc":"<16 hex>"` field whose value is
/// the FNV-1a hash of the body rendered *without* the crc field.
pub fn encode_line(rec: &Record) -> String {
    let body = rec.to_json().to_string();
    debug_assert!(body.ends_with('}'));
    let inner = &body[..body.len() - 1];
    let crc = fnv1a64(body.as_bytes());
    format!("{inner},\"crc\":\"{crc:016x}\"}}")
}

/// Verifies and parses one on-disk line. Returns an error for any
/// checksum mismatch, missing crc field, or malformed body.
pub fn decode_line(line: &str) -> Result<Record, String> {
    let (prefix, rest) = line.rsplit_once(",\"crc\":\"").ok_or("missing crc field")?;
    let hex = rest.strip_suffix("\"}").ok_or("malformed crc field")?;
    let stored = u64::from_str_radix(hex, 16).map_err(|_| "bad crc hex".to_string())?;
    let body = format!("{prefix}}}");
    if fnv1a64(body.as_bytes()) != stored {
        return Err("checksum mismatch".to_string());
    }
    let v = json::parse(&body).map_err(|e| e.to_string())?;
    Record::from_json(&v)
}

/// Structured report of what tail recovery did on open, so callers (the
/// serving daemon in particular) can log and count it instead of relying
/// on a stderr warning.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TailRecovery {
    /// Intact records kept (including the header, for journals).
    pub records_kept: usize,
    /// Complete-looking records dropped along with the torn tail.
    pub records_dropped: usize,
    /// True when the file was actually cut back.
    pub truncated: bool,
    /// Byte offset the file was truncated to (end of last good record).
    pub truncated_at: u64,
    /// Bytes removed by the truncation.
    pub dropped_bytes: u64,
    /// Why the first bad record was rejected, when `truncated`.
    pub reason: Option<String>,
}

impl TailRecovery {
    /// One-line human rendering (used by the legacy stderr warning path).
    pub fn describe(&self, path: &Path) -> String {
        format!(
            "journal {}: truncating corrupt tail at byte {} ({}); \
             {} intact record(s) kept, {} dropped",
            path.display(),
            self.truncated_at,
            self.reason.as_deref().unwrap_or("unknown"),
            self.records_kept,
            self.records_dropped,
        )
    }
}

/// Errors from opening or appending to a journal.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// An existing journal's header does not match the current run
    /// (different model, property, engine, or format version).
    Mismatch(String),
    /// [`Journal::create`] found an existing file at the path; a prior
    /// crash-recovery journal is never silently destroyed.
    Exists,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::Mismatch(m) => write!(f, "journal mismatch: {m}"),
            JournalError::Exists => write!(
                f,
                "file already exists (resume it with --resume, or delete it first)"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// An open, append-only verdict journal.
///
/// Each [`Journal::append`] writes one checksummed JSONL line, flushes,
/// and `fsync`s before returning — after `append` returns, the record
/// survives `SIGKILL`. This is deliberately unbuffered across records:
/// solver time dwarfs fsync time for every model in this repo, and the
/// whole point is that *every* completed verdict is durable.
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Creates a new journal at `path` and writes `header` as its first
    /// record. Refuses with [`JournalError::Exists`] if the path already
    /// exists: an old journal may be the only copy of a crashed run's
    /// verdicts, so overwriting requires an explicit delete (or a resume).
    pub fn create(path: &Path, header: &Record) -> Result<Journal, JournalError> {
        let file = match OpenOptions::new().create_new(true).write(true).open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => return Err(JournalError::Exists),
            Err(e) => return Err(e.into()),
        };
        let mut j = Journal {
            file,
            path: path.to_path_buf(),
        };
        j.append(header)?;
        Ok(j)
    }

    /// Opens an existing journal for resumption, printing a stderr
    /// warning if a corrupt tail was truncated. Thin wrapper over
    /// [`Journal::open_resume_report`] for callers that don't need the
    /// structured [`TailRecovery`].
    pub fn open_resume(
        path: &Path,
        expect_fingerprint: Option<u64>,
    ) -> Result<(Journal, Vec<Record>), JournalError> {
        let (journal, records, recovery) = Journal::open_resume_report(path, expect_fingerprint)?;
        if recovery.truncated {
            eprintln!("warning: {}", recovery.describe(path));
        }
        Ok((journal, records))
    }

    /// Opens an existing journal for resumption.
    ///
    /// Reads and verifies every line; at the first torn or corrupt line
    /// the file is truncated back to the end of the last good record.
    /// Returns the open journal (positioned for append), the intact
    /// records (header first), and a [`TailRecovery`] describing any
    /// truncation — nothing is printed, the caller owns reporting.
    ///
    /// Fails with [`JournalError::Mismatch`] if the file is empty, has no
    /// header, or the header's fingerprint/version differ from
    /// `expect_fingerprint` (pass `None` to skip the fingerprint check).
    pub fn open_resume_report(
        path: &Path,
        expect_fingerprint: Option<u64>,
    ) -> Result<(Journal, Vec<Record>, TailRecovery), JournalError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        // Read as bytes: a corrupt tail may not be valid UTF-8, and it
        // must be truncated like any other bad record, not turn the
        // whole open into an I/O error.
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;

        let mut records = Vec::new();
        let mut good_end = 0usize; // byte offset just past the last good line
        let mut pos = 0usize;
        let mut bad: Option<String> = None;
        while pos < raw.len() {
            let Some(nl) = raw[pos..].iter().position(|&b| b == b'\n') else {
                bad = Some("torn final record (no newline)".to_string());
                break;
            };
            let decoded = std::str::from_utf8(&raw[pos..pos + nl])
                .map_err(|_| "invalid utf-8".to_string())
                .and_then(decode_line);
            match decoded {
                Ok(rec) => {
                    records.push(rec);
                    pos += nl + 1;
                    good_end = pos;
                }
                Err(e) => {
                    bad = Some(e);
                    break;
                }
            }
        }

        match records.first() {
            Some(Record::Header {
                version,
                fingerprint,
                ..
            }) => {
                if *version != FORMAT_VERSION {
                    return Err(JournalError::Mismatch(format!(
                        "journal format v{version}, this binary writes v{FORMAT_VERSION}"
                    )));
                }
                if let Some(want) = expect_fingerprint {
                    if *fingerprint != want {
                        return Err(JournalError::Mismatch(format!(
                            "journal was written for a different run \
                             (fingerprint {fingerprint:016x}, expected {want:016x})"
                        )));
                    }
                }
            }
            Some(_) => {
                return Err(JournalError::Mismatch(
                    "first record is not a header".to_string(),
                ))
            }
            None => {
                return Err(JournalError::Mismatch(if bad.is_some() {
                    "journal header is corrupt".to_string()
                } else {
                    "journal is empty".to_string()
                }))
            }
        }

        let mut recovery = TailRecovery {
            records_kept: records.len(),
            ..TailRecovery::default()
        };
        if let Some(why) = bad {
            // The bad record plus every complete-looking line after it
            // are dropped; count them so the caller can report losses.
            recovery.records_dropped = raw[good_end..]
                .iter()
                .filter(|&&b| b == b'\n')
                .count()
                .max(1);
            recovery.truncated = true;
            recovery.truncated_at = good_end as u64;
            recovery.dropped_bytes = (raw.len() - good_end) as u64;
            recovery.reason = Some(why);
            file.set_len(good_end as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
            },
            records,
            recovery,
        ))
    }

    /// Appends one record durably (write + flush + fsync).
    pub fn append(&mut self, rec: &Record) -> Result<(), JournalError> {
        if fault::probe("journal.append") == Some(fault::FaultKind::Exhaust) {
            return Err(JournalError::Io(io::Error::other(
                "verdict-fault: injected journal write failure",
            )));
        }
        let mut line = encode_line(rec);
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        self.file.sync_data()?;
        Ok(())
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "verdict-journal-test-{}-{name}",
            std::process::id()
        ));
        p
    }

    fn header() -> Record {
        Record::Header {
            version: FORMAT_VERSION,
            fingerprint: 0xdead_beef_0123_4567,
            space: 4,
            params: vec!["N".into(), "CAP".into()],
            property: "no_overflow".into(),
            engine: "kind".into(),
        }
    }

    fn verdict(idx: u64) -> Record {
        Record::Verdict {
            idx,
            values: vec![format!("{idx}"), "true".into()],
            verdict: if idx.is_multiple_of(2) {
                VerdictTag::Safe
            } else {
                VerdictTag::Unsafe
            },
            reason: None,
            attempts: 1 + idx as u32 % 3,
            depth: if idx.is_multiple_of(2) {
                Some(idx + 1)
            } else {
                None
            },
            trace: (idx % 2 == 1).then(|| TraceRec {
                vars: vec!["x".into()],
                states: vec![vec!["0".into()], vec!["1".into()]],
                loop_back: Some(0),
            }),
        }
    }

    #[test]
    fn line_round_trip() {
        for rec in [
            header(),
            verdict(0),
            verdict(1),
            Record::Attempt {
                idx: 3,
                attempt: 2,
                reason: "timeout".into(),
            },
            Record::Property {
                name: "p \"quoted\"".into(),
                verdict: VerdictTag::Unknown,
                reason: Some("engine-failure".into()),
                engine: "portfolio".into(),
            },
        ] {
            let line = encode_line(&rec);
            assert_eq!(decode_line(&line).unwrap(), rec);
        }
    }

    #[test]
    fn corrupt_line_rejected() {
        let line = encode_line(&verdict(0));
        let flipped = line.replace("\"safe\"", "\"unsafe\"");
        assert_ne!(line, flipped);
        assert!(decode_line(&flipped).is_err());
        assert!(decode_line("not json").is_err());
        assert!(decode_line("").is_err());
    }

    #[test]
    fn create_append_resume() {
        let p = tmp("basic");
        let _ = std::fs::remove_file(&p);
        {
            let mut j = Journal::create(&p, &header()).unwrap();
            j.append(&verdict(0)).unwrap();
            j.append(&verdict(1)).unwrap();
        }
        let (mut j, recs) = Journal::open_resume(&p, Some(0xdead_beef_0123_4567)).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[1], verdict(0));
        // Appending after resume keeps the file valid.
        j.append(&verdict(2)).unwrap();
        drop(j);
        let (_, recs) = Journal::open_resume(&p, None).unwrap();
        assert_eq!(recs.len(), 4);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_rejected() {
        let p = tmp("fp");
        let _ = std::fs::remove_file(&p);
        drop(Journal::create(&p, &header()).unwrap());
        assert!(matches!(
            Journal::open_resume(&p, Some(1)),
            Err(JournalError::Mismatch(_))
        ));
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn torn_tail_truncated() {
        let p = tmp("torn");
        let _ = std::fs::remove_file(&p);
        {
            let mut j = Journal::create(&p, &header()).unwrap();
            j.append(&verdict(0)).unwrap();
            j.append(&verdict(1)).unwrap();
        }
        let full = std::fs::read(&p).unwrap();
        // Chop the file at every byte boundary inside the last record and
        // check resume always recovers the intact prefix.
        let second_last_nl = full[..full.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .unwrap();
        for cut in (second_last_nl + 1..full.len()).step_by(7) {
            std::fs::write(&p, &full[..cut]).unwrap();
            let (_, recs) = Journal::open_resume(&p, None).unwrap();
            assert_eq!(recs.len(), 2, "cut at {cut}");
            assert_eq!(recs[1], verdict(0));
            // The file was repaired: reopening sees a clean journal.
            let (_, recs2) = Journal::open_resume(&p, None).unwrap();
            assert_eq!(recs2.len(), 2);
        }
        // Bit-flip inside the second record: it and everything after are
        // dropped, leaving only the header.
        let mut bad = full.clone();
        let idx = second_last_nl - 20;
        bad[idx] ^= 0x01;
        std::fs::write(&p, &bad).unwrap();
        let (_, recs) = Journal::open_resume(&p, None).unwrap();
        assert_eq!(recs.len(), 1);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn non_utf8_tail_truncated() {
        let p = tmp("utf8");
        let _ = std::fs::remove_file(&p);
        {
            let mut j = Journal::create(&p, &header()).unwrap();
            j.append(&verdict(0)).unwrap();
        }
        // A torn write can leave arbitrary bytes; 0xFF 0xFE is not valid
        // UTF-8 anywhere. With a newline the bad line is corrupt; without
        // one it is torn — both must truncate back to the good prefix.
        let good = std::fs::read(&p).unwrap();
        for tail in [&b"\xff\xfe{\"type\":\"verdict\"}\n"[..], &b"\xff\xfe"[..]] {
            let mut bytes = good.clone();
            bytes.extend_from_slice(tail);
            std::fs::write(&p, &bytes).unwrap();
            let (_, recs) = Journal::open_resume(&p, None).unwrap();
            assert_eq!(recs.len(), 2);
            assert_eq!(std::fs::read(&p).unwrap(), good);
        }
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn create_refuses_existing_file() {
        let p = tmp("exists");
        let _ = std::fs::remove_file(&p);
        drop(Journal::create(&p, &header()).unwrap());
        assert!(matches!(
            Journal::create(&p, &header()),
            Err(JournalError::Exists)
        ));
        // The existing journal is untouched and still resumable.
        let (_, recs) = Journal::open_resume(&p, None).unwrap();
        assert_eq!(recs.len(), 1);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn empty_or_headerless_rejected() {
        let p = tmp("empty");
        std::fs::write(&p, b"").unwrap();
        assert!(matches!(
            Journal::open_resume(&p, None),
            Err(JournalError::Mismatch(_))
        ));
        let line = encode_line(&verdict(0));
        std::fs::write(&p, format!("{line}\n")).unwrap();
        assert!(matches!(
            Journal::open_resume(&p, None),
            Err(JournalError::Mismatch(_))
        ));
        std::fs::remove_file(&p).unwrap();
    }
}
