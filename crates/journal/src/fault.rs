//! Deterministic fault injection.
//!
//! A [`FaultPlan`] arms a set of probe *sites* — well-known string names
//! compiled into the solver and orchestration crates — so that the k-th
//! time execution reaches a site, a failure is injected: a panic, a
//! simulated arithmetic-overflow poisoning, or simulated resource
//! exhaustion. Probes are zero-cost when nothing is armed (one relaxed
//! atomic load) and every fault fires exactly once, so a run with a plan
//! installed is deterministic given the same schedule of probe hits.
//!
//! The registry is process-global because the alternative — threading a
//! handle through every solver loop — would contaminate dozens of hot
//! signatures for a test-only facility. Tests that install plans must
//! serialize on [`test_lock`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use verdict_prng::Prng;

/// What a probe does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the probe site (exercises `catch_unwind` containment).
    Panic,
    /// Simulate arithmetic overflow: the probing component poisons itself
    /// as if an `i128` computation had overflowed.
    Overflow,
    /// Simulate resource exhaustion: the probing component behaves as if
    /// a clause/node/memory ceiling had been hit.
    Exhaust,
}

impl FaultKind {
    /// Stable lowercase tag, for CLI specs and logs.
    pub fn tag(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Overflow => "overflow",
            FaultKind::Exhaust => "exhaust",
        }
    }

    /// Parses a tag produced by [`FaultKind::tag`].
    pub fn from_tag(s: &str) -> Option<FaultKind> {
        match s {
            "panic" => Some(FaultKind::Panic),
            "overflow" => Some(FaultKind::Overflow),
            "exhaust" => Some(FaultKind::Exhaust),
            _ => None,
        }
    }
}

/// Every probe site compiled into the workspace. `FaultPlan::seeded` draws
/// from this list, and tests sweep it.
pub const SITES: &[&str] = &[
    "sat.solve",
    "smt.pivot",
    "bdd.ite",
    "mc.budget",
    "mc.synth.worker",
    "mc.portfolio.worker",
    "mc.certify",
    "journal.append",
    "server.worker.hang",
    "server.worker.panic",
    "wal.append",
];

/// One armed fault: fire `kind` on the `hit`-th arrival at `site`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Probe-site name (see [`SITES`]).
    pub site: String,
    /// What to inject.
    pub kind: FaultKind,
    /// 1-based hit count at which to fire (1 = first arrival).
    pub hit: u64,
}

/// A set of faults to install for one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The armed faults. Multiple specs may target the same site.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan with a single fault.
    pub fn single(site: &str, kind: FaultKind, hit: u64) -> FaultPlan {
        FaultPlan {
            specs: vec![FaultSpec {
                site: site.to_string(),
                kind,
                hit,
            }],
        }
    }

    /// Parses `site:kind:hit[,site:kind:hit...]`, e.g.
    /// `sat.solve:panic:3,mc.budget:exhaust:1`. `hit` defaults to 1 when
    /// omitted (`site:kind`).
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut specs = Vec::new();
        for part in s.split(',').filter(|p| !p.trim().is_empty()) {
            let fields: Vec<&str> = part.trim().split(':').collect();
            let (site, kind, hit) = match fields.as_slice() {
                [site, kind] => (*site, *kind, 1),
                [site, kind, hit] => (
                    *site,
                    *kind,
                    hit.parse::<u64>()
                        .map_err(|_| format!("bad hit count in fault spec `{part}`"))?,
                ),
                _ => return Err(format!("bad fault spec `{part}` (want site:kind[:hit])")),
            };
            let kind = FaultKind::from_tag(kind)
                .ok_or_else(|| format!("unknown fault kind `{kind}` in `{part}`"))?;
            if hit == 0 {
                return Err(format!("hit count must be >= 1 in `{part}`"));
            }
            if !SITES.contains(&site) {
                return Err(format!(
                    "unknown probe site `{site}` (known: {})",
                    SITES.join(", ")
                ));
            }
            specs.push(FaultSpec {
                site: site.to_string(),
                kind,
                hit,
            });
        }
        Ok(FaultPlan { specs })
    }

    /// A deterministic single-fault plan drawn from `seed`: uniformly
    /// picks a site, a kind, and a hit count in 1..=5.
    pub fn seeded(seed: u64) -> FaultPlan {
        let mut rng = Prng::seed_from_u64(seed);
        let site = SITES[(rng.next_u64() % SITES.len() as u64) as usize];
        let kind = match rng.next_u64() % 3 {
            0 => FaultKind::Panic,
            1 => FaultKind::Overflow,
            _ => FaultKind::Exhaust,
        };
        let hit = 1 + rng.next_u64() % 5;
        FaultPlan::single(site, kind, hit)
    }

    /// Renders the plan back into the `parse` syntax.
    pub fn to_spec_string(&self) -> String {
        self.specs
            .iter()
            .map(|s| format!("{}:{}:{}", s.site, s.kind.tag(), s.hit))
            .collect::<Vec<_>>()
            .join(",")
    }
}

struct ArmedFault {
    spec: FaultSpec,
    remaining: u64,
    fired: bool,
}

/// Fast-path flag: probes bail immediately when nothing is armed.
static ARMED: AtomicBool = AtomicBool::new(false);
/// Set when an `Exhaust` fault fires anywhere, so budget accounting can
/// report `ResourceExhausted` even though no real ceiling was hit.
static EXHAUST_FIRED: AtomicBool = AtomicBool::new(false);
/// Monotone count of faults fired since process start (never reset by
/// `install`/`clear`); observability layers snapshot it and report deltas.
static FIRED_COUNT: AtomicU64 = AtomicU64::new(0);

static ACTIVE: OnceLock<Mutex<Vec<ArmedFault>>> = OnceLock::new();

fn active() -> &'static Mutex<Vec<ArmedFault>> {
    ACTIVE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Installs `plan` process-wide, replacing any previous plan and clearing
/// hit counters.
pub fn install(plan: &FaultPlan) {
    let mut g = active().lock().unwrap_or_else(|e| e.into_inner());
    *g = plan
        .specs
        .iter()
        .map(|s| ArmedFault {
            spec: s.clone(),
            remaining: s.hit,
            fired: false,
        })
        .collect();
    EXHAUST_FIRED.store(false, Ordering::SeqCst);
    ARMED.store(!g.is_empty(), Ordering::SeqCst);
}

/// Disarms all faults and clears the exhaust flag.
pub fn clear() {
    let mut g = active().lock().unwrap_or_else(|e| e.into_inner());
    g.clear();
    ARMED.store(false, Ordering::SeqCst);
    EXHAUST_FIRED.store(false, Ordering::SeqCst);
}

/// Records a hit at `site`; returns the fault to inject if one fires now.
///
/// Each armed spec fires at most once. When several specs on the same
/// site fire on the same hit, the first installed wins.
pub fn probe(site: &str) -> Option<FaultKind> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let mut g = active().lock().unwrap_or_else(|e| e.into_inner());
    let mut fired = None;
    for f in g.iter_mut() {
        if f.fired || f.spec.site != site {
            continue;
        }
        // Count this arrival against every live spec on the site, but
        // only the first one to reach zero fires.
        if f.remaining > 0 {
            f.remaining -= 1;
        }
        if f.remaining == 0 && fired.is_none() {
            f.fired = true;
            fired = Some(f.spec.kind);
        }
    }
    if fired.is_some() {
        FIRED_COUNT.fetch_add(1, Ordering::SeqCst);
    }
    if fired == Some(FaultKind::Exhaust) {
        EXHAUST_FIRED.store(true, Ordering::SeqCst);
    }
    fired
}

/// Total faults fired since process start. Monotone — survives
/// `install`/`clear` — so stats sinks can compute per-run deltas.
pub fn fired_count() -> u64 {
    FIRED_COUNT.load(Ordering::SeqCst)
}

/// Whether an `Exhaust` fault has fired since the last `install`/`clear`.
/// Budget accounting consults this to report `ResourceExhausted` for
/// simulated exhaustion.
pub fn exhaust_fired() -> bool {
    EXHAUST_FIRED.load(Ordering::SeqCst)
}

/// The message carried by injected panics, so containment layers (and
/// humans reading logs) can tell them from organic bugs.
pub const PANIC_TAG: &str = "verdict-fault: injected panic";

/// Probes `site` and panics if a `Panic` fault fires there. Convenience
/// for sites that only support panic injection.
pub fn panic_if_armed(site: &str) {
    if probe(site) == Some(FaultKind::Panic) {
        panic!("{PANIC_TAG} at {site}");
    }
}

static TEST_LOCK: OnceLock<Mutex<()>> = OnceLock::new();

/// Serializes tests that install fault plans (the registry is global).
/// Poisoned locks are recovered: a panicking fault test must not poison
/// the rest of the suite.
pub fn test_lock() -> MutexGuard<'static, ()> {
    TEST_LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let p = FaultPlan::parse("sat.solve:panic:3,mc.budget:exhaust").unwrap();
        assert_eq!(p.specs.len(), 2);
        assert_eq!(p.specs[0].hit, 3);
        assert_eq!(p.specs[1].hit, 1);
        assert_eq!(
            FaultPlan::parse(&p.to_spec_string()).unwrap(),
            FaultPlan::parse("sat.solve:panic:3,mc.budget:exhaust:1").unwrap()
        );
        assert!(FaultPlan::parse("nope.site:panic:1").is_err());
        assert!(FaultPlan::parse("sat.solve:frob:1").is_err());
        assert!(FaultPlan::parse("sat.solve:panic:0").is_err());
        assert!(FaultPlan::parse("").unwrap().specs.is_empty());
    }

    #[test]
    fn fires_on_kth_hit_once() {
        let _g = test_lock();
        install(&FaultPlan::single("sat.solve", FaultKind::Panic, 3));
        assert_eq!(probe("sat.solve"), None);
        assert_eq!(probe("smt.pivot"), None);
        assert_eq!(probe("sat.solve"), None);
        assert_eq!(probe("sat.solve"), Some(FaultKind::Panic));
        assert_eq!(probe("sat.solve"), None);
        clear();
        assert_eq!(probe("sat.solve"), None);
    }

    #[test]
    fn exhaust_flag() {
        let _g = test_lock();
        install(&FaultPlan::single("mc.budget", FaultKind::Exhaust, 1));
        assert!(!exhaust_fired());
        assert_eq!(probe("mc.budget"), Some(FaultKind::Exhaust));
        assert!(exhaust_fired());
        clear();
        assert!(!exhaust_fired());
    }

    #[test]
    fn seeded_is_deterministic_and_valid() {
        for seed in 0..64 {
            let a = FaultPlan::seeded(seed);
            assert_eq!(a, FaultPlan::seeded(seed));
            assert_eq!(a.specs.len(), 1);
            assert!(SITES.contains(&a.specs[0].site.as_str()));
            assert!((1..=5).contains(&a.specs[0].hit));
        }
    }
}
