//! Group-commit, segment-rotated write-ahead log.
//!
//! The PR-4 [`crate::Journal`] fsyncs once per appended record — correct,
//! and fine when solver time dwarfs fsync time. A serving daemon breaks
//! that assumption: thousands of concurrent job records would serialize
//! on one fsync each. This module is the ringwal-style upgrade:
//!
//! * **Per-writer rings.** Every [`WalWriter`] owns the producer side of
//!   a `verdict-ring` SPSC ring; no writer ever contends with another on
//!   the append path. A dedicated committer thread drains all rings.
//! * **Group commit.** The committer writes everything currently visible
//!   across all rings as one batch, then calls `fsync` **once** and only
//!   then acknowledges every record in the batch. While an fsync is in
//!   flight new appends pile up in the rings, so the next batch is
//!   bigger — fsyncs amortize naturally under load, with no commit-delay
//!   timer. [`Wal::stats`] exposes appends vs. fsyncs so the effect is
//!   measurable (the `server` stats group surfaces it).
//! * **CRC'd segments with rotation.** Records are checksummed JSONL
//!   lines (`{"seq":N,"rec":…,"crc":"…"}`, FNV-1a like the journal) in
//!   numbered segment files (`seg-00000001.wal`, …) rotated at a size
//!   threshold. [`Wal::open`] re-verifies every record, truncates a torn
//!   tail, and reports what it kept and dropped as a structured
//!   [`WalRecovery`] — a SIGKILL at any byte boundary recovers every
//!   acknowledged record.
//!
//! An [`WalWriter::append`] that returns `Ok(seq)` is a durability
//! guarantee: the record was written and fsync'd. Records a crash cuts
//! before the fsync were, by construction, never acknowledged.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use verdict_ring::{ring, Consumer, Doorbell, Producer};

use crate::{fnv1a64, TailRecovery};

/// Segment file name for 1-based index `n`.
fn segment_name(n: u64) -> String {
    format!("seg-{n:08}.wal")
}

/// Parses a segment file name back to its index.
fn segment_index(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(".wal")?;
    if rest.len() != 8 || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

/// Tuning knobs for a [`Wal`].
#[derive(Clone, Debug)]
pub struct WalOptions {
    /// Rotate to a new segment once the current one exceeds this many
    /// bytes (checked between group commits, so a segment may overshoot
    /// by up to one batch).
    pub segment_bytes: u64,
    /// Capacity of each writer's ring (records in flight per writer).
    pub ring_capacity: usize,
    /// Maximum records folded into one group commit.
    pub batch_limit: usize,
}

impl Default for WalOptions {
    fn default() -> WalOptions {
        WalOptions {
            segment_bytes: 4 << 20,
            ring_capacity: 256,
            batch_limit: 4096,
        }
    }
}

/// Errors from WAL operations.
#[derive(Debug)]
pub enum WalError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The committer thread hit an I/O error earlier; the WAL no longer
    /// accepts appends (recovery on restart is the way out).
    Poisoned(String),
    /// The record payload is not a single line.
    Payload(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Poisoned(m) => write!(f, "wal poisoned: {m}"),
            WalError::Payload(m) => write!(f, "wal payload rejected: {m}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> WalError {
        WalError::Io(e)
    }
}

/// Counter snapshot, read via [`Wal::stats`]. `appends` counts records
/// durably committed; `fsyncs < appends` is the group-commit win.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records durably appended (acknowledged).
    pub appends: u64,
    /// Group commits performed (batches of ≥ 1 record).
    pub group_commits: u64,
    /// `fsync` calls issued (group commits plus rotation syncs).
    pub fsyncs: u64,
    /// Segment rotations performed.
    pub rotations: u64,
}

/// What [`Wal::open`] found on disk.
#[derive(Clone, Debug, Default)]
pub struct WalRecovery {
    /// Intact record payloads, in sequence order.
    pub records: Vec<String>,
    /// Segment files scanned.
    pub segments: usize,
    /// Complete-looking lines dropped after the first corrupt record
    /// (the torn record itself is counted too).
    pub records_dropped: usize,
    /// Torn/corrupt-tail details for the segment that was cut, if any.
    pub tail: TailRecovery,
    /// Segment file the tail was truncated in, if any.
    pub truncated_segment: Option<String>,
}

/// Serializes one WAL frame (no trailing newline).
fn encode_frame(seq: u64, payload: &str) -> String {
    let body = format!("{{\"seq\":{seq},\"rec\":{payload}}}");
    let crc = fnv1a64(body.as_bytes());
    format!("{},\"crc\":\"{crc:016x}\"}}", &body[..body.len() - 1])
}

/// Verifies and splits one WAL frame into `(seq, payload)`.
fn decode_frame(line: &str) -> Result<(u64, &str), String> {
    let (prefix, rest) = line.rsplit_once(",\"crc\":\"").ok_or("missing crc field")?;
    let hex = rest.strip_suffix("\"}").ok_or("malformed crc field")?;
    let stored = u64::from_str_radix(hex, 16).map_err(|_| "bad crc hex".to_string())?;
    let body = format!("{prefix}}}");
    if fnv1a64(body.as_bytes()) != stored {
        return Err("checksum mismatch".to_string());
    }
    let inner = prefix
        .strip_prefix("{\"seq\":")
        .ok_or("missing seq field")?;
    let (digits, payload) = inner.split_once(",\"rec\":").ok_or("missing rec field")?;
    let seq: u64 = digits.parse().map_err(|_| "bad seq".to_string())?;
    Ok((seq, payload))
}

/// One in-flight append: payload plus the cell the committer resolves.
struct Pending {
    payload: String,
    ack: Arc<AckCell>,
}

/// Resolution state of one append, shared writer ↔ committer.
struct AckCell {
    state: Mutex<AckState>,
    cv: Condvar,
}

enum AckState {
    Waiting,
    Durable(u64),
    Failed(String),
}

impl AckCell {
    fn new() -> Arc<AckCell> {
        Arc::new(AckCell {
            state: Mutex::new(AckState::Waiting),
            cv: Condvar::new(),
        })
    }

    fn resolve(&self, outcome: AckState) {
        let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *g = outcome;
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<u64, WalError> {
        let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match &*g {
                AckState::Waiting => {
                    g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
                }
                AckState::Durable(seq) => return Ok(*seq),
                AckState::Failed(m) => return Err(WalError::Poisoned(m.clone())),
            }
        }
    }
}

/// State shared between writers, the committer thread, and the handle.
struct Shared {
    dir: PathBuf,
    opts: WalOptions,
    /// Rung by writers after pushing; built on the committer thread.
    doorbell: Doorbell,
    /// Records pushed but not yet resolved — the committer's work signal.
    backlog: AtomicU64,
    /// New writers park their ring consumers here for adoption.
    inbox: Mutex<Vec<Consumer<Pending>>>,
    /// Set when the committer can no longer write; appends fail fast.
    poisoned: Mutex<Option<String>>,
    /// Tells the committer to drain and exit.
    closing: AtomicBool,
    appends: AtomicU64,
    group_commits: AtomicU64,
    fsyncs: AtomicU64,
    rotations: AtomicU64,
}

/// The open write-ahead log. Create writers with [`Wal::writer`]; close
/// with [`Wal::close`] (or drop) to drain and fsync everything pending.
pub struct Wal {
    shared: Arc<Shared>,
    committer: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.shared.dir)
            .finish_non_exhaustive()
    }
}

/// The append handle for one writer thread. Not `Clone` — each handle
/// owns one SPSC ring; hand every concurrent appender its own (or pool
/// them with [`WriterPool`]).
pub struct WalWriter {
    producer: Producer<Pending>,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter").finish_non_exhaustive()
    }
}

impl WalWriter {
    /// Appends one record and blocks until it is fsync'd (possibly as
    /// part of a larger group commit). Returns the record's sequence
    /// number. The payload must be a single line (one JSON value by
    /// convention; the WAL itself treats it as opaque bytes).
    pub fn append(&mut self, payload: &str) -> Result<u64, WalError> {
        self.append_nowait(payload)?.wait()
    }

    /// Appends without waiting: the returned ticket resolves when the
    /// record's group commit completes. Lets one writer keep many
    /// records in flight (deeper batches than one-append-per-writer).
    pub fn append_nowait(&mut self, payload: &str) -> Result<WalTicket, WalError> {
        if payload.contains('\n') {
            return Err(WalError::Payload("payload contains a newline".into()));
        }
        // Fault-injection probe at site `wal.append`: `Panic` panics in
        // the appending thread, other kinds surface as an I/O error —
        // both exercise the daemon's reserve-before-append unwinding.
        match crate::fault::probe("wal.append") {
            Some(crate::fault::FaultKind::Panic) => {
                panic!("{} at wal.append", crate::fault::PANIC_TAG);
            }
            Some(_) => {
                return Err(WalError::Io(io::Error::other("injected wal.append fault")));
            }
            None => {}
        }
        if let Some(m) = &*self
            .shared
            .poisoned
            .lock()
            .unwrap_or_else(|e| e.into_inner())
        {
            return Err(WalError::Poisoned(m.clone()));
        }
        let ack = AckCell::new();
        let mut pending = Pending {
            payload: payload.to_string(),
            ack: Arc::clone(&ack),
        };
        // Count before pushing so the committer's has-work check can
        // never observe a pushed record with a zero backlog.
        self.shared.backlog.fetch_add(1, Ordering::Release);
        loop {
            match self.producer.push(pending) {
                Ok(()) => break,
                Err(back) => {
                    // Ring full: the committer is behind; nudge it and
                    // yield rather than spin.
                    pending = back;
                    self.shared.doorbell.ring();
                    std::thread::yield_now();
                }
            }
        }
        self.shared.doorbell.ring();
        Ok(WalTicket { ack })
    }
}

/// A pending append from [`WalWriter::append_nowait`].
#[derive(Debug)]
pub struct WalTicket {
    ack: Arc<AckCell>,
}

impl std::fmt::Debug for AckCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AckCell").finish_non_exhaustive()
    }
}

impl WalTicket {
    /// Blocks until the record is durable; returns its sequence number.
    pub fn wait(self) -> Result<u64, WalError> {
        self.ack.wait()
    }
}

/// A checkout pool over a fixed set of [`WalWriter`]s, for callers with
/// more (or shorter-lived) threads than writers — e.g. a daemon's
/// per-connection handlers. Checkout serializes only on a brief mutex;
/// the appends themselves still go through per-writer rings.
pub struct WriterPool {
    writers: Mutex<Vec<WalWriter>>,
    cv: Condvar,
}

impl std::fmt::Debug for WriterPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriterPool").finish_non_exhaustive()
    }
}

impl WriterPool {
    /// A pool of `n` fresh writers on `wal`.
    pub fn new(wal: &Wal, n: usize) -> WriterPool {
        WriterPool {
            writers: Mutex::new((0..n.max(1)).map(|_| wal.writer()).collect()),
            cv: Condvar::new(),
        }
    }

    /// Appends durably through any free writer (blocks while all are
    /// mid-append).
    pub fn append(&self, payload: &str) -> Result<u64, WalError> {
        let mut g = self.writers.lock().unwrap_or_else(|e| e.into_inner());
        let mut w = loop {
            if let Some(w) = g.pop() {
                break w;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        };
        drop(g);
        let result = w.append(payload);
        self.writers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(w);
        self.cv.notify_one();
        result
    }
}

impl Wal {
    /// Opens (creating if necessary) the WAL at directory `dir`,
    /// recovering every intact record: segments are scanned in order,
    /// each frame's CRC and sequence number verified, and the log
    /// truncated at the first torn or corrupt frame. Returns the open
    /// WAL (appends continue after the recovered tail) and the recovery
    /// report — the caller decides how to log it.
    pub fn open(dir: &Path, opts: WalOptions) -> Result<(Wal, WalRecovery), WalError> {
        fs::create_dir_all(dir)?;
        let mut segments: Vec<u64> = fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| segment_index(&e.file_name().to_string_lossy()))
            .collect();
        segments.sort_unstable();

        let mut recovery = WalRecovery::default();
        let mut next_seq: u64 = 1;
        // (segment index, byte offset) where the good prefix ends.
        let mut cut: Option<(u64, u64, String)> = None;
        for (i, &seg) in segments.iter().enumerate() {
            recovery.segments += 1;
            let path = dir.join(segment_name(seg));
            let mut raw = Vec::new();
            File::open(&path)?.read_to_end(&mut raw)?;
            let mut pos = 0usize;
            let mut good_end = 0usize;
            while pos < raw.len() {
                let Some(nl) = raw[pos..].iter().position(|&b| b == b'\n') else {
                    cut = Some((
                        seg,
                        good_end as u64,
                        "torn final record (no newline)".into(),
                    ));
                    recovery.records_dropped += 1;
                    break;
                };
                let decoded = std::str::from_utf8(&raw[pos..pos + nl])
                    .map_err(|_| "invalid utf-8".to_string())
                    .and_then(decode_frame)
                    .and_then(|(seq, payload)| {
                        if seq == next_seq {
                            Ok(payload.to_string())
                        } else {
                            Err(format!("sequence gap (found {seq}, expected {next_seq})"))
                        }
                    });
                match decoded {
                    Ok(payload) => {
                        recovery.records.push(payload);
                        next_seq += 1;
                        pos += nl + 1;
                        good_end = pos;
                    }
                    Err(e) => {
                        cut = Some((seg, good_end as u64, e));
                        // Count the bad line plus every remaining
                        // newline-terminated line in this segment.
                        recovery.records_dropped +=
                            raw[pos..].iter().filter(|&&b| b == b'\n').count().max(1);
                        break;
                    }
                }
            }
            if let Some((cut_seg, at, reason)) = &cut {
                // Everything after the first corruption is untrusted:
                // truncate this segment and delete any later ones (the
                // common SIGKILL case cuts only the final segment's
                // tail, so acknowledged records are never here).
                let bytes_dropped = raw.len() as u64 - at;
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(*at)?;
                file.sync_data()?;
                for &later in &segments[i + 1..] {
                    let later_path = dir.join(segment_name(later));
                    let mut later_raw = Vec::new();
                    File::open(&later_path)?.read_to_end(&mut later_raw)?;
                    recovery.records_dropped += later_raw.iter().filter(|&&b| b == b'\n').count();
                    fs::remove_file(&later_path)?;
                }
                recovery.tail = TailRecovery {
                    records_kept: recovery.records.len(),
                    records_dropped: recovery.records_dropped,
                    truncated: true,
                    truncated_at: *at,
                    dropped_bytes: bytes_dropped,
                    reason: Some(reason.clone()),
                };
                recovery.truncated_segment = Some(segment_name(*cut_seg));
                break;
            }
        }
        if !recovery.tail.truncated {
            recovery.tail.records_kept = recovery.records.len();
        }

        // Resume appending into the last surviving segment (or a fresh
        // first one).
        let current_seg = match &recovery.truncated_segment {
            Some(name) => segment_index(name).expect("own segment name parses"),
            None => segments.last().copied().unwrap_or(1),
        };
        let current_path = dir.join(segment_name(current_seg));
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&current_path)?;
        let current_len = file.metadata()?.len();
        sync_dir(dir);

        let shared_seed = (Arc::new(Mutex::new(None::<Arc<Shared>>)), Condvar::new());
        // The doorbell must be constructed on the committer thread (it
        // parks that thread), so Shared is built there and handed back.
        let dir_owned = dir.to_path_buf();
        let seed = Arc::new(shared_seed);
        let seed2 = Arc::clone(&seed);
        let committer = std::thread::Builder::new()
            .name("wal-committer".into())
            .spawn(move || {
                let shared = Arc::new(Shared {
                    dir: dir_owned,
                    opts,
                    doorbell: Doorbell::new(),
                    backlog: AtomicU64::new(0),
                    inbox: Mutex::new(Vec::new()),
                    poisoned: Mutex::new(None),
                    closing: AtomicBool::new(false),
                    appends: AtomicU64::new(0),
                    group_commits: AtomicU64::new(0),
                    fsyncs: AtomicU64::new(0),
                    rotations: AtomicU64::new(0),
                });
                {
                    let (lock, cv) = &*seed2;
                    *lock.lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&shared));
                    cv.notify_all();
                }
                committer_loop(shared, file, current_seg, current_len, next_seq);
            })
            .expect("wal committer thread spawns");

        let (lock, cv) = &*seed;
        let mut g = lock.lock().unwrap_or_else(|e| e.into_inner());
        while g.is_none() {
            g = cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        let shared = g.take().expect("committer published shared state");
        drop(g);

        Ok((
            Wal {
                shared,
                committer: Some(committer),
            },
            recovery,
        ))
    }

    /// Creates a new writer with its own ring. Writers are adopted by
    /// the committer and live as long as the WAL — hand long-lived
    /// threads their own, pool short-lived ones ([`WriterPool`]).
    pub fn writer(&self) -> WalWriter {
        let (producer, consumer) = ring::<Pending>(self.shared.opts.ring_capacity);
        self.shared
            .inbox
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(consumer);
        self.shared.doorbell.ring();
        WalWriter {
            producer,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WalStats {
        WalStats {
            appends: self.shared.appends.load(Ordering::Relaxed),
            group_commits: self.shared.group_commits.load(Ordering::Relaxed),
            fsyncs: self.shared.fsyncs.load(Ordering::Relaxed),
            rotations: self.shared.rotations.load(Ordering::Relaxed),
        }
    }

    /// The WAL directory.
    pub fn dir(&self) -> &Path {
        &self.shared.dir
    }

    /// Drains every pending append, fsyncs, and stops the committer.
    /// Outstanding appends resolve before this returns.
    pub fn close(mut self) {
        self.close_inner();
    }

    fn close_inner(&mut self) {
        if let Some(handle) = self.committer.take() {
            self.shared.closing.store(true, Ordering::Release);
            self.shared.doorbell.ring();
            let _ = handle.join();
        }
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.close_inner();
    }
}

/// Best-effort directory fsync so segment creation/removal survives a
/// crash of the whole machine, not just the process. Ignored on
/// filesystems that refuse to sync directories.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// The committer: adopt new rings, drain a batch, write, fsync once,
/// acknowledge, rotate when the segment is full.
fn committer_loop(
    shared: Arc<Shared>,
    mut file: File,
    mut segment: u64,
    mut segment_len: u64,
    mut next_seq: u64,
) {
    let mut consumers: Vec<Consumer<Pending>> = Vec::new();
    let mut batch: Vec<Pending> = Vec::new();
    let mut buf = String::new();
    loop {
        let closing = shared.closing.load(Ordering::Acquire);
        if !closing {
            // Park until a writer rings (or a periodic close check).
            shared.doorbell.wait(Some(Duration::from_millis(100)), || {
                shared.backlog.load(Ordering::Acquire) > 0 || shared.closing.load(Ordering::Acquire)
            });
        }
        {
            let mut inbox = shared.inbox.lock().unwrap_or_else(|e| e.into_inner());
            consumers.append(&mut inbox);
        }
        batch.clear();
        // Sweep all rings repeatedly until a full pass finds nothing —
        // stragglers published during the sweep join this commit instead
        // of paying for their own fsync.
        loop {
            let mut drained = 0usize;
            for c in &mut consumers {
                drained += c.drain(|p| batch.push(p));
                if batch.len() >= shared.opts.batch_limit {
                    break;
                }
            }
            if drained == 0 || batch.len() >= shared.opts.batch_limit {
                break;
            }
        }
        if batch.is_empty() {
            if shared.closing.load(Ordering::Acquire) && shared.backlog.load(Ordering::Acquire) == 0
            {
                let _ = file.sync_data();
                return;
            }
            continue;
        }

        // Rotate between commits once the segment is over the limit.
        if segment_len > shared.opts.segment_bytes {
            match rotate(&shared, &mut file, &mut segment) {
                Ok(()) => segment_len = 0,
                Err(e) => {
                    poison(&shared, &mut batch, &e);
                    continue;
                }
            }
        }

        buf.clear();
        let first_seq = next_seq;
        for p in &batch {
            buf.push_str(&encode_frame(next_seq, &p.payload));
            buf.push('\n');
            next_seq += 1;
        }
        let commit = file
            .write_all(buf.as_bytes())
            .and_then(|()| file.sync_data());
        match commit {
            Ok(()) => {
                segment_len += buf.len() as u64;
                shared
                    .appends
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                shared.group_commits.fetch_add(1, Ordering::Relaxed);
                shared.fsyncs.fetch_add(1, Ordering::Relaxed);
                for (i, p) in batch.drain(..).enumerate() {
                    p.ack.resolve(AckState::Durable(first_seq + i as u64));
                }
                shared
                    .backlog
                    .fetch_sub(next_seq - first_seq, Ordering::Release);
            }
            Err(e) => {
                next_seq = first_seq;
                poison(&shared, &mut batch, &format!("group commit failed: {e}"));
            }
        }
    }
}

/// Marks the WAL failed: the batch (and every later append) resolves
/// with an error instead of hanging a writer forever.
fn poison(shared: &Shared, batch: &mut Vec<Pending>, why: &str) {
    {
        let mut g = shared.poisoned.lock().unwrap_or_else(|e| e.into_inner());
        if g.is_none() {
            *g = Some(why.to_string());
        }
    }
    let n = batch.len() as u64;
    for p in batch.drain(..) {
        p.ack.resolve(AckState::Failed(why.to_string()));
    }
    shared.backlog.fetch_sub(n, Ordering::Release);
}

/// Closes the current segment durably and opens the next one.
fn rotate(shared: &Shared, file: &mut File, segment: &mut u64) -> Result<(), String> {
    file.sync_data().map_err(|e| format!("segment sync: {e}"))?;
    shared.fsyncs.fetch_add(1, Ordering::Relaxed);
    *segment += 1;
    let path = shared.dir.join(segment_name(*segment));
    let next = OpenOptions::new()
        .create_new(true)
        .append(true)
        .open(&path)
        .map_err(|e| format!("segment create {}: {e}", path.display()))?;
    sync_dir(&shared.dir);
    shared.rotations.fetch_add(1, Ordering::Relaxed);
    *file = next;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("verdict-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn frame_round_trip() {
        let line = encode_frame(7, "{\"k\":\"v\"}");
        let (seq, payload) = decode_frame(&line).unwrap();
        assert_eq!(seq, 7);
        assert_eq!(payload, "{\"k\":\"v\"}");
        assert!(decode_frame(&line.replace("\"v\"", "\"w\"")).is_err());
        assert!(decode_frame("garbage").is_err());
    }

    #[test]
    fn append_recover_round_trip() {
        let dir = tmp_dir("basic");
        {
            let (wal, rec) = Wal::open(&dir, WalOptions::default()).unwrap();
            assert!(rec.records.is_empty());
            let mut w = wal.writer();
            for i in 0..10 {
                let seq = w.append(&format!("{{\"i\":{i}}}")).unwrap();
                assert_eq!(seq, i + 1);
            }
            wal.close();
        }
        let (wal, rec) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(rec.records.len(), 10);
        assert_eq!(rec.records[3], "{\"i\":3}");
        assert!(!rec.tail.truncated);
        // Appends continue after the recovered tail with the next seq.
        let mut w = wal.writer();
        assert_eq!(w.append("{\"i\":10}").unwrap(), 11);
        wal.close();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_spreads_segments() {
        let dir = tmp_dir("rotate");
        let opts = WalOptions {
            segment_bytes: 128,
            ..WalOptions::default()
        };
        {
            let (wal, _) = Wal::open(&dir, opts.clone()).unwrap();
            let mut w = wal.writer();
            for i in 0..40 {
                w.append(&format!("{{\"i\":{i}}}")).unwrap();
            }
            assert!(wal.stats().rotations >= 2, "{:?}", wal.stats());
            wal.close();
        }
        let segs = fs::read_dir(&dir).unwrap().count();
        assert!(segs >= 3, "expected several segments, got {segs}");
        let (wal, rec) = Wal::open(&dir, opts).unwrap();
        assert_eq!(rec.records.len(), 40);
        assert!(rec.segments >= 3);
        wal.close();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pipelined_appends_group_commit() {
        let dir = tmp_dir("group");
        let (wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
        let mut w = wal.writer();
        let tickets: Vec<WalTicket> = (0..64)
            .map(|i| w.append_nowait(&format!("{{\"i\":{i}}}")).unwrap())
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let s = wal.stats();
        assert_eq!(s.appends, 64);
        assert!(
            s.fsyncs < s.appends,
            "group commit must amortize fsyncs: {s:?}"
        );
        wal.close();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_writers_preserve_every_ack() {
        let dir = tmp_dir("conc");
        let (wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
        let mut handles = Vec::new();
        for t in 0..4 {
            let mut w = wal.writer();
            handles.push(std::thread::spawn(move || {
                (0..50)
                    .map(|i| w.append(&format!("{{\"t\":{t},\"i\":{i}}}")).unwrap())
                    .collect::<Vec<u64>>()
            }));
        }
        let mut seqs: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        seqs.sort_unstable();
        // Every acked seq is unique and dense.
        assert_eq!(seqs, (1..=200).collect::<Vec<u64>>());
        wal.close();
        let (wal, rec) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(rec.records.len(), 200);
        wal.close();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newline_payload_rejected() {
        let dir = tmp_dir("nl");
        let (wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
        let mut w = wal.writer();
        assert!(matches!(w.append("{\"a\":\n1}"), Err(WalError::Payload(_))));
        wal.close();
        fs::remove_dir_all(&dir).unwrap();
    }
}
