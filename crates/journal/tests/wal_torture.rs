//! WAL torture: simulated SIGKILL cuts at every byte of the tail,
//! rotation-boundary cuts, mid-group-commit cuts, and bit flips — after
//! each, recovery must yield exactly the acknowledged prefix, repair
//! must be idempotent, and the log must keep accepting appends.

use std::fs;
use std::path::{Path, PathBuf};

use verdict_journal::wal::{Wal, WalOptions};

/// Self-cleaning tempdir (no external crates).
struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "verdict-wal-torture-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        fs::create_dir_all(&path).unwrap();
        TempDir { path }
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

fn small_segments() -> WalOptions {
    WalOptions {
        segment_bytes: 160,
        ..WalOptions::default()
    }
}

/// Sorted (index, path) list of segment files in a WAL dir.
fn segments(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut out: Vec<(u64, PathBuf)> = fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            let idx: u64 = name
                .strip_prefix("seg-")?
                .strip_suffix(".wal")?
                .parse()
                .ok()?;
            Some((idx, e.path()))
        })
        .collect();
    out.sort();
    out
}

/// Builds a reference WAL of `n` payloads under `opts`, closed cleanly.
/// Returns the payloads.
fn build_reference(dir: &Path, opts: WalOptions, n: usize) -> Vec<String> {
    let (wal, recovery) = Wal::open(dir, opts).unwrap();
    assert!(recovery.records.is_empty());
    let mut writer = wal.writer();
    let payloads: Vec<String> = (0..n)
        .map(|i| format!("{{\"job\":{i},\"verdict\":\"safe\"}}"))
        .collect();
    for p in &payloads {
        writer.append(p).unwrap();
    }
    drop(writer);
    wal.close();
    payloads
}

/// Copies a reference WAL dir, truncating the *last* segment to
/// `keep_bytes` — the exact effect of SIGKILL after that many tail
/// bytes reached the disk.
fn clone_with_tail_cut(reference: &Path, target: &Path, keep_bytes: u64) {
    fs::create_dir_all(target).unwrap();
    let segs = segments(reference);
    let (last, rest) = segs.split_last().expect("reference has segments");
    for (idx, path) in rest {
        fs::copy(path, target.join(format!("seg-{idx:08}.wal"))).unwrap();
    }
    let raw = fs::read(&last.1).unwrap();
    let keep = (keep_bytes as usize).min(raw.len());
    fs::write(target.join(format!("seg-{:08}.wal", last.0)), &raw[..keep]).unwrap();
}

/// How many reference records survive when the final segment keeps only
/// `keep` bytes: full lines fit entirely; a torn line is dropped.
fn expected_survivors(reference: &Path, keep: usize, total: usize) -> usize {
    let segs = segments(reference);
    let (last, rest) = segs.split_last().unwrap();
    let earlier: usize = rest
        .iter()
        .map(|(_, p)| fs::read(p).unwrap().iter().filter(|&&b| b == b'\n').count())
        .sum();
    let raw = fs::read(&last.1).unwrap();
    let in_last = raw[..keep.min(raw.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count();
    (earlier + in_last).min(total)
}

#[test]
fn tail_cut_at_every_byte_recovers_exact_prefix() {
    let reference = TempDir::new("ref");
    let payloads = build_reference(&reference.path, small_segments(), 12);
    let segs = segments(&reference.path);
    assert!(segs.len() >= 3, "want rotation in play, got {}", segs.len());
    let last_len = fs::read(&segs.last().unwrap().1).unwrap().len();

    for keep in 0..=last_len {
        let cut = TempDir::new("cut");
        clone_with_tail_cut(&reference.path, &cut.path, keep as u64);
        let want = expected_survivors(&reference.path, keep, payloads.len());
        let (wal, recovery) = Wal::open(&cut.path, small_segments()).unwrap();
        assert_eq!(
            recovery.records,
            &payloads[..want],
            "keep={keep}: recovery must yield exactly the durable prefix"
        );
        // A cut mid-line is reported as a truncation with a position.
        if recovery.tail.truncated {
            assert!(recovery.tail.reason.is_some());
            assert_eq!(recovery.tail.records_kept, want);
        }
        wal.close();

        // Repair is idempotent: a second open finds a clean log with
        // the same records and nothing more to truncate.
        let (wal, again) = Wal::open(&cut.path, small_segments()).unwrap();
        assert_eq!(again.records, &payloads[..want]);
        assert!(
            !again.tail.truncated,
            "keep={keep}: second open must be clean"
        );
        wal.close();
    }
}

#[test]
fn rotation_boundary_cuts_keep_earlier_segments() {
    let reference = TempDir::new("rotref");
    let payloads = build_reference(&reference.path, small_segments(), 12);
    let segs = segments(&reference.path);
    assert!(segs.len() >= 3);

    // SIGKILL immediately after rotation: the freshly-created segment
    // is empty. Everything in the earlier segments survives.
    let cut = TempDir::new("rotcut");
    clone_with_tail_cut(&reference.path, &cut.path, 0);
    let want = expected_survivors(&reference.path, 0, payloads.len());
    assert!(want > 0, "earlier segments should hold records");
    let (wal, recovery) = Wal::open(&cut.path, small_segments()).unwrap();
    assert_eq!(recovery.records, &payloads[..want]);

    // And the log keeps going: new appends land after the survivors.
    let mut writer = wal.writer();
    writer
        .append("{\"job\":99,\"verdict\":\"unsafe\"}")
        .unwrap();
    wal.close();
    let (wal, after) = Wal::open(&cut.path, small_segments()).unwrap();
    assert_eq!(after.records.len(), want + 1);
    assert_eq!(after.records[want], "{\"job\":99,\"verdict\":\"unsafe\"}");
    wal.close();
}

#[test]
fn mid_group_commit_cut_recovers_batch_prefix() {
    // Pipelined appends so one group commit carries many records, then
    // cut mid-batch: the batch's prefix survives, the tail is dropped.
    let reference = TempDir::new("gcref");
    let opts = WalOptions::default();
    let payloads: Vec<String> = (0..64).map(|i| format!("{{\"batch\":{i}}}")).collect();
    {
        let (wal, _) = Wal::open(&reference.path, opts.clone()).unwrap();
        let mut writer = wal.writer();
        let tickets: Vec<_> = payloads
            .iter()
            .map(|p| writer.append_nowait(p).unwrap())
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let stats = wal.stats();
        assert!(
            stats.group_commits < stats.appends,
            "expected batching: {stats:?}"
        );
        wal.close();
    }
    let raw = fs::read(&segments(&reference.path)[0].1).unwrap();
    // Cut in the middle of the byte stream — mid-record with high
    // probability, mid-batch by construction.
    let keep = raw.len() / 2;
    let cut = TempDir::new("gccut");
    clone_with_tail_cut(&reference.path, &cut.path, keep as u64);
    let want = expected_survivors(&reference.path, keep, payloads.len());
    let (wal, recovery) = Wal::open(&cut.path, opts).unwrap();
    assert_eq!(recovery.records, &payloads[..want]);
    wal.close();
}

#[test]
fn bit_flip_truncates_at_corruption_and_drops_later_segments() {
    let dir = TempDir::new("flip");
    let payloads = build_reference(&dir.path, small_segments(), 12);
    let segs = segments(&dir.path);
    assert!(segs.len() >= 3);

    // Flip one payload bit in the middle segment (inside a `"safe"`
    // literal, so the flip never creates or destroys a line break).
    let victim = &segs[1].1;
    let mut raw = fs::read(victim).unwrap();
    let pos = raw
        .windows(4)
        .position(|w| w == b"safe")
        .expect("payload text present");
    raw[pos] ^= 0x01;
    fs::write(victim, &raw).unwrap();

    let kept_before: usize = fs::read(&segs[0].1)
        .unwrap()
        .iter()
        .filter(|&&b| b == b'\n')
        .count();
    let (wal, recovery) = Wal::open(&dir.path, small_segments()).unwrap();
    // Everything before the corrupt frame survives; the corrupt frame
    // and everything after (including later segments) is dropped —
    // better a short honest log than a long lying one.
    assert!(recovery.records.len() >= kept_before);
    assert!(recovery.records.len() < payloads.len());
    assert_eq!(recovery.records, &payloads[..recovery.records.len()]);
    assert!(recovery.tail.truncated);
    assert!(recovery.tail.records_dropped > 0);
    assert_eq!(
        recovery.tail.records_kept + recovery.tail.records_dropped,
        payloads.len(),
        "every reference record is accounted for, kept or dropped"
    );
    // Later segments are gone from disk.
    assert_eq!(segments(&dir.path).len(), 2);
    wal.close();

    // Idempotent: reopening reports a clean log.
    let kept = recovery.records;
    let (wal, again) = Wal::open(&dir.path, small_segments()).unwrap();
    assert_eq!(again.records, kept);
    assert!(!again.tail.truncated);
    wal.close();
}

#[test]
fn sequence_gap_is_rejected() {
    // Deleting a whole *middle* segment leaves a sequence gap: records
    // after the gap must not be trusted even though their CRCs pass.
    let dir = TempDir::new("gap");
    let payloads = build_reference(&dir.path, small_segments(), 12);
    let segs = segments(&dir.path);
    assert!(segs.len() >= 3);
    let first_counts: usize = fs::read(&segs[0].1)
        .unwrap()
        .iter()
        .filter(|&&b| b == b'\n')
        .count();
    fs::remove_file(&segs[1].1).unwrap();

    let (wal, recovery) = Wal::open(&dir.path, small_segments()).unwrap();
    assert_eq!(recovery.records, &payloads[..first_counts]);
    assert!(recovery.tail.truncated);
    assert!(recovery
        .tail
        .reason
        .as_deref()
        .unwrap()
        .contains("sequence gap"));
    wal.close();
}
