//! Verdict certification: independent re-checking of engine answers.
//!
//! The engines share encoding machinery — bit-blasting, unrolling, tableau
//! products — so an encoding bug can produce a wrong verdict *and* survive
//! cross-engine comparison. With [`crate::CheckOptions::certify`] enabled,
//! every definitive verdict must survive an independent check before it is
//! reported:
//!
//! * `Violated` — the counterexample trace is replayed step by step
//!   through the reference interpreter ([`verdict_ts::replay`]), which
//!   shares nothing with the engines beyond the one-page expression
//!   evaluator. Invariant traces must be legal executions ending in a
//!   violating state; liveness traces must be closed fair lassos whose
//!   infinite word falsifies the LTL formula.
//! * `Holds` from k-induction — the proven depth `k` is re-checked with
//!   fresh unrollers and fresh SAT solvers: the base case
//!   (`INIT ∧ ∨_{i≤k} ¬p@i`) and the strengthened step case
//!   (`p@0..k-1 ∧ simple-path ∧ ¬p@k`) must both come back UNSAT, and
//!   each UNSAT answer must carry a DRUP-style clause proof accepted by
//!   [`verdict_sat::check_proof`].
//! * `Holds` from the BDD engine — the reachable-set BDD is converted
//!   back to a boolean expression `R` over the system variables and
//!   verified inductive by three fresh proof-logged SAT queries:
//!   `INIT ∧ ¬R`, `R ∧ TRANS ∧ ¬R'`, and `R ∧ ¬p` all UNSAT.
//!
//! A failed check demotes the verdict to
//! [`UnknownReason::CertificateRejected`]; the diagnostic (which
//! constraint failed, at which step, or which query was refuted) goes to
//! stderr. A wrong answer is withheld, never reported.

use std::fmt;

use verdict_logic::Formula;
use verdict_sat::{check_proof, Solver};
use verdict_ts::{replay, Expr, Ltl, System, Trace, Unroller};

use crate::engine::EngineKind;
use crate::result::{Budget, CheckResult, UnknownReason};

/// What kind of certificate backed a verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertificateKind {
    /// Counterexample replayed through the reference interpreter.
    TraceReplay,
    /// k-induction base + step re-proved by fresh proof-logged SAT runs.
    Induction,
    /// BDD reachable set re-checked inductive by fresh SAT queries.
    InductiveInvariant,
}

impl fmt::Display for CertificateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateKind::TraceReplay => write!(f, "counterexample replay"),
            CertificateKind::Induction => write!(f, "k-induction re-check"),
            CertificateKind::InductiveInvariant => {
                write!(f, "inductive-invariant re-check")
            }
        }
    }
}

/// Certification outcome of one finished checking run, for reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertificateStatus {
    /// Certification was not requested.
    NotRequested,
    /// The verdict passed its independent check.
    Verified(CertificateKind),
    /// A certificate failed validation and the verdict was demoted.
    Rejected,
    /// No certificate format applies (Unknown verdicts, CTL results,
    /// explicit-state or liveness proofs).
    Unsupported,
}

impl fmt::Display for CertificateStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateStatus::NotRequested => write!(f, "not requested"),
            CertificateStatus::Verified(k) => write!(f, "verified ({k})"),
            CertificateStatus::Rejected => write!(f, "rejected"),
            CertificateStatus::Unsupported => write!(f, "unsupported"),
        }
    }
}

/// The property shape a run checked (certificates differ per shape).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PropertyKind {
    /// `G p` for a state predicate `p`.
    Invariant,
    /// An LTL property.
    Ltl,
    /// A CTL property (no certificate format).
    Ctl,
}

/// The certificate status implied by a finished run: which engine
/// produced the verdict, on which property shape, with certification on
/// or off. In certify mode a surviving definitive verdict has already
/// passed its check inside the engine, so this is a pure classification.
pub fn status(
    certify: bool,
    engine: EngineKind,
    kind: PropertyKind,
    result: &CheckResult,
) -> CertificateStatus {
    if !certify {
        return CertificateStatus::NotRequested;
    }
    match result {
        CheckResult::Unknown(UnknownReason::CertificateRejected) => CertificateStatus::Rejected,
        CheckResult::Unknown(_) => CertificateStatus::Unsupported,
        CheckResult::Violated(_) => match kind {
            PropertyKind::Ctl => CertificateStatus::Unsupported,
            _ => CertificateStatus::Verified(CertificateKind::TraceReplay),
        },
        CheckResult::Holds => match (engine, kind) {
            (EngineKind::KInduction, PropertyKind::Invariant) => {
                CertificateStatus::Verified(CertificateKind::Induction)
            }
            (EngineKind::Bdd, PropertyKind::Invariant) => {
                CertificateStatus::Verified(CertificateKind::InductiveInvariant)
            }
            _ => CertificateStatus::Unsupported,
        },
    }
}

/// Replays an invariant counterexample through the reference interpreter;
/// `Err` carries a human-readable diagnostic.
pub fn validate_invariant_cex(sys: &System, p: &Expr, trace: &Trace) -> Result<(), String> {
    replay::check_invariant_trace(sys, p, trace).map_err(|e| e.to_string())
}

/// Replays an LTL lasso counterexample through the reference interpreter.
pub fn validate_ltl_cex(sys: &System, phi: &Ltl, trace: &Trace) -> Result<(), String> {
    replay::check_ltl_trace(sys, phi, trace).map_err(|e| e.to_string())
}

/// Engine-side gate for `Violated(G p)`: confirms the trace by replay or
/// withholds the verdict as `Unknown(CertificateRejected)`. Public so
/// tests can feed deliberately corrupted traces through the same path the
/// engines use.
pub fn gate_invariant_cex(sys: &System, p: &Expr, trace: Trace) -> CheckResult {
    match validate_invariant_cex(sys, p, &trace) {
        Ok(()) => CheckResult::Violated(trace),
        Err(e) => reject("counterexample replay", &e),
    }
}

/// Engine-side gate for a violated LTL property (see
/// [`gate_invariant_cex`] for why it is public).
pub fn gate_ltl_cex(sys: &System, phi: &Ltl, trace: Trace) -> CheckResult {
    match validate_ltl_cex(sys, phi, &trace) {
        Ok(()) => CheckResult::Violated(trace),
        Err(e) => reject("counterexample replay", &e),
    }
}

/// Engine-side gate for a `Holds` verdict backed by `check`.
pub(crate) fn gate_holds(what: &str, check: Result<(), String>) -> CheckResult {
    match check {
        Ok(()) => CheckResult::Holds,
        Err(e) => reject(what, &e),
    }
}

fn reject(what: &str, diagnostic: &str) -> CheckResult {
    eprintln!("verdict-mc: {what} certificate REJECTED: {diagnostic}");
    CheckResult::Unknown(UnknownReason::CertificateRejected)
}

/// Runs the accumulated clauses of `unr` through a fresh proof-logged SAT
/// solver and demands UNSAT with a DRUP proof that checks.
fn run_unsat_query(unr: &mut Unroller<'_>, budget: &Budget, what: &str) -> Result<(), String> {
    // Fault-injection probe at site `mc.certify`: a panic here models the
    // certifier itself dying mid-re-proof. Callers that contain panics
    // (synthesis workers, portfolio contenders) degrade it to
    // `Unknown(EngineFailure)`.
    verdict_journal::fault::panic_if_armed("mc.certify");
    let mut solver = Solver::new();
    solver.enable_proof();
    for c in unr.drain_clauses() {
        solver.add_clause(c);
    }
    match solver.solve_limited(&[], budget.limits()) {
        verdict_sat::SolveResult::Sat(_) => {
            Err(format!("{what}: query is satisfiable, certificate refuted"))
        }
        verdict_sat::SolveResult::Unknown => {
            Err(format!("{what}: resource limit during certificate check"))
        }
        verdict_sat::SolveResult::Unsat => {
            let proof = solver.take_proof();
            check_proof(&proof).map_err(|e| format!("{what}: UNSAT proof rejected: {e}"))
        }
    }
}

/// Independently re-checks a k-induction proof of `G p` at depth `k`:
/// fresh unrollers, fresh solvers, no incremental state, no assumption
/// literals — and each UNSAT answer carries a checked DRUP proof.
pub fn recheck_induction(sys: &System, p: &Expr, k: usize, budget: &Budget) -> Result<(), String> {
    let bad = p.clone().not();
    // Base: no violation within the first k+1 steps.
    {
        let mut unr = Unroller::new(sys).map_err(|e| e.to_string())?;
        unr.extend_to(k);
        let hits: Vec<Formula> = (0..=k).map(|i| unr.lower_bool(&bad, i)).collect();
        unr.assert_formula(&Formula::or_all(hits));
        run_unsat_query(&mut unr, budget, "k-induction base")?;
    }
    // Step: no simple path of k+1 states satisfying p everywhere but the
    // last. Asserts the full pairwise distinctness the incremental prover
    // accumulated over its rounds.
    {
        let mut unr = Unroller::new_free(sys).map_err(|e| e.to_string())?;
        unr.extend_to(k);
        for i in 0..k {
            unr.assert_expr(p, i);
        }
        for i in 0..=k {
            for j in (i + 1)..=k {
                let diff = unr.states_differ(i, j);
                unr.assert_formula(&diff);
            }
        }
        unr.assert_expr(&bad, k);
        run_unsat_query(&mut unr, budget, "k-induction step")?;
    }
    Ok(())
}

/// Checks that `inv` is an inductive invariant establishing `G p`:
/// initiation (`INIT ⇒ inv`), consecution (`inv ∧ TRANS ⇒ inv'`), and
/// strength (`inv ⇒ p`) — three fresh proof-logged UNSAT queries.
pub fn check_inductive_invariant(
    sys: &System,
    p: &Expr,
    inv: &Expr,
    budget: &Budget,
) -> Result<(), String> {
    let not_inv = inv.clone().not();
    // Initiation: INIT ∧ ¬inv unsatisfiable.
    {
        let mut unr = Unroller::new(sys).map_err(|e| e.to_string())?;
        unr.assert_expr(&not_inv, 0);
        run_unsat_query(&mut unr, budget, "invariant initiation")?;
    }
    // Consecution: inv ∧ TRANS ∧ ¬inv' unsatisfiable.
    {
        let mut unr = Unroller::new_free(sys).map_err(|e| e.to_string())?;
        unr.extend_to(1);
        unr.assert_expr(inv, 0);
        unr.assert_expr(&not_inv, 1);
        run_unsat_query(&mut unr, budget, "invariant consecution")?;
    }
    // Strength: inv ∧ ¬p unsatisfiable.
    {
        let mut unr = Unroller::new_free(sys).map_err(|e| e.to_string())?;
        unr.assert_expr(inv, 0);
        unr.assert_expr(&p.clone().not(), 0);
        run_unsat_query(&mut unr, budget, "invariant strength")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::CheckOptions;

    fn counter(limit: i64) -> (System, verdict_ts::VarId) {
        let mut sys = System::new("counter");
        let n = sys.int_var("n", 0, limit);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        sys.add_trans(Expr::next(n).eq(Expr::ite(
            Expr::var(n).lt(Expr::int(limit)),
            Expr::var(n).add(Expr::int(1)),
            Expr::var(n),
        )));
        (sys, n)
    }

    #[test]
    fn induction_recheck_accepts_valid_depth() {
        let (sys, n) = counter(5);
        let budget = Budget::new(&CheckOptions::default());
        // n <= 5 is 1-inductive given the range; any k works.
        assert!(recheck_induction(&sys, &Expr::var(n).le(Expr::int(5)), 1, &budget).is_ok());
    }

    #[test]
    fn induction_recheck_rejects_wrong_claim() {
        let (sys, n) = counter(5);
        let budget = Budget::new(&CheckOptions::default());
        // n < 3 is false — the base case is satisfiable at k = 3.
        let r = recheck_induction(&sys, &Expr::var(n).lt(Expr::int(3)), 3, &budget);
        assert!(r.is_err(), "{r:?}");
        assert!(r.unwrap_err().contains("satisfiable"));
    }

    #[test]
    fn inductive_invariant_accepted_and_refuted() {
        let (sys, n) = counter(5);
        let budget = Budget::new(&CheckOptions::default());
        let p = Expr::var(n).le(Expr::int(5));
        // The full range is an inductive invariant here.
        assert!(check_inductive_invariant(&sys, &p, &p.clone(), &budget).is_ok());
        // n <= 2 is not closed under the transition relation.
        let weak = Expr::var(n).le(Expr::int(2));
        let err = check_inductive_invariant(&sys, &p, &weak, &budget).unwrap_err();
        assert!(err.contains("consecution"), "{err}");
    }

    #[test]
    fn status_classification() {
        use CertificateStatus as S;
        let holds = CheckResult::Holds;
        assert_eq!(
            status(
                false,
                EngineKind::KInduction,
                PropertyKind::Invariant,
                &holds
            ),
            S::NotRequested
        );
        assert_eq!(
            status(
                true,
                EngineKind::KInduction,
                PropertyKind::Invariant,
                &holds
            ),
            S::Verified(CertificateKind::Induction)
        );
        assert_eq!(
            status(true, EngineKind::Bdd, PropertyKind::Invariant, &holds),
            S::Verified(CertificateKind::InductiveInvariant)
        );
        assert_eq!(
            status(true, EngineKind::Explicit, PropertyKind::Invariant, &holds),
            S::Unsupported
        );
        let rejected = CheckResult::Unknown(UnknownReason::CertificateRejected);
        assert_eq!(
            status(true, EngineKind::Bmc, PropertyKind::Invariant, &rejected),
            S::Rejected
        );
    }
}
