//! Retry with escalating budgets.
//!
//! Long sweeps hit transient infrastructure failures — a worker panic, a
//! clause ceiling tuned too low, a deadline that was fine for 95% of
//! assignments. A [`RetryPolicy`] re-runs a check whose verdict was
//! `Unknown` with a [retryable](crate::UnknownReason::retryable) reason,
//! multiplying the wall-clock/clause/node ceilings each attempt and
//! sleeping a jittered backoff in between so parallel workers don't
//! re-stampede a shared bottleneck in lockstep.

use std::time::Duration;

use verdict_prng::Prng;

use crate::CheckOptions;

/// How to retry infrastructure-failed checks. See the module docs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per check, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Budget multiplier per retry: attempt `n` (1-based) runs with
    /// timeout/clause/node ceilings scaled by `factor^(n-1)`.
    pub factor: u32,
    /// Base backoff slept before each retry, jittered to 50–150%.
    pub backoff: Duration,
    /// Seed for deterministic jitter (mixed with assignment index and
    /// attempt number, so workers don't share a schedule).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            factor: 2,
            backoff: Duration::from_millis(20),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `retries` retries after the first attempt.
    pub fn with_retries(retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: retries.saturating_add(1),
            ..RetryPolicy::default()
        }
    }

    /// Sets the per-retry budget multiplier.
    pub fn with_factor(mut self, factor: u32) -> RetryPolicy {
        self.factor = factor.max(1);
        self
    }

    /// Sets the base backoff.
    pub fn with_backoff(mut self, backoff: Duration) -> RetryPolicy {
        self.backoff = backoff;
        self
    }

    /// Sets the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }

    /// `base` options with every resource ceiling scaled for the given
    /// 1-based `attempt`: timeout, `max_clauses`, and `max_bdd_nodes`
    /// multiplied by `factor^(attempt-1)` (saturating). Attempt 1 returns
    /// `base` unchanged.
    pub fn escalate(&self, base: &CheckOptions, attempt: u32) -> CheckOptions {
        let mut opts = base.clone();
        let exp = attempt.saturating_sub(1);
        if exp == 0 {
            return opts;
        }
        let mult = (self.factor as u64).saturating_pow(exp);
        opts.timeout = opts
            .timeout
            .map(|t| t.saturating_mul(mult.min(u32::MAX as u64) as u32));
        opts.max_clauses = opts.max_clauses.map(|c| c.saturating_mul(mult as usize));
        opts.max_bdd_nodes = opts.max_bdd_nodes.map(|n| n.saturating_mul(mult as usize));
        opts
    }

    /// The jittered pause before 1-based `attempt` of assignment `idx`:
    /// `backoff * factor^(attempt-2)`, scaled by a deterministic jitter
    /// in 50–150%. Attempt 1 never sleeps.
    pub fn backoff_for(&self, idx: u64, attempt: u32) -> Duration {
        if attempt <= 1 || self.backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = attempt.saturating_sub(2);
        let base = self
            .backoff
            .saturating_mul(self.factor.saturating_pow(exp).min(1 << 16));
        let mut rng =
            Prng::seed_from_u64(self.seed ^ idx.rotate_left(17) ^ ((attempt as u64) << 48));
        // 50%..150% in per-mille steps.
        let jitter_pm = 500 + rng.next_u64() % 1001;
        base.saturating_mul(jitter_pm as u32) / 1000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalation_multiplies_ceilings() {
        let p = RetryPolicy::with_retries(2).with_factor(3);
        let base = CheckOptions::default()
            .with_timeout(Duration::from_millis(100))
            .with_max_clauses(1000)
            .with_max_bdd_nodes(500);
        let a1 = p.escalate(&base, 1);
        assert_eq!(a1.timeout, Some(Duration::from_millis(100)));
        assert_eq!(a1.max_clauses, Some(1000));
        let a3 = p.escalate(&base, 3);
        assert_eq!(a3.timeout, Some(Duration::from_millis(900)));
        assert_eq!(a3.max_clauses, Some(9000));
        assert_eq!(a3.max_bdd_nodes, Some(4500));
        // Unset ceilings stay unset.
        let a = p.escalate(&CheckOptions::default(), 3);
        assert_eq!(a.timeout, None);
        assert_eq!(a.max_clauses, None);
    }

    #[test]
    fn backoff_is_jittered_and_deterministic() {
        let p = RetryPolicy::with_retries(3).with_backoff(Duration::from_millis(100));
        assert_eq!(p.backoff_for(0, 1), Duration::ZERO);
        let b = p.backoff_for(7, 2);
        assert_eq!(b, p.backoff_for(7, 2));
        assert!(b >= Duration::from_millis(50) && b <= Duration::from_millis(150));
        // Different assignments get different jitter (with overwhelming
        // likelihood for these fixed seeds).
        assert_ne!(p.backoff_for(7, 2), p.backoff_for(8, 2));
        // Later attempts back off harder on average: attempt 3 has a
        // doubled base.
        let b3 = p.backoff_for(7, 3);
        assert!(b3 >= Duration::from_millis(100) && b3 <= Duration::from_millis(300));
    }

    #[test]
    fn zero_backoff_never_sleeps() {
        let p = RetryPolicy::with_retries(3).with_backoff(Duration::ZERO);
        assert_eq!(p.backoff_for(1, 5), Duration::ZERO);
    }
}
