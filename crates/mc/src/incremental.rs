//! Assumption-pinned k-induction: the incremental core of the parameter
//! synthesis sweep.
//!
//! The clone-per-assignment sweep in [`crate::params`] re-encodes the
//! whole system and builds fresh SAT solvers for every parameter
//! assignment, even though assignments differ only in the pinned values of
//! a few frozen variables. [`PinnedKInduction`] instead unrolls the
//! *unpinned* system once and pins each assignment with **assumption
//! literals** over the frozen parameters' step-0 bit blocks
//! ([`Unroller::assumptions_for`]); one base solver and one induction
//! solver survive the whole sweep, so learned clauses, VSIDS activity,
//! and saved phases transfer from assignment to assignment.
//!
//! Soundness of the sharing: the clause database only ever contains
//! (a) the Tseitin encoding of the shared unrolling — INIT, TRANS, INVAR,
//! domain constraints, frozen-variable equality, and definitional clauses
//! for the per-depth query literals — and (b) clauses the solver *learned*,
//! which are resolvents of database clauses and therefore consequences of
//! the shared unrolling alone. Assumptions never enter the database, so
//! nothing proved under one assignment can poison another. For the same
//! reason the per-depth facts the clone path asserts permanently
//! (`¬bad@i` after a base refutation, `p@i` and pairwise state
//! distinctness in the induction engine) are passed as assumptions here:
//! they are true only *under the current assignment*.
//!
//! **Unsat-core pruning.** When a query is UNSAT the solver reports which
//! assumptions participated ([`verdict_sat::Solver::failed_assumptions`]).
//! A parameter whose pin literals are absent from *every* core of a proof
//! (all base depths and the final step) is irrelevant to that proof: the
//! same refutations go through verbatim under any other value of that
//! parameter, so every sibling assignment that differs only in irrelevant
//! parameters inherits the `Holds` verdict without a solve. The per-depth
//! `¬bad@i` assumptions keep this argument inductive: if the depth-`k`
//! core leans on `¬bad@i`, the parameters relevant at depth `i` are
//! already in the accumulated mask, so the transfer at depth `i` justifies
//! the transfer at depth `k`. Only `Holds` is ever transferred — a SAT
//! answer (counterexample) has no core, and `Unknown` is not a verdict.

use std::collections::HashMap;

use verdict_logic::{Lit, Var};
use verdict_sat::{SolveResult, Solver};
use verdict_ts::{Expr, System, Trace, Unroller, Value, VarId};

use crate::result::{Budget, CheckOptions, McError, UnknownReason};

/// Outcome of one assumption-pinned k-induction run.
#[derive(Clone, Debug)]
pub enum PinnedOutcome {
    /// `G p` proved at induction depth `depth`. `relevant[i]` is true iff
    /// parameter `i`'s assumption literals appeared in at least one unsat
    /// core along the way — parameters with `relevant[i] == false` did not
    /// contribute to the proof, so the verdict transfers to assignments
    /// varying only those parameters (see [`HoldsPattern`]).
    Holds {
        /// The depth at which the induction step closed.
        depth: usize,
        /// Per-parameter core participation, in `params` order.
        relevant: Vec<bool>,
    },
    /// A counterexample of minimal depth under this assignment.
    Violated(Trace),
    /// No verdict within the resource limits.
    Unknown(UnknownReason),
}

/// A `Holds` verdict whose unsat cores ignored some parameters: any
/// assignment agreeing with `values` on all `relevant` positions inherits
/// the verdict (provable by the same refutations at the same `depth`).
#[derive(Clone, Debug)]
pub struct HoldsPattern {
    /// The representative assignment that was actually solved.
    pub values: Vec<Value>,
    /// Positions that participated in the proof; `false` = wildcard.
    pub relevant: Vec<bool>,
    /// The induction depth of the representative's proof.
    pub depth: usize,
}

impl HoldsPattern {
    /// True iff `assignment` matches this pattern (agrees on every
    /// relevant position).
    pub fn matches(&self, assignment: &[Value]) -> bool {
        self.values.len() == assignment.len()
            && self
                .values
                .iter()
                .zip(&self.relevant)
                .zip(assignment)
                .all(|((v, &rel), a)| !rel || v == a)
    }
}

/// One worker's persistent k-induction engine for an assignment sweep.
///
/// Construct once per worker with the *unpinned* system, then call
/// [`PinnedKInduction::check`] for each assignment. The unrolling and both
/// solvers grow monotonically and are shared across calls.
pub struct PinnedKInduction<'s> {
    sys: &'s System,
    params: Vec<VarId>,
    prop: Expr,
    bad: Expr,
    // Base-case engine: init-anchored unrolling, one solver.
    base_unr: Unroller<'s>,
    base_solver: Solver,
    // Induction engine: free (any-state) unrolling, one solver.
    ind_unr: Unroller<'s>,
    ind_solver: Solver,
    // Bit-variable → parameter-index maps for reading unsat cores.
    base_param_bits: HashMap<Var, usize>,
    ind_param_bits: HashMap<Var, usize>,
    // Per-depth query literals, cached so later assignments reuse the
    // encodings (and the structural Tseitin cache keeps them unique).
    base_bad_lits: Vec<Lit>,
    ind_bad_lits: Vec<Lit>,
    ind_good_lits: Vec<Lit>,
    /// `ind_diff_lits[t]` = literals of `states_differ(i, t)` for `i < t`.
    ind_diff_lits: Vec<Vec<Lit>>,
}

impl<'s> PinnedKInduction<'s> {
    /// Builds the shared engines for sweeping `params` of `sys` against
    /// the invariant `G prop`. Fails on real-sorted (non-finite) systems,
    /// like [`Unroller::new`].
    pub fn new(sys: &'s System, params: &[VarId], prop: &Expr) -> Result<Self, McError> {
        let mut base_unr = Unroller::new(sys)?;
        let mut ind_unr = Unroller::new_free(sys)?;
        let mut base_param_bits = HashMap::new();
        let mut ind_param_bits = HashMap::new();
        for (i, &p) in params.iter().enumerate() {
            for b in base_unr.var_bits(p, 0) {
                base_param_bits.insert(b, i);
            }
            for b in ind_unr.var_bits(p, 0) {
                ind_param_bits.insert(b, i);
            }
        }
        Ok(PinnedKInduction {
            sys,
            params: params.to_vec(),
            prop: prop.clone(),
            bad: prop.clone().not(),
            base_unr,
            base_solver: Solver::new(),
            ind_unr,
            ind_solver: Solver::new(),
            base_param_bits,
            ind_param_bits,
            base_bad_lits: Vec::new(),
            ind_bad_lits: Vec::new(),
            ind_good_lits: Vec::new(),
            ind_diff_lits: Vec::new(),
        })
    }

    /// The invariant this engine proves.
    pub fn property(&self) -> &Expr {
        &self.prop
    }

    /// Attaches a clause-sharing endpoint to the base-case solver. Call
    /// right after construction (the solver must still be empty). Sibling
    /// workers' base solvers grow identical `Unroller::new` clause
    /// streams — assumption pins never enter the clause database — so
    /// everything they learn is exchangeable; the free-unrolling
    /// induction solver has a foreign prefix and stays detached. Returns
    /// false when the hub is out of endpoints (the engine then simply
    /// runs without sharing).
    pub fn attach_sharing(&mut self, hub: &verdict_sat::ClauseHub) -> bool {
        match hub.endpoint() {
            Some(ep) => self.base_solver.attach_sharing(ep),
            None => false,
        }
    }

    /// Cumulative counters of the base-case solver (the sharing peer).
    pub fn base_solver_stats(&self) -> verdict_sat::Stats {
        self.base_solver.stats()
    }

    /// Checks `G prop` with the parameters pinned to `assignment` by
    /// assumption literals. Runs the same per-depth schedule as
    /// the k-induction engine on a pinned clone, so verdicts
    /// match the clone path query for query.
    pub fn check(
        &mut self,
        assignment: &[Value],
        opts: &CheckOptions,
    ) -> Result<PinnedOutcome, McError> {
        let budget = Budget::new(opts);
        let base_pin = self.base_unr.assumptions_for(&self.params, assignment)?;
        let ind_pin = self.ind_unr.assumptions_for(&self.params, assignment)?;
        let mut relevant = vec![false; self.params.len()];
        for k in 0..=opts.max_depth {
            if let Some(reason) = budget.exceeded() {
                return Ok(PinnedOutcome::Unknown(reason));
            }
            // ---- base case: violation at exactly step k under the pin?
            self.extend_base(k);
            let mut assumps = base_pin.clone();
            // Depths already refuted under this assignment (the clone
            // path's permanent `¬bad@i` units, assumption-guarded here).
            assumps.extend(self.base_bad_lits[..k].iter().map(|&l| !l));
            assumps.push(self.base_bad_lits[k]);
            match self.base_solver.solve_limited(&assumps, budget.limits()) {
                SolveResult::Sat(model) => {
                    let states = self.base_unr.decode_trace(k + 1, &|v| model.value(v));
                    return Ok(PinnedOutcome::Violated(Trace::new(self.sys, states, None)));
                }
                SolveResult::Unsat => {
                    mark_core_hits(
                        &mut relevant,
                        self.base_solver.failed_assumptions(),
                        &self.base_param_bits,
                    );
                }
                SolveResult::Unknown => {
                    return Ok(PinnedOutcome::Unknown(
                        budget.unknown_reason_sat(self.base_solver.num_clauses()),
                    ));
                }
            }
            // ---- induction step: p@0..k-1 ∧ simple-path ∧ ¬p@k unsat?
            self.extend_ind(k);
            let mut assumps = ind_pin.clone();
            assumps.extend_from_slice(&self.ind_good_lits[..k]);
            for diffs in &self.ind_diff_lits[..=k] {
                assumps.extend_from_slice(diffs);
            }
            assumps.push(self.ind_bad_lits[k]);
            match self.ind_solver.solve_limited(&assumps, budget.limits()) {
                SolveResult::Sat(_) => {
                    // Induction failed at this k; deepen.
                }
                SolveResult::Unsat => {
                    mark_core_hits(
                        &mut relevant,
                        self.ind_solver.failed_assumptions(),
                        &self.ind_param_bits,
                    );
                    return Ok(PinnedOutcome::Holds { depth: k, relevant });
                }
                SolveResult::Unknown => {
                    return Ok(PinnedOutcome::Unknown(
                        budget.unknown_reason_sat(self.ind_solver.num_clauses()),
                    ));
                }
            }
        }
        Ok(PinnedOutcome::Unknown(UnknownReason::DepthBound))
    }

    /// Materializes base-case depths `..=k`: the unrolling constraints go
    /// into the solver as clauses, the per-depth `bad@t` literal into the
    /// cache (to be assumed positively at its own depth, negatively at
    /// later ones).
    fn extend_base(&mut self, k: usize) {
        while self.base_bad_lits.len() <= k {
            let t = self.base_bad_lits.len();
            let bad_t = self.base_unr.lower_bool(&self.bad, t);
            let lit = self.base_unr.literal_for(&bad_t);
            self.base_bad_lits.push(lit);
            for c in self.base_unr.drain_clauses() {
                self.base_solver.add_clause(c);
            }
        }
    }

    /// Materializes induction depths `..=k` with per-depth `p@t`,
    /// pairwise-distinctness, and `bad@t` literals — all assumption
    /// literals, never asserted, because which of them hold depends on
    /// the depth being queried.
    fn extend_ind(&mut self, k: usize) {
        while self.ind_bad_lits.len() <= k {
            let t = self.ind_bad_lits.len();
            let good_t = self.ind_unr.lower_bool(&self.prop, t);
            let good_lit = self.ind_unr.literal_for(&good_t);
            self.ind_good_lits.push(good_lit);
            let mut diffs = Vec::with_capacity(t);
            for i in 0..t {
                let d = self.ind_unr.states_differ(i, t);
                diffs.push(self.ind_unr.literal_for(&d));
            }
            self.ind_diff_lits.push(diffs);
            let bad_t = self.ind_unr.lower_bool(&self.bad, t);
            self.ind_bad_lits.push(self.ind_unr.literal_for(&bad_t));
            for c in self.ind_unr.drain_clauses() {
                self.ind_solver.add_clause(c);
            }
        }
    }
}

/// Records which parameters' pin literals appear in a failed-assumption
/// core.
fn mark_core_hits(relevant: &mut [bool], core: &[Lit], param_bits: &HashMap<Var, usize>) {
    for l in core {
        if let Some(&i) = param_bits.get(&l.var()) {
            relevant[i] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::CheckResult;
    use crate::stats::Stats;

    /// The params.rs fixture: n += p (guard n ≤ 7), p ∈ 1..=3.
    /// G(n != 5) is violated for p = 1 and holds for p ∈ {2, 3}.
    fn step_counter() -> (System, VarId) {
        let mut sys = System::new("step");
        let n = sys.int_var("n", 0, 10);
        let p = sys.int_param("p", 1, 3);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        sys.add_trans(Expr::next(n).eq(Expr::ite(
            Expr::var(n).le(Expr::int(7)),
            Expr::var(n).add(Expr::var(p)),
            Expr::var(n),
        )));
        (sys, p)
    }

    #[test]
    fn one_engine_sweeps_all_assignments() {
        let (sys, p) = step_counter();
        let n = sys.var_by_name("n").unwrap();
        let prop = Expr::var(n).ne(Expr::int(5));
        let opts = CheckOptions::default();
        let mut engine = PinnedKInduction::new(&sys, &[p], &prop).unwrap();
        let mut verdicts = Vec::new();
        for v in 1..=3 {
            verdicts.push(engine.check(&[Value::Int(v)], &opts).unwrap());
        }
        assert!(matches!(&verdicts[0], PinnedOutcome::Violated(t)
            if t.value(t.len() - 1, "n") == Some(&Value::Int(5))));
        assert!(matches!(verdicts[1], PinnedOutcome::Holds { .. }));
        assert!(matches!(verdicts[2], PinnedOutcome::Holds { .. }));
    }

    #[test]
    fn matches_clone_path_verdicts_in_both_orders() {
        // Solver state carried over from earlier assignments must not
        // change any verdict, whichever order the sweep visits them in.
        let (sys, p) = step_counter();
        let n = sys.var_by_name("n").unwrap();
        let prop = Expr::var(n).ne(Expr::int(5));
        let opts = CheckOptions::default();
        for order in [[1i64, 2, 3], [3, 2, 1], [2, 1, 3]] {
            let mut engine = PinnedKInduction::new(&sys, &[p], &prop).unwrap();
            for v in order {
                let pinned = {
                    let mut s = sys.clone();
                    s.add_invar(Expr::var(p).eq(Expr::int(v)));
                    s
                };
                let reference =
                    crate::kind::run_invariant(&pinned, &prop, &opts, &mut Stats::default())
                        .unwrap();
                let got = engine.check(&[Value::Int(v)], &opts).unwrap();
                match reference {
                    CheckResult::Holds => {
                        assert!(matches!(got, PinnedOutcome::Holds { .. }), "p={v}")
                    }
                    CheckResult::Violated(_) => {
                        assert!(matches!(got, PinnedOutcome::Violated(_)), "p={v}")
                    }
                    CheckResult::Unknown(_) => {
                        assert!(matches!(got, PinnedOutcome::Unknown(_)), "p={v}")
                    }
                }
            }
        }
    }

    #[test]
    fn irrelevant_parameter_left_out_of_core() {
        // q drives an independent toggle; the property only mentions n,
        // so q's pin literals can never enter a core and the Holds
        // verdict must transfer over all values of q.
        let (mut sys, p) = step_counter();
        let q = sys.int_param("q", 0, 3);
        let x = sys.bool_var("x");
        sys.add_trans(Expr::next(x).eq(Expr::ite(
            Expr::var(q).ge(Expr::int(2)),
            Expr::var(x).not(),
            Expr::var(x),
        )));
        let n = sys.var_by_name("n").unwrap();
        let prop = Expr::var(n).ne(Expr::int(5));
        let opts = CheckOptions::default();
        let mut engine = PinnedKInduction::new(&sys, &[p, q], &prop).unwrap();
        let got = engine
            .check(&[Value::Int(2), Value::Int(0)], &opts)
            .unwrap();
        let PinnedOutcome::Holds { depth, relevant } = got else {
            panic!("p=2 is safe, got {got:?}");
        };
        assert!(!relevant[1], "q never participates in the proof");
        let pattern = HoldsPattern {
            values: vec![Value::Int(2), Value::Int(0)],
            relevant,
            depth,
        };
        for qv in 0..=3 {
            assert!(pattern.matches(&[Value::Int(2), Value::Int(qv)]));
            assert!(!pattern.matches(&[Value::Int(1), Value::Int(qv)]));
        }
        // The transfer is real: the siblings the pattern claims are safe
        // actually are.
        for qv in 1..=3 {
            let got = engine
                .check(&[Value::Int(2), Value::Int(qv)], &opts)
                .unwrap();
            assert!(matches!(got, PinnedOutcome::Holds { .. }), "q={qv}");
        }
    }

    #[test]
    fn unknown_on_exhausted_depth() {
        let (sys, p) = step_counter();
        let n = sys.var_by_name("n").unwrap();
        // Holds but not 0-inductive: depth 0 cannot close the induction.
        let prop = Expr::var(n).le(Expr::int(10));
        let mut engine = PinnedKInduction::new(&sys, &[p], &prop).unwrap();
        let got = engine
            .check(&[Value::Int(1)], &CheckOptions::with_depth(0))
            .unwrap();
        // Either 0-inductive (it is: the range bound is structural) or
        // DepthBound; never Violated.
        assert!(!matches!(got, PinnedOutcome::Violated(_)));
    }
}
