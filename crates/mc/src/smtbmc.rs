//! SMT-based bounded model checking for systems with real-valued state.
//!
//! Case study 2 of the paper (load balancer + ECMP) models traffic volumes
//! and latency coefficients as symbolic *reals*; finite bit-blasting does
//! not apply. This engine mirrors [`crate::bmc`] with a mixed encoding:
//!
//! * finite-sorted variables are bit-blasted exactly like the SAT engine,
//!   but into the SMT solver's Boolean skeleton;
//! * real-sorted variables become one [`TheoryVar`] per (variable, step);
//! * real comparisons become linear atoms; real `ite` terms are flattened
//!   through fresh theory variables with defining implications;
//! * lasso loop-backs include exact rational equality of the real state.

//!
//! ```
//! use verdict_logic::Rational;
//! use verdict_mc::prelude::*;
//! use verdict_ts::{Expr, System};
//!
//! // A drifting real-valued metric with a symbolic rate parameter.
//! let mut sys = System::new("drift");
//! let x = sys.real_var("x");
//! let rate = sys.real_param("rate");
//! sys.add_init(Expr::var(x).eq(Expr::real(Rational::ZERO)));
//! sys.add_init(Expr::var(rate).le(Expr::real(Rational::integer(2))));
//! sys.add_trans(Expr::next(x).eq(Expr::var(x).add(Expr::var(rate))));
//! // The checker picks a rate that breaks G(x < 3).
//! let mut stats = Stats::default();
//! let r = engine(EngineKind::SmtBmc)
//!     .check_invariant(&sys, &Expr::var(x).lt(Expr::real(Rational::integer(3))),
//!                      &CheckOptions::with_depth(6), &mut stats)
//!     .unwrap();
//! assert!(r.violated());
//! assert!(stats.smt.bound_flips > 0);
//! ```
use std::time::Instant;

use verdict_logic::{Formula, Rational};
use verdict_smt::{LinExpr, Rel, SmtResult, SmtSolver, TheoryVar};
use verdict_ts::bits::{self, FormulaAlg, Num};
use verdict_ts::{Expr, Ltl, Sort, System, Trace, Value, VarId, VarKind};

use crate::result::{Budget, CheckOptions, CheckResult, McError, UnknownReason};
use crate::stats::{Phase, SpanTimer, Stats};
use crate::tableau::violation_product;

/// Per-variable, per-step solver handles.
#[derive(Clone)]
enum StepVar {
    /// Offset-binary bit block (bool/enum/int).
    Bits(Vec<verdict_logic::Var>),
    /// A real variable.
    Real(TheoryVar),
}

/// The mixed finite/real unroller over an [`SmtSolver`].
pub struct SmtUnroller<'s> {
    sys: &'s System,
    smt: SmtSolver,
    widths: Vec<usize>,
    steps: Vec<Vec<StepVar>>,
    fresh_ite: usize,
}

impl<'s> SmtUnroller<'s> {
    /// Creates the unroller (the system must type-check).
    pub fn new(sys: &'s System) -> Result<SmtUnroller<'s>, McError> {
        sys.check()?;
        let widths = sys
            .var_ids()
            .map(|v| match sys.sort_of(v).cardinality() {
                Some(card) => 64 - (card - 1).leading_zeros() as usize,
                None => 0,
            })
            .collect();
        Ok(SmtUnroller {
            sys,
            smt: SmtSolver::new(),
            widths,
            steps: Vec::new(),
            fresh_ite: 0,
        })
    }

    /// Extends the unrolling through step `t` with all path constraints.
    pub fn extend_to(&mut self, t: usize) {
        while self.steps.len() <= t {
            self.push_step();
        }
    }

    fn push_step(&mut self) {
        let t = self.steps.len();
        let mut step = Vec::with_capacity(self.sys.num_vars());
        for v in self.sys.var_ids() {
            match self.sys.sort_of(v) {
                Sort::Real => {
                    let name = format!("{}@{t}", self.sys.name_of(v));
                    step.push(StepVar::Real(self.smt.real_var(&name)));
                }
                _ => {
                    let bits: Vec<verdict_logic::Var> = (0..self.widths[v.index()])
                        .map(|_| self.smt.bool_var())
                        .collect();
                    step.push(StepVar::Bits(bits));
                }
            }
        }
        self.steps.push(step);
        // Domain constraints for finite vars.
        for v in self.sys.var_ids() {
            if let Some(card) = self.sys.sort_of(v).cardinality() {
                if !card.is_power_of_two() && self.widths[v.index()] > 0 {
                    let bit_forms = self.bit_formulas(v, t);
                    let mut alg = FormulaAlg;
                    let dom = bits::unsigned_le_const(&mut alg, &bit_forms, card - 1);
                    self.smt.assert_formula(dom);
                }
            }
        }
        // INVAR.
        for inv in self.sys.invar().to_vec() {
            let f = self.lower_bool(&inv, t);
            self.smt.assert_formula(f);
        }
        if t == 0 {
            for init in self.sys.init().to_vec() {
                let f = self.lower_bool(&init, 0);
                self.smt.assert_formula(f);
            }
        } else {
            for tr in self.sys.trans().to_vec() {
                let f = self.lower_bool(&tr, t - 1);
                self.smt.assert_formula(f);
            }
            for v in self.sys.var_ids() {
                if self.sys.decl(v).kind == VarKind::Frozen {
                    let eq = self.var_equal(v, t - 1, t);
                    self.smt.assert_formula(eq);
                }
            }
        }
    }

    fn bit_formulas(&self, v: VarId, t: usize) -> Vec<Formula> {
        match &self.steps[t][v.index()] {
            StepVar::Bits(bs) => bs.iter().map(|&b| Formula::var(b)).collect(),
            StepVar::Real(_) => panic!("bit access on real var"),
        }
    }

    fn real_var_at(&self, v: VarId, t: usize) -> TheoryVar {
        match &self.steps[t][v.index()] {
            StepVar::Real(tv) => *tv,
            StepVar::Bits(_) => panic!("real access on finite var"),
        }
    }

    /// Equality of variable `v` between two steps.
    fn var_equal(&mut self, v: VarId, t1: usize, t2: usize) -> Formula {
        match self.sys.sort_of(v) {
            Sort::Real => {
                let a = LinExpr::var(self.real_var_at(v, t1));
                let b = LinExpr::var(self.real_var_at(v, t2));
                self.smt.eq_atom(a - b, Rational::ZERO)
            }
            _ => {
                let a = self.bit_formulas(v, t1);
                let b = self.bit_formulas(v, t2);
                let mut alg = FormulaAlg;
                bits::bits_eq(&mut alg, &a, &b)
            }
        }
    }

    /// Loop-back condition: states `i` and `j` agree on every non-frozen
    /// variable (frozen ones are equal by construction).
    pub fn states_equal(&mut self, i: usize, j: usize) -> Formula {
        self.extend_to(i.max(j));
        let vars: Vec<VarId> = self
            .sys
            .var_ids()
            .filter(|v| self.sys.decl(*v).kind == VarKind::State)
            .collect();
        let parts: Vec<Formula> = vars.into_iter().map(|v| self.var_equal(v, i, j)).collect();
        Formula::and_all(parts)
    }

    /// Lowers a boolean expression at step `t`.
    pub fn lower_bool(&mut self, e: &Expr, t: usize) -> Formula {
        if e.mentions_next() {
            self.extend_to(t + 1);
        } else {
            self.extend_to(t);
        }
        // Per-call pointer memo over the shared expression DAG.
        let mut seen = std::collections::HashMap::new();
        self.lower_bool_in(e, t, &mut seen)
    }

    fn lower_bool_in(
        &mut self,
        e: &Expr,
        t: usize,
        seen: &mut std::collections::HashMap<*const Expr, Formula>,
    ) -> Formula {
        let key = e as *const Expr;
        if let Some(hit) = seen.get(&key) {
            return hit.clone();
        }
        let result = self.lower_bool_uncached(e, t, seen);
        seen.insert(key, result.clone());
        result
    }

    fn lower_bool_uncached(
        &mut self,
        e: &Expr,
        t: usize,
        seen: &mut std::collections::HashMap<*const Expr, Formula>,
    ) -> Formula {
        match e {
            Expr::Const(Value::Bool(b)) => Formula::constant(*b),
            Expr::Var(v) if *self.sys.sort_of(*v) == Sort::Bool => {
                Formula::var(match &self.steps[t][v.index()] {
                    StepVar::Bits(bs) => bs[0],
                    _ => unreachable!(),
                })
            }
            Expr::Next(v) if *self.sys.sort_of(*v) == Sort::Bool => {
                Formula::var(match &self.steps[t + 1][v.index()] {
                    StepVar::Bits(bs) => bs[0],
                    _ => unreachable!(),
                })
            }
            Expr::Not(a) => self.lower_bool_in(a, t, seen).not(),
            Expr::And(xs) => {
                let mut acc = Formula::tt();
                for x in xs.iter() {
                    let f = self.lower_bool_in(x, t, seen);
                    acc = Formula::and_pair(acc, f);
                }
                acc
            }
            Expr::Or(xs) => {
                let mut acc = Formula::ff();
                for x in xs.iter() {
                    let f = self.lower_bool_in(x, t, seen);
                    acc = Formula::or_pair(acc, f);
                }
                acc
            }
            Expr::Implies(a, b) => {
                let a = self.lower_bool_in(a, t, seen);
                let b = self.lower_bool_in(b, t, seen);
                a.implies(b)
            }
            Expr::Iff(a, b) => {
                let a = self.lower_bool_in(a, t, seen);
                let b = self.lower_bool_in(b, t, seen);
                a.iff(b)
            }
            Expr::Ite(c, a, b) => {
                let c = self.lower_bool_in(c, t, seen);
                let a = self.lower_bool_in(a, t, seen);
                let b = self.lower_bool_in(b, t, seen);
                Formula::ite(c, a, b)
            }
            Expr::Eq(a, b) => {
                let sort = a.sort(self.sys).expect("type-checked");
                match sort {
                    Sort::Bool => {
                        let a = self.lower_bool_in(a, t, seen);
                        let b = self.lower_bool_in(b, t, seen);
                        a.iff(b)
                    }
                    Sort::Enum(_) => {
                        let a = self.lower_enum_bits(a, t, seen);
                        let b = self.lower_enum_bits(b, t, seen);
                        let mut alg = FormulaAlg;
                        bits::bits_eq(&mut alg, &a, &b)
                    }
                    Sort::Int { .. } => {
                        let a = self.lower_num(a, t, seen);
                        let b = self.lower_num(b, t, seen);
                        let mut alg = FormulaAlg;
                        bits::eq(&mut alg, &a, &b)
                    }
                    Sort::Real => {
                        let a = self.lower_real(a, t, seen);
                        let b = self.lower_real(b, t, seen);
                        self.smt.eq_atom(a - b, Rational::ZERO)
                    }
                }
            }
            Expr::Le(a, _b) | Expr::Lt(a, _b) => {
                let strict = matches!(e, Expr::Lt(_, _));
                let sort = a.sort(self.sys).expect("type-checked");
                if sort == Sort::Real {
                    let a = self.lower_real_of(e, t, 0, seen);
                    let b = self.lower_real_of(e, t, 1, seen);
                    let rel = if strict { Rel::Lt } else { Rel::Le };
                    self.smt.atom(a - b, rel, Rational::ZERO)
                } else {
                    let (a, b) = match e {
                        Expr::Le(a, b) | Expr::Lt(a, b) => (a, b),
                        _ => unreachable!(),
                    };
                    let a = self.lower_num(a, t, seen);
                    let b = self.lower_num(b, t, seen);
                    let mut alg = FormulaAlg;
                    if strict {
                        bits::lt(&mut alg, &a, &b)
                    } else {
                        bits::le(&mut alg, &a, &b)
                    }
                }
            }
            other => panic!("boolean lowering of {other}"),
        }
    }

    /// Helper to pull the nth operand of a comparison as a real expression.
    fn lower_real_of(
        &mut self,
        e: &Expr,
        t: usize,
        which: usize,
        seen: &mut std::collections::HashMap<*const Expr, Formula>,
    ) -> LinExpr {
        match e {
            Expr::Le(a, b) | Expr::Lt(a, b) => {
                if which == 0 {
                    self.lower_real(a, t, seen)
                } else {
                    self.lower_real(b, t, seen)
                }
            }
            _ => unreachable!(),
        }
    }

    fn lower_real(
        &mut self,
        e: &Expr,
        t: usize,
        seen: &mut std::collections::HashMap<*const Expr, Formula>,
    ) -> LinExpr {
        match e {
            Expr::Const(Value::Real(r)) => LinExpr::constant(*r),
            Expr::Var(v) => LinExpr::var(self.real_var_at(*v, t)),
            Expr::Next(v) => LinExpr::var(self.real_var_at(*v, t + 1)),
            Expr::Add(xs) => LinExpr::sum(
                xs.iter()
                    .map(|x| self.lower_real(x, t, seen))
                    .collect::<Vec<_>>(),
            ),
            Expr::Sub(a, b) => self.lower_real(a, t, seen) - self.lower_real(b, t, seen),
            Expr::Neg(a) => -self.lower_real(a, t, seen),
            Expr::MulConst(k, a) => self.lower_real(a, t, seen) * *k,
            Expr::Ite(c, a, b) => {
                // Flatten through a fresh theory variable:
                // (c → r = a) ∧ (¬c → r = b).
                let c = self.lower_bool_in(c, t, seen);
                let a = self.lower_real(a, t, seen);
                let b = self.lower_real(b, t, seen);
                let name = format!("__ite{}", self.fresh_ite);
                self.fresh_ite += 1;
                let r = self.smt.real_var(&name);
                let eq_a = self.smt.eq_atom(LinExpr::var(r) - a, Rational::ZERO);
                let eq_b = self.smt.eq_atom(LinExpr::var(r) - b, Rational::ZERO);
                self.smt.assert_formula(c.clone().implies(eq_a));
                self.smt.assert_formula(c.not().implies(eq_b));
                LinExpr::var(r)
            }
            other => panic!("real lowering of {other}"),
        }
    }

    fn lower_num(
        &mut self,
        e: &Expr,
        t: usize,
        seen: &mut std::collections::HashMap<*const Expr, Formula>,
    ) -> Num<Formula> {
        let mut alg = FormulaAlg;
        match e {
            Expr::Const(Value::Int(n)) => bits::num_const(&mut alg, *n),
            Expr::Var(v) | Expr::Next(v) => {
                let tt = if matches!(e, Expr::Next(_)) { t + 1 } else { t };
                let Sort::Int { lo, .. } = *self.sys.sort_of(*v) else {
                    panic!("numeric lowering of non-int var");
                };
                let raw = self.bit_formulas(*v, tt);
                let unsigned = bits::from_unsigned(&mut alg, &raw);
                if lo == 0 {
                    unsigned
                } else {
                    let off = bits::num_const(&mut alg, lo);
                    bits::add(&mut alg, &unsigned, &off)
                }
            }
            Expr::Add(xs) => {
                let mut acc = bits::num_const(&mut alg, 0);
                for x in xs.iter() {
                    let n = self.lower_num(x, t, seen);
                    let mut alg = FormulaAlg;
                    acc = bits::add(&mut alg, &acc, &n);
                }
                acc
            }
            Expr::Sub(a, b) => {
                let a = self.lower_num(a, t, seen);
                let b = self.lower_num(b, t, seen);
                bits::sub(&mut FormulaAlg, &a, &b)
            }
            Expr::Neg(a) => {
                let a = self.lower_num(a, t, seen);
                bits::neg(&mut FormulaAlg, &a)
            }
            Expr::MulConst(k, a) => {
                let a = self.lower_num(a, t, seen);
                bits::mul_const(&mut FormulaAlg, &a, k.numer() as i64)
            }
            Expr::CountTrue(xs) => {
                let flags: Vec<Formula> =
                    xs.iter().map(|x| self.lower_bool_in(x, t, seen)).collect();
                bits::count_true(&mut FormulaAlg, &flags)
            }
            Expr::Ite(c, a, b) => {
                let c = self.lower_bool_in(c, t, seen);
                let a = self.lower_num(a, t, seen);
                let b = self.lower_num(b, t, seen);
                bits::mux(&mut FormulaAlg, &c, &a, &b)
            }
            other => panic!("numeric lowering of {other}"),
        }
    }

    fn lower_enum_bits(
        &mut self,
        e: &Expr,
        t: usize,
        seen: &mut std::collections::HashMap<*const Expr, Formula>,
    ) -> Vec<Formula> {
        match e {
            Expr::Const(Value::Enum(sort, idx)) => {
                let card = sort.variants.len() as u64;
                let w = 64 - (card - 1).leading_zeros() as usize;
                (0..w)
                    .map(|i| Formula::constant(idx >> i & 1 == 1))
                    .collect()
            }
            Expr::Var(v) | Expr::Next(v) => {
                let tt = if matches!(e, Expr::Next(_)) { t + 1 } else { t };
                self.bit_formulas(*v, tt)
            }
            Expr::Ite(c, a, b) => {
                let c = self.lower_bool_in(c, t, seen);
                let a = self.lower_enum_bits(a, t, seen);
                let b = self.lower_enum_bits(b, t, seen);
                a.into_iter()
                    .zip(b)
                    .map(|(x, y)| Formula::ite(c.clone(), x, y))
                    .collect()
            }
            other => panic!("enum lowering of {other}"),
        }
    }

    /// Asserts a boolean expression at step `t`.
    pub fn assert_expr(&mut self, e: &Expr, t: usize) {
        let f = self.lower_bool(e, t);
        self.smt.assert_formula(f);
    }

    /// Decodes variable `v` at step `t` from a model.
    pub fn decode(&self, t: usize, v: VarId, model: &verdict_smt::SmtModel) -> Value {
        match &self.steps[t][v.index()] {
            StepVar::Real(tv) => Value::Real(model.real_value(*tv)),
            StepVar::Bits(bs) => {
                let mut u: u64 = 0;
                for (i, &b) in bs.iter().enumerate() {
                    if model.bool_value(b) {
                        u |= 1 << i;
                    }
                }
                match self.sys.sort_of(v) {
                    Sort::Bool => Value::Bool(u == 1),
                    Sort::Enum(e) => {
                        Value::Enum(e.clone(), (u as u32).min(e.variants.len() as u32 - 1))
                    }
                    Sort::Int { lo, hi } => Value::Int((*lo + u as i64).min(*hi)),
                    Sort::Real => unreachable!(),
                }
            }
        }
    }

    /// Decodes the states `0..len`.
    pub fn decode_trace(&self, len: usize, model: &verdict_smt::SmtModel) -> Vec<Vec<Value>> {
        (0..len)
            .map(|t| {
                self.sys
                    .var_ids()
                    .map(|v| self.decode(t, v, model))
                    .collect()
            })
            .collect()
    }

    /// Access to the solver (for defining assumption literals).
    pub fn smt_mut(&mut self) -> &mut SmtSolver {
        &mut self.smt
    }
}

/// Maps an SMT `Unknown` to the most specific reason: simplex arithmetic
/// overflow and clause-ceiling hits are resource exhaustion, otherwise the
/// budget decides (cancellation vs. timeout).
fn unknown_reason_smt(unr: &mut SmtUnroller<'_>, budget: &Budget) -> UnknownReason {
    if unr.smt_mut().overflowed() {
        return UnknownReason::ResourceExhausted;
    }
    let clauses = unr.smt_mut().num_clauses();
    budget.unknown_reason_sat(clauses)
}

/// Trait-dispatch entry point for invariant SMT-BMC — bounded
/// falsification of `G p` on a (possibly real-valued) system (see
/// [`crate::engine::engine`]).
pub(crate) fn run_invariant(
    sys: &System,
    p: &Expr,
    opts: &CheckOptions,
    stats: &mut Stats,
) -> Result<CheckResult, McError> {
    let mut unr = SmtUnroller::new(sys)?;
    let res = invariant_loop(sys, p, opts, stats, &mut unr);
    stats.absorb_smt(unr.smt_mut());
    res
}

fn invariant_loop(
    sys: &System,
    p: &Expr,
    opts: &CheckOptions,
    stats: &mut Stats,
    unr: &mut SmtUnroller<'_>,
) -> Result<CheckResult, McError> {
    let budget = Budget::new(opts);
    let bad = p.clone().not();
    for k in 0..=opts.max_depth {
        if let Some(reason) = budget.exceeded() {
            return Ok(CheckResult::Unknown(reason));
        }
        let encode = SpanTimer::begin(Phase::Encode);
        let t_unroll = Instant::now();
        unr.extend_to(k);
        let bad_k = unr.lower_bool(&bad, k);
        let bad_lit = unr.smt_mut().define_literal(&bad_k);
        let unroll_time = t_unroll.elapsed();
        stats.end_span(encode);
        let solve = SpanTimer::begin(Phase::Solve);
        let t_solve = Instant::now();
        let outcome = unr.smt_mut().solve_limited(&[bad_lit], budget.limits());
        stats.record_depth(k, unroll_time, t_solve.elapsed());
        stats.end_span(solve);
        match outcome {
            SmtResult::Sat(model) => {
                let states = unr.decode_trace(k + 1, &model);
                let trace = Trace::new(sys, states, None);
                return Ok(if opts.certify {
                    let replay = SpanTimer::begin(Phase::Replay);
                    let gated = crate::certify::gate_invariant_cex(sys, p, trace);
                    stats.end_span(replay);
                    gated
                } else {
                    CheckResult::Violated(trace)
                });
            }
            SmtResult::Unsat => {
                // Pin the refuted step: assert ¬bad_lit (mind the polarity
                // of the defined literal).
                let neg = Formula::lit(bad_lit.var(), !bad_lit.is_positive());
                unr.smt_mut().assert_formula(neg);
            }
            SmtResult::Unknown => {
                return Ok(CheckResult::Unknown(unknown_reason_smt(unr, &budget)));
            }
        }
    }
    Ok(CheckResult::Unknown(UnknownReason::DepthBound))
}

/// Trait-dispatch entry point for LTL SMT-BMC — bounded LTL
/// falsification by fair-lasso search with exact loop-back on real
/// variables, the paper's case study 2 shape (see
/// [`crate::engine::engine`]).
pub(crate) fn run_ltl(
    sys: &System,
    phi: &Ltl,
    opts: &CheckOptions,
    stats: &mut Stats,
) -> Result<CheckResult, McError> {
    let product = violation_product(sys, phi);
    let mut unr = SmtUnroller::new(&product.system)?;
    let res = ltl_loop(sys, phi, &product, opts, stats, &mut unr);
    stats.absorb_smt(unr.smt_mut());
    res
}

fn ltl_loop(
    sys: &System,
    phi: &Ltl,
    product: &crate::tableau::TableauProduct,
    opts: &CheckOptions,
    stats: &mut Stats,
    unr: &mut SmtUnroller<'_>,
) -> Result<CheckResult, McError> {
    let budget = Budget::new(opts);
    let psys = &product.system;
    for k in 1..=opts.max_depth {
        if let Some(reason) = budget.exceeded() {
            return Ok(CheckResult::Unknown(reason));
        }
        let encode = SpanTimer::begin(Phase::Encode);
        let t_unroll = Instant::now();
        unr.extend_to(k);
        let mut options = Vec::with_capacity(k);
        for l in 0..k {
            let eq = unr.states_equal(l, k);
            let mut parts = vec![eq];
            for j in &product.justice {
                let hits: Vec<Formula> = (l..k).map(|i| unr.lower_bool(j, i)).collect();
                parts.push(Formula::or_all(hits));
            }
            options.push(Formula::and_all(parts));
        }
        let lasso = Formula::or_all(options);
        let lasso_lit = unr.smt_mut().define_literal(&lasso);
        let unroll_time = t_unroll.elapsed();
        stats.end_span(encode);
        let solve = SpanTimer::begin(Phase::Solve);
        let t_solve = Instant::now();
        let outcome = unr.smt_mut().solve_limited(&[lasso_lit], budget.limits());
        stats.record_depth(k, unroll_time, t_solve.elapsed());
        stats.end_span(solve);
        match outcome {
            SmtResult::Sat(model) => {
                let full = unr.decode_trace(k + 1, &model);
                let loop_back = (0..k).find(|&l| full[l] == full[k]).unwrap_or(0);
                let projected: Vec<Vec<Value>> = full
                    .iter()
                    .map(|s| s[..product.original_vars].to_vec())
                    .collect();
                let mut trace = Trace::new(psys, projected, Some(loop_back));
                trace.var_names.truncate(product.original_vars);
                return Ok(if opts.certify {
                    let replay = SpanTimer::begin(Phase::Replay);
                    let gated = crate::certify::gate_ltl_cex(sys, phi, trace);
                    stats.end_span(replay);
                    gated
                } else {
                    CheckResult::Violated(trace)
                });
            }
            SmtResult::Unsat => {}
            SmtResult::Unknown => {
                return Ok(CheckResult::Unknown(unknown_reason_smt(unr, &budget)));
            }
        }
    }
    Ok(CheckResult::Unknown(UnknownReason::DepthBound))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_invariant_t(
        sys: &System,
        p: &Expr,
        opts: &CheckOptions,
    ) -> Result<CheckResult, McError> {
        run_invariant(sys, p, opts, &mut Stats::default())
    }

    fn check_ltl_t(sys: &System, phi: &Ltl, opts: &CheckOptions) -> Result<CheckResult, McError> {
        run_ltl(sys, phi, opts, &mut Stats::default())
    }

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    /// Leaky bucket: level' = level + inflow - 1, inflow a frozen real
    /// parameter; G(level <= 10) fails iff inflow > 1 can push it over.
    fn bucket() -> (System, VarId, VarId) {
        let mut sys = System::new("bucket");
        let level = sys.real_var("level");
        let inflow = sys.real_param("inflow");
        sys.add_init(Expr::var(level).eq(Expr::real(Rational::ZERO)));
        sys.add_init(Expr::var(inflow).ge(Expr::real(Rational::ZERO)));
        sys.add_init(Expr::var(inflow).le(Expr::real(r(3, 1))));
        sys.add_trans(
            Expr::next(level).eq(Expr::var(level)
                .add(Expr::var(inflow))
                .sub(Expr::real(Rational::ONE))),
        );
        (sys, level, inflow)
    }

    #[test]
    fn real_invariant_violation_with_parameter_solving() {
        let (sys, level, inflow) = bucket();
        let r10 = Expr::real(r(10, 1));
        let res = check_invariant_t(
            &sys,
            &Expr::var(level).le(r10),
            &CheckOptions::with_depth(16),
        )
        .unwrap();
        let t = res.trace().expect("violated: inflow can be 3");
        // The chosen inflow must actually cause the overflow.
        let Value::Real(inf) = t.value(0, "inflow").unwrap() else {
            panic!("inflow should be real");
        };
        assert!(*inf > Rational::ONE, "inflow = {inf}");
        let Value::Real(last) = t.value(t.len() - 1, "level").unwrap() else {
            panic!()
        };
        assert!(*last > r(10, 1));
        let _ = (level, inflow);
    }

    #[test]
    fn real_invariant_unknown_when_safe() {
        let (sys, level, _) = bucket();
        // level >= -depth is a trivially-safe bound BMC cannot violate.
        let res = check_invariant_t(
            &sys,
            &Expr::var(level).ge(Expr::real(r(-100, 1))),
            &CheckOptions::with_depth(6),
        )
        .unwrap();
        assert!(matches!(
            res,
            CheckResult::Unknown(UnknownReason::DepthBound)
        ));
    }

    #[test]
    fn mixed_finite_and_real_state() {
        // Mode switch (bool) gates which increment applies to a real var.
        let mut sys = System::new("mixed");
        let fast = sys.bool_var("fast");
        let x = sys.real_var("x");
        sys.add_init(Expr::var(x).eq(Expr::real(Rational::ZERO)));
        sys.add_trans(Expr::next(x).eq(Expr::var(x).add(Expr::ite(
            Expr::var(fast),
            Expr::real(r(2, 1)),
            Expr::real(r(1, 2)),
        ))));
        // Reaching x = 4 at step 2 requires fast twice.
        let res = check_invariant_t(
            &sys,
            &Expr::var(x).lt(Expr::real(r(4, 1))),
            &CheckOptions::with_depth(4),
        )
        .unwrap();
        let t = res.trace().expect("violated");
        assert_eq!(t.value(0, "fast"), Some(&Value::Bool(true)));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn ltl_lasso_over_reals() {
        // x alternates between 0 and 1 (real-valued oscillator):
        // F G (x = 0) is violated with a lasso.
        let mut sys = System::new("rflip");
        let x = sys.real_var("x");
        sys.add_init(Expr::var(x).eq(Expr::real(Rational::ZERO)));
        sys.add_trans(Expr::next(x).eq(Expr::ite(
            Expr::var(x).eq(Expr::real(Rational::ZERO)),
            Expr::real(Rational::ONE),
            Expr::real(Rational::ZERO),
        )));
        let phi = Ltl::atom(Expr::var(x).eq(Expr::real(Rational::ZERO)))
            .always()
            .eventually();
        let res = check_ltl_t(&sys, &phi, &CheckOptions::with_depth(8)).unwrap();
        let t = res.trace().expect("violated");
        assert!(t.loop_back.is_some(), "{t}");
    }

    #[test]
    fn strict_real_comparisons() {
        // G(x < 1) with x' = x + 1/2 from 0: violated at step 2 (x = 1 is
        // not < 1).
        let mut sys = System::new("strict");
        let x = sys.real_var("x");
        sys.add_init(Expr::var(x).eq(Expr::real(Rational::ZERO)));
        sys.add_trans(Expr::next(x).eq(Expr::var(x).add(Expr::real(r(1, 2)))));
        let res = check_invariant_t(
            &sys,
            &Expr::var(x).lt(Expr::real(Rational::ONE)),
            &CheckOptions::with_depth(4),
        )
        .unwrap();
        let t = res.trace().expect("violated");
        assert_eq!(t.len(), 3);
        assert_eq!(t.value(2, "x"), Some(&Value::Real(Rational::ONE)));
    }
}
