//! Portfolio racing: run a falsifier and a prover concurrently, keep the
//! first definitive answer.
//!
//! The paper's Fig. 5/6 observation is that falsification (BMC) is cheap
//! while proving (k-induction, BDD fixpoints) is exponentially expensive —
//! but which one terminates first depends on whether the property actually
//! holds, which is exactly what we don't know going in. The portfolio
//! engine hedges: it spawns one thread per contender engine on the same
//! system, takes the first `Holds`/`Violated` verdict, and raises a shared
//! stop flag so the losers exit cooperatively (see
//! [`crate::result::Budget`]). Because every contender is sound, any two
//! definitive answers agree, so first-wins is deterministic in the verdict
//! (the winning *engine* may differ run to run; it is reported in the
//! [`CheckReport`]).
//!
//! Contender line-ups (finite-state systems):
//!
//! | property  | falsifier | provers          |
//! |-----------|-----------|------------------|
//! | invariant | [`crate::bmc`] | [`crate::kind`], [`crate::bdd`] |
//! | LTL       | [`crate::bmc`] | [`crate::bdd`]  |
//! | CTL       | —         | [`crate::bdd`], [`crate::explicit_engine`] |
//!
//! Real-valued systems fall back to a solo [`crate::smtbmc`] run — there
//! is no second complete engine for QF_LRA models to race it against.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use verdict_ring::{ring, Consumer, Doorbell};
use verdict_sat::ClauseHub;
use verdict_ts::{Ctl, Expr, Ltl, System};

use crate::engine::EngineKind;
use crate::result::{CheckOptions, CheckResult, McError, UnknownReason};
use crate::stats::{RuntimeCounters, Stats};

/// A verdict plus racing metadata: which engine won and how long the
/// portfolio took wall-clock.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// The portfolio verdict (the winner's verdict).
    pub result: CheckResult,
    /// The engine that produced `result`. For a solo (non-raced) run this
    /// is simply the engine used.
    pub winner: EngineKind,
    /// Wall-clock time from spawn to verdict.
    pub wall: Duration,
    /// Every contender's final outcome, in spawn order — losers typically
    /// report `Unknown(Cancelled)`.
    pub outcomes: Vec<(EngineKind, CheckResult)>,
    /// The winner's solver/engine counters (the stats behind `result`).
    pub stats: Stats,
    /// Per-contender counter summaries, aligned with `outcomes`.
    pub contender_stats: Vec<(EngineKind, Stats)>,
}

/// Best-effort extraction of a panic payload's message for diagnostics.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// One contender: an engine tag plus the closure that runs it, recording
/// its counters into the per-contender [`Stats`] sink it is handed.
pub type Contender<'a> =
    Box<dyn FnOnce(&CheckOptions, &mut Stats) -> Result<CheckResult, McError> + Send + 'a>;

/// Races `contenders` to the first definitive (`Holds`/`Violated`) verdict
/// and cancels the rest via a shared stop flag.
///
/// Each contender publishes its verdict into its own SPSC ring and rings
/// a shared [`Doorbell`]; the collector parks between results instead of
/// polling a channel. With no caller stop flag to forward the park is
/// untimed — the collector wakes exactly once per verdict.
///
/// When `opts.sharing` is on (and no hub was pre-installed) the race
/// also builds a [`ClauseHub`] sized for the line-up: contenders whose
/// solvers unroll the same CNF prefix (BMC and the k-induction base
/// case) exchange learnt clauses through it, guarded by the solver-side
/// prefix check.
///
/// A stop flag already present in `opts` still works: the race monitor
/// polls it and forwards a caller-side cancellation to every contender.
///
/// Contenders are panic-isolated: a panicking engine is contained by its
/// worker thread and recorded as `Unknown(EngineFailure)`, so one buggy
/// contender cannot take down the race (the panic payload is reported on
/// stderr). Public mainly so tests can inject custom contenders; the
/// `check_*` wrappers cover the standard line-ups.
pub fn race(
    opts: &CheckOptions,
    contenders: Vec<(EngineKind, Contender<'_>)>,
) -> Result<CheckReport, McError> {
    let start = Instant::now();
    let caller_stop = opts.stop.clone();
    let race_stop = Arc::new(AtomicBool::new(false));
    let n = contenders.len();
    type Verdict = (EngineKind, Result<CheckResult, McError>, Stats);

    // One ring per contender: single producer, and the slot index is the
    // ring index, so nothing needs a lock or a tag.
    let mut producers = Vec::with_capacity(n);
    let mut consumers: Vec<Consumer<Verdict>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = ring::<Verdict>(2);
        producers.push(tx);
        consumers.push(rx);
    }
    // Built on this thread: the collector below parks on it.
    let bell = Doorbell::new();
    let finished = AtomicUsize::new(0);
    let hub = (opts.sharing && opts.share_hub.is_none() && n > 1).then(|| ClauseHub::new(n));

    // Increments the finished count and rings the collector no matter how
    // the worker exits, so a worker that dies without publishing a
    // verdict can never strand a parked (untimed) collector.
    struct FinishGuard<'a> {
        finished: &'a AtomicUsize,
        bell: &'a Doorbell,
    }
    impl Drop for FinishGuard<'_> {
        fn drop(&mut self) {
            self.finished.fetch_add(1, Ordering::Release);
            self.bell.ring();
        }
    }

    let (slots, winner_idx, collector) = std::thread::scope(|scope| {
        for ((engine, run), mut tx) in contenders.into_iter().zip(producers) {
            let worker_opts = CheckOptions {
                stop: Some(race_stop.clone()),
                share_hub: hub.clone().or_else(|| opts.share_hub.clone()),
                ..opts.clone()
            };
            let trace = opts.trace.clone();
            let (bell, finished) = (&bell, &finished);
            scope.spawn(move || {
                let _guard = FinishGuard { finished, bell };
                let mut stats = Stats::for_engine(engine).with_trace(trace);
                // Contain contender panics: a crashing engine becomes an
                // `Unknown(EngineFailure)` outcome instead of unwinding
                // through the scope and aborting the whole race.
                let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    // Fault-injection probe at site `mc.portfolio.worker`,
                    // inside the containment boundary so an injected
                    // panic exercises it.
                    verdict_journal::fault::panic_if_armed("mc.portfolio.worker");
                    run(&worker_opts, &mut stats)
                }))
                .unwrap_or_else(|payload| {
                    let msg = panic_message(payload.as_ref());
                    eprintln!("verdict-mc: {engine} engine panicked: {msg}");
                    Ok(CheckResult::Unknown(UnknownReason::EngineFailure))
                });
                // Cannot fail: the ring holds 2 and this producer pushes
                // exactly once. The guard rings the bell on drop.
                let _ = tx.push((engine, res, stats));
            });
        }

        type Slot = Option<(EngineKind, Result<CheckResult, McError>, Stats)>;
        let mut slots: Vec<Slot> = (0..n).map(|_| None).collect();
        let mut winner_idx = None;
        let mut received = 0;
        let mut collector = RuntimeCounters::default();
        // Only wake on a timer when there is a caller-side stop flag that
        // nobody rings for; otherwise park until a verdict arrives.
        let tick = caller_stop.as_ref().map(|_| Duration::from_millis(25));
        loop {
            // Forward caller-side cancellation into the race.
            if caller_stop
                .as_ref()
                .is_some_and(|s| s.load(Ordering::Relaxed))
            {
                race_stop.store(true, Ordering::Relaxed);
            }
            let mut batch = 0u64;
            for (idx, rx) in consumers.iter_mut().enumerate() {
                if let Some((engine, res, stats)) = rx.pop() {
                    batch += 1;
                    received += 1;
                    let definitive =
                        matches!(res, Ok(CheckResult::Holds | CheckResult::Violated(_)));
                    slots[idx] = Some((engine, res, stats));
                    if definitive && winner_idx.is_none() {
                        winner_idx = Some(idx);
                        // First definitive verdict: cancel the losers.
                        race_stop.store(true, Ordering::Relaxed);
                    }
                }
            }
            if batch > 0 {
                collector.ring_messages += batch;
                collector.ring_batches += 1;
            }
            if received >= n {
                break;
            }
            if batch == 0 && finished.load(Ordering::Acquire) >= n {
                // Every worker exited and the rings are dry: a worker
                // died without reporting (its slot stays `None`).
                break;
            }
            bell.wait(tick, || {
                finished.load(Ordering::Acquire) >= n
                    || consumers.iter_mut().any(|rx| !rx.is_empty())
            });
        }
        let d = bell.counters();
        collector.parks = d.parks;
        collector.wakes = d.wakes;
        collector.spurious_wakeups = d.spurious_wakeups;
        (slots, winner_idx, collector)
    });

    let wall = start.elapsed();
    let mut outcomes: Vec<(EngineKind, CheckResult)> = Vec::with_capacity(n);
    let mut contender_stats: Vec<(EngineKind, Stats)> = Vec::with_capacity(n);
    let mut first_err: Option<McError> = None;
    let mut winner: Option<(EngineKind, CheckResult, Stats)> = None;
    for (idx, slot) in slots.into_iter().enumerate() {
        let Some((engine, res, stats)) = slot else {
            continue;
        };
        match res {
            Ok(r) => {
                if winner_idx == Some(idx) {
                    winner = Some((engine, r.clone(), stats.clone()));
                }
                outcomes.push((engine, r));
                contender_stats.push((engine, stats));
            }
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }

    if let Some((engine, result, mut stats)) = winner {
        // The collection machinery's counters describe the race itself;
        // report them on the winning stats so the PR-5 sink sees them.
        stats.runtime.add(collector);
        return Ok(CheckReport {
            result,
            winner: engine,
            wall,
            outcomes,
            stats,
            contender_stats,
        });
    }
    // No definitive verdict: prefer the most informative Unknown.
    let rank = |r: &CheckResult| match r {
        CheckResult::Unknown(UnknownReason::DepthBound) => 0,
        CheckResult::Unknown(UnknownReason::EffortBound) => 1,
        CheckResult::Unknown(UnknownReason::ResourceExhausted) => 2,
        CheckResult::Unknown(UnknownReason::Timeout) => 3,
        CheckResult::Unknown(UnknownReason::CertificateRejected) => 4,
        CheckResult::Unknown(UnknownReason::Cancelled) => 5,
        CheckResult::Unknown(UnknownReason::EngineFailure) => 6,
        _ => 7,
    };
    let best = outcomes
        .iter()
        .enumerate()
        .min_by_key(|(_, (_, r))| rank(r))
        .map(|(i, (e, r))| (i, *e, r.clone()));
    match best {
        Some((idx, engine, result)) => {
            let mut stats = contender_stats[idx].1.clone();
            stats.runtime.add(collector);
            Ok(CheckReport {
                result,
                winner: engine,
                wall,
                outcomes,
                stats,
                contender_stats,
            })
        }
        None => Err(first_err.unwrap_or_else(|| McError("portfolio: no contenders".to_string()))),
    }
}

/// Runs a single engine and wraps its verdict in a [`CheckReport`] (used
/// when there is nothing to race, e.g. real-valued systems → SMT only).
fn solo(
    engine: EngineKind,
    opts: &CheckOptions,
    run: impl FnOnce(&CheckOptions, &mut Stats) -> Result<CheckResult, McError>,
) -> Result<CheckReport, McError> {
    let start = Instant::now();
    let mut stats = Stats::for_engine(engine).with_trace(opts.trace.clone());
    let result = run(opts, &mut stats)?;
    Ok(CheckReport {
        winner: engine,
        wall: start.elapsed(),
        outcomes: vec![(engine, result.clone())],
        contender_stats: vec![(engine, stats.clone())],
        stats,
        result,
    })
}

/// Folds a finished report's winning stats back into the caller's sink
/// (adopting the winner's depth samples when the caller has none).
fn fold_stats(stats: &mut Stats, report: &CheckReport) {
    stats.merge(&report.stats);
    if stats.depths.is_empty() {
        stats.depths.clone_from(&report.stats.depths);
    }
}

/// Trait-dispatch entry point for the invariant portfolio — BMC
/// (falsifier) vs k-induction and BDD (provers) on finite systems, solo
/// SMT-BMC on real-valued ones (see [`crate::engine::engine`]); the
/// winner's counters are folded into `stats` and the full per-contender
/// breakdown rides on the report.
pub(crate) fn run_invariant(
    sys: &System,
    p: &Expr,
    opts: &CheckOptions,
    stats: &mut Stats,
) -> Result<CheckReport, McError> {
    let report = if sys.has_real_vars() {
        solo(EngineKind::SmtBmc, opts, |o, st| {
            crate::smtbmc::run_invariant(sys, p, o, st)
        })
    } else {
        race(
            opts,
            vec![
                (
                    EngineKind::Bmc,
                    Box::new(|o: &CheckOptions, st: &mut Stats| {
                        crate::bmc::run_invariant(sys, p, o, st)
                    }) as Contender<'_>,
                ),
                (
                    EngineKind::KInduction,
                    Box::new(|o: &CheckOptions, st: &mut Stats| {
                        crate::kind::run_invariant(sys, p, o, st)
                    }),
                ),
                (
                    EngineKind::Bdd,
                    Box::new(|o: &CheckOptions, st: &mut Stats| {
                        crate::bdd::run_invariant(sys, p, o, st)
                    }),
                ),
            ],
        )
    }?;
    fold_stats(stats, &report);
    Ok(report)
}

/// Trait-dispatch entry point for the LTL portfolio — BMC fair-lasso
/// search (falsifier) vs the complete BDD tableau engine, solo SMT-BMC on
/// real-valued systems (see [`crate::engine::engine`]).
pub(crate) fn run_ltl(
    sys: &System,
    phi: &Ltl,
    opts: &CheckOptions,
    stats: &mut Stats,
) -> Result<CheckReport, McError> {
    let report = if sys.has_real_vars() {
        solo(EngineKind::SmtBmc, opts, |o, st| {
            crate::smtbmc::run_ltl(sys, phi, o, st)
        })
    } else {
        race(
            opts,
            vec![
                (
                    EngineKind::Bmc,
                    Box::new(|o: &CheckOptions, st: &mut Stats| {
                        crate::bmc::run_ltl(sys, phi, o, st)
                    }) as Contender<'_>,
                ),
                (
                    EngineKind::Bdd,
                    Box::new(|o: &CheckOptions, st: &mut Stats| {
                        crate::bdd::run_ltl(sys, phi, o, st)
                    }),
                ),
            ],
        )
    }?;
    fold_stats(stats, &report);
    Ok(report)
}

/// Trait-dispatch entry point for the CTL portfolio — BDD fixpoints vs
/// the explicit-state engine, both complete; whichever shape of state
/// space is kinder wins (see [`crate::engine::engine`]).
pub(crate) fn run_ctl(
    sys: &System,
    phi: &Ctl,
    opts: &CheckOptions,
    stats: &mut Stats,
) -> Result<CheckReport, McError> {
    if sys.has_real_vars() {
        return Err(McError(
            "CTL checking requires a finite-state system".to_string(),
        ));
    }
    let report = race(
        opts,
        vec![
            (
                EngineKind::Bdd,
                Box::new(|o: &CheckOptions, st: &mut Stats| crate::bdd::run_ctl(sys, phi, o, st))
                    as Contender<'_>,
            ),
            (
                EngineKind::Explicit,
                Box::new(|o: &CheckOptions, st: &mut Stats| {
                    crate::explicit_engine::run_ctl(sys, phi, o, st)
                }),
            ),
        ],
    )?;
    fold_stats(stats, &report);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_invariant_t(
        sys: &System,
        p: &Expr,
        opts: &CheckOptions,
    ) -> Result<CheckReport, McError> {
        run_invariant(sys, p, opts, &mut Stats::default())
    }

    fn check_ltl_t(sys: &System, phi: &Ltl, opts: &CheckOptions) -> Result<CheckReport, McError> {
        run_ltl(sys, phi, opts, &mut Stats::default())
    }

    fn check_ctl_t(sys: &System, phi: &Ctl, opts: &CheckOptions) -> Result<CheckReport, McError> {
        run_ctl(sys, phi, opts, &mut Stats::default())
    }

    fn counter(limit: i64) -> (System, verdict_ts::VarId) {
        let mut sys = System::new("counter");
        let n = sys.int_var("n", 0, limit);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        sys.add_trans(Expr::next(n).eq(Expr::ite(
            Expr::var(n).lt(Expr::int(limit)),
            Expr::var(n).add(Expr::int(1)),
            Expr::var(n),
        )));
        (sys, n)
    }

    #[test]
    fn portfolio_proves_and_falsifies() {
        let (sys, n) = counter(7);
        let opts = CheckOptions::default();
        let holds = check_invariant_t(&sys, &Expr::var(n).le(Expr::int(7)), &opts).unwrap();
        assert!(holds.result.holds(), "{}", holds.result);
        // BMC cannot prove, so the winner must be a prover.
        assert!(matches!(
            holds.winner,
            EngineKind::KInduction | EngineKind::Bdd
        ));

        let viol = check_invariant_t(&sys, &Expr::var(n).lt(Expr::int(5)), &opts).unwrap();
        assert!(viol.result.violated());
        assert!(!viol.outcomes.is_empty());
        assert!(viol.outcomes.iter().any(|(e, _)| *e == viol.winner));
    }

    #[test]
    fn caller_stop_flag_cancels_whole_portfolio() {
        let (sys, n) = counter(7);
        let stop = Arc::new(AtomicBool::new(true)); // raised before the race
        let opts = CheckOptions::default().with_stop(stop);
        let r = check_invariant_t(&sys, &Expr::var(n).le(Expr::int(7)), &opts);
        // Workers may still finish (tiny model) or come back Cancelled —
        // but the call must return, not hang, and never report Violated.
        let report = r.unwrap();
        assert!(!report.result.violated());
    }

    #[test]
    fn ltl_portfolio_agrees_with_bdd() {
        let mut sys = System::new("flip");
        let x = sys.bool_var("x");
        sys.add_init(Expr::var(x));
        sys.add_trans(Expr::next(x).eq(Expr::var(x).not()));
        let phi = Ltl::atom(Expr::var(x)).always().eventually();
        let opts = CheckOptions::default();
        let racy = check_ltl_t(&sys, &phi, &opts).unwrap();
        let seq = crate::bdd::run_ltl(&sys, &phi, &opts, &mut Stats::default()).unwrap();
        assert_eq!(racy.result.violated(), seq.violated());
    }

    #[test]
    fn report_carries_winner_and_contender_stats() {
        let (sys, n) = counter(7);
        let report = check_invariant_t(
            &sys,
            &Expr::var(n).lt(Expr::int(5)),
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(report.result.violated());
        assert_eq!(report.stats.engine, Some(report.winner));
        assert!(!report.stats.counters_are_zero(), "winner did no work?");
        assert_eq!(report.contender_stats.len(), report.outcomes.len());
        for ((e1, _), (e2, _)) in report.outcomes.iter().zip(&report.contender_stats) {
            assert_eq!(e1, e2);
        }
    }

    #[test]
    fn ctl_portfolio() {
        let (sys, n) = counter(7);
        let phi = Ctl::atom(Expr::var(n).eq(Expr::int(7))).ef();
        let r = check_ctl_t(&sys, &phi, &CheckOptions::default()).unwrap();
        assert!(r.result.holds());
        assert!(matches!(r.winner, EngineKind::Bdd | EngineKind::Explicit));
    }
}
