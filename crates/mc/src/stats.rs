//! Structured observability for the solver stack.
//!
//! Every engine run owns a [`Stats`] sink: a flat bundle of counters
//! (SAT, simplex, BDD), per-depth timings, phase timers, and retry/fault
//! tallies. Recording is cheap — counters are plain integers incremented
//! in the solver crates and absorbed here in bulk after each solve, so
//! the hot loops never see an allocation or a branch they did not already
//! have.
//!
//! Two output surfaces:
//!
//! * [`Stats::to_json`] — a versioned JSON block (`"schema": 2`), emitted
//!   by the CLI under `--stats` and embedded in `--json` rows.
//! * [`TraceSink`] — an optional JSONL event log (`--trace FILE`) with
//!   span-style phase events for offline flamegraph-style analysis.
//!
//! Counter values are deterministic for a fixed seed and a single worker:
//! two identical runs produce identical [`Stats::counters_json`] strings
//! (timings are excluded from that view — see the stats-determinism tests).

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::engine::EngineKind;

/// Version of the stats / CLI JSON schema. Bumped whenever a field is
/// renamed or removed, so downstream bench tooling can evolve safely.
/// Documented in DESIGN.md §12.
pub const STATS_SCHEMA_VERSION: u32 = 2;

/// CDCL SAT counters, summed over every SAT solver the run created
/// (k-induction owns two, the DPLL(T) core of SMT-BMC counts here too).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SatCounters {
    /// Decisions made.
    pub decisions: u64,
    /// Unit propagations performed.
    pub propagations: u64,
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learnt (cumulative, deletions not subtracted).
    pub learnt_clauses: u64,
    /// Total literals across all learnt clauses (size proxy).
    pub learnt_literals: u64,
    /// Learnt clauses deleted by database reductions.
    pub deleted_clauses: u64,
}

impl SatCounters {
    fn add(&mut self, o: SatCounters) {
        self.decisions += o.decisions;
        self.propagations += o.propagations;
        self.conflicts += o.conflicts;
        self.restarts += o.restarts;
        self.learnt_clauses += o.learnt_clauses;
        self.learnt_literals += o.learnt_literals;
        self.deleted_clauses += o.deleted_clauses;
    }

    /// True iff every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == SatCounters::default()
    }
}

impl From<verdict_sat::Stats> for SatCounters {
    fn from(s: verdict_sat::Stats) -> SatCounters {
        SatCounters {
            decisions: s.decisions,
            propagations: s.propagations,
            conflicts: s.conflicts,
            restarts: s.restarts,
            // The solver reports the *live* learnt count; add back the
            // deleted ones so the counter is monotone across reductions.
            learnt_clauses: s.learnt_clauses + s.deleted_clauses,
            learnt_literals: s.learnt_literals,
            deleted_clauses: s.deleted_clauses,
        }
    }
}

/// Simplex (QF_LRA theory core) counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SmtCounters {
    /// Tableau pivot operations.
    pub pivots: u64,
    /// Nonbasic-variable bound flips.
    pub bound_flips: u64,
    /// Times tableau arithmetic overflowed `i128` and poisoned itself.
    pub overflow_poisonings: u64,
}

impl SmtCounters {
    fn add(&mut self, o: SmtCounters) {
        self.pivots += o.pivots;
        self.bound_flips += o.bound_flips;
        self.overflow_poisonings += o.overflow_poisonings;
    }

    /// True iff every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == SmtCounters::default()
    }
}

/// ROBDD manager counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BddCounters {
    /// Nodes allocated (constants excluded).
    pub nodes_allocated: u64,
    /// `ite` cache lookups.
    pub ite_cache_lookups: u64,
    /// `ite` cache hits.
    pub ite_cache_hits: u64,
    /// High-water mark of the manager's live node count.
    pub peak_live_nodes: u64,
    /// Transition-relation partitions (1 under `--bdd-monolithic`).
    pub partitions: u64,
    /// Dynamic variable reorders (sifts) performed.
    pub sifts: u64,
    /// Reachable nodes immediately before each sift, summed.
    pub sift_nodes_before: u64,
    /// Reachable nodes immediately after each sift, summed.
    pub sift_nodes_after: u64,
    /// Bounded-cache evictions (wholesale `ite`/`and_exists` cache
    /// clears: capacity pressure or a reorder invalidating entries).
    pub cache_clears: u64,
}

impl BddCounters {
    fn add(&mut self, o: BddCounters) {
        self.nodes_allocated += o.nodes_allocated;
        self.ite_cache_lookups += o.ite_cache_lookups;
        self.ite_cache_hits += o.ite_cache_hits;
        self.peak_live_nodes = self.peak_live_nodes.max(o.peak_live_nodes);
        self.partitions = self.partitions.max(o.partitions);
        self.sifts += o.sifts;
        self.sift_nodes_before += o.sift_nodes_before;
        self.sift_nodes_after += o.sift_nodes_after;
        self.cache_clears += o.cache_clears;
    }

    /// `ite` cache hit rate in `[0, 1]`; 0 when there were no lookups.
    pub fn ite_hit_rate(&self) -> f64 {
        if self.ite_cache_lookups == 0 {
            0.0
        } else {
            self.ite_cache_hits as f64 / self.ite_cache_lookups as f64
        }
    }

    /// True iff every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == BddCounters::default()
    }
}

/// Parallel-runtime counters: learned-clause sharing traffic plus the
/// lock-free collection machinery (SPSC rings and parked collectors)
/// introduced with `verdict-ring`. All zero for single-worker runs with
/// sharing disabled, which keeps the stats-determinism contract intact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuntimeCounters {
    /// Learnt clauses this run's solvers exported to sharing peers.
    pub clauses_exported: u64,
    /// Shared clauses imported after clearing the prefix guard.
    pub clauses_imported: u64,
    /// Shared clauses refused (foreign prefix or proof logging active).
    pub imports_rejected: u64,
    /// Imported clauses that became unit or conflicting in propagation.
    pub import_hits: u64,
    /// Messages drained from result-collection rings.
    pub ring_messages: u64,
    /// Nonempty drain sweeps over the result rings (messages ÷ batches
    /// is the mean batch size).
    pub ring_batches: u64,
    /// Times a collector parked on its doorbell.
    pub parks: u64,
    /// Times a parked collector was woken by a producer.
    pub wakes: u64,
    /// Wakeups that found no work ready (timeouts and spurious unparks).
    pub spurious_wakeups: u64,
}

impl RuntimeCounters {
    /// Sums another group into this one (collectors fold their own
    /// counters into the stats they report).
    pub(crate) fn add(&mut self, o: RuntimeCounters) {
        self.clauses_exported += o.clauses_exported;
        self.clauses_imported += o.clauses_imported;
        self.imports_rejected += o.imports_rejected;
        self.import_hits += o.import_hits;
        self.ring_messages += o.ring_messages;
        self.ring_batches += o.ring_batches;
        self.parks += o.parks;
        self.wakes += o.wakes;
        self.spurious_wakeups += o.spurious_wakeups;
    }

    /// True iff every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == RuntimeCounters::default()
    }
}

/// Serving-daemon counters: job admission/lifecycle tallies plus the
/// group-commit WAL's I/O behaviour. All zero for plain CLI runs, which
/// keeps the stats-determinism contract intact; the `verdict-server`
/// crate fills them in and surfaces them through the daemon's `stats`
/// operation. `wal_fsyncs < wal_appends` is the group-commit win the
/// server bench asserts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Jobs admitted (durably journaled and queued or started).
    pub jobs_accepted: u64,
    /// Jobs refused with a structured reason (queue full, draining,
    /// parse error, WAL failure).
    pub jobs_rejected: u64,
    /// Jobs currently waiting in the admission queue.
    pub jobs_queued: u64,
    /// Jobs currently executing on a worker.
    pub jobs_running: u64,
    /// Jobs finished with a recorded verdict map.
    pub jobs_completed: u64,
    /// Jobs re-enqueued (or re-reported) from the WAL on restart.
    pub jobs_recovered: u64,
    /// Records durably appended to the WAL.
    pub wal_appends: u64,
    /// Group commits performed (batches sharing one fsync).
    pub wal_group_commits: u64,
    /// `fsync` calls the WAL issued.
    pub wal_fsyncs: u64,
    /// WAL segment rotations.
    pub wal_rotations: u64,
}

impl ServerCounters {
    /// Sums another group into this one (gauges `jobs_queued` and
    /// `jobs_running` are summed too — merging is for aggregating
    /// disjoint servers, not snapshots of one).
    pub fn add(&mut self, o: ServerCounters) {
        self.jobs_accepted += o.jobs_accepted;
        self.jobs_rejected += o.jobs_rejected;
        self.jobs_queued += o.jobs_queued;
        self.jobs_running += o.jobs_running;
        self.jobs_completed += o.jobs_completed;
        self.jobs_recovered += o.jobs_recovered;
        self.wal_appends += o.wal_appends;
        self.wal_group_commits += o.wal_group_commits;
        self.wal_fsyncs += o.wal_fsyncs;
        self.wal_rotations += o.wal_rotations;
    }

    /// True iff every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == ServerCounters::default()
    }
}

/// Supervision-layer counters: the self-healing machinery of the
/// serving daemon (watchdog escalations, hedged re-execution, crash-loop
/// quarantine). All zero for plain CLI runs — the group only moves when
/// `verdict-server`'s supervisor thread is alive — so the
/// stats-determinism contract is untouched.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SupervisionCounters {
    /// Total heartbeat stamps across the worker fleet (each budget poll
    /// by a supervised run is one beat).
    pub heartbeats: u64,
    /// Watchdog escalation steps taken (stop-flag raise, solver
    /// poisoning, and thread abandonment each count one).
    pub escalations: u64,
    /// Runs the watchdog declared hung and abandoned.
    pub hung_workers: u64,
    /// Worker slots respawned after their thread was abandoned.
    pub workers_respawned: u64,
    /// Speculative second runs launched past the hedge threshold.
    pub hedges_launched: u64,
    /// Hedges whose verdict finalized the job (the primary lost).
    pub hedges_won: u64,
    /// Hedges beaten by the primary run (launched, then cancelled).
    pub hedges_lost: u64,
    /// Hedge runs that finished without a usable verdict (undecided, or
    /// job already finalized when they reported).
    pub hedges_wasted: u64,
    /// Submits rejected because the spec fingerprint was quarantined.
    pub quarantine_hits: u64,
    /// Spec fingerprints placed into quarantine (crash/hang loop
    /// tripped the consecutive-failure threshold).
    pub quarantined: u64,
}

impl SupervisionCounters {
    /// Sums another group into this one.
    pub fn add(&mut self, o: SupervisionCounters) {
        self.heartbeats += o.heartbeats;
        self.escalations += o.escalations;
        self.hung_workers += o.hung_workers;
        self.workers_respawned += o.workers_respawned;
        self.hedges_launched += o.hedges_launched;
        self.hedges_won += o.hedges_won;
        self.hedges_lost += o.hedges_lost;
        self.hedges_wasted += o.hedges_wasted;
        self.quarantine_hits += o.quarantine_hits;
        self.quarantined += o.quarantined;
    }

    /// True iff every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == SupervisionCounters::default()
    }
}

impl From<verdict_bdd::BddStats> for BddCounters {
    fn from(s: verdict_bdd::BddStats) -> BddCounters {
        BddCounters {
            nodes_allocated: s.nodes_allocated,
            ite_cache_lookups: s.ite_cache_lookups,
            ite_cache_hits: s.ite_cache_hits,
            peak_live_nodes: s.peak_live_nodes,
            partitions: 0, // engine-level, filled in by the symbolic engine
            sifts: s.reorders,
            sift_nodes_before: s.sift_nodes_before,
            sift_nodes_after: s.sift_nodes_after,
            cache_clears: s.cache_clears,
        }
    }
}

/// Cost of one unrolling depth in a BMC / k-induction loop.
#[derive(Clone, Copy, Debug, Default)]
pub struct DepthSample {
    /// The depth (number of transitions unrolled).
    pub depth: usize,
    /// Time spent extending + lowering the unrolling at this depth.
    pub unroll_ns: u64,
    /// Time spent inside solver calls at this depth.
    pub solve_ns: u64,
}

/// A span-timed phase of an engine run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Building and lowering the problem (unrolling, CNF/BDD encoding).
    Encode,
    /// Solver time (SAT/SMT solve calls, fixpoint computation).
    Solve,
    /// Certificate construction and re-checking (induction recheck,
    /// inductive-invariant recheck).
    Certify,
    /// Counterexample replay through the reference interpreter.
    Replay,
}

impl Phase {
    /// Every phase, in accumulator-index order.
    pub const ALL: [Phase; 4] = [Phase::Encode, Phase::Solve, Phase::Certify, Phase::Replay];

    /// Stable lowercase tag used in JSON output and trace events.
    pub fn tag(self) -> &'static str {
        match self {
            Phase::Encode => "encode",
            Phase::Solve => "solve",
            Phase::Certify => "certify",
            Phase::Replay => "replay",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Encode => 0,
            Phase::Solve => 1,
            Phase::Certify => 2,
            Phase::Replay => 3,
        }
    }
}

/// A running phase timer, detached from the [`Stats`] sink so engines can
/// keep mutating stats while a span is open. Close it with
/// [`Stats::end_span`].
#[derive(Debug)]
pub struct SpanTimer {
    phase: Phase,
    start: Instant,
}

impl SpanTimer {
    /// Starts timing `phase` now.
    pub fn begin(phase: Phase) -> SpanTimer {
        SpanTimer {
            phase,
            start: Instant::now(),
        }
    }
}

/// The per-run observability sink. One per engine run; portfolio races
/// give each contender its own and report the winner's alongside
/// per-contender summaries ([`crate::CheckReport`]).
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// The engine that produced these stats, when known.
    pub engine: Option<EngineKind>,
    /// CDCL SAT counters (BMC, k-induction, and the SMT SAT core).
    pub sat: SatCounters,
    /// Simplex counters (SMT-BMC only).
    pub smt: SmtCounters,
    /// BDD manager counters (symbolic engine only).
    pub bdd: BddCounters,
    /// Parallel-runtime counters (clause sharing, ring traffic, parking).
    pub runtime: RuntimeCounters,
    /// Serving-daemon counters (job lifecycle, WAL I/O); zero outside
    /// `verdict serve`.
    pub server: ServerCounters,
    /// Self-healing counters (watchdog, hedging, quarantine); zero
    /// outside `verdict serve`.
    pub supervision: SupervisionCounters,
    /// Per-depth unroll/solve cost for bounded engines, in depth order.
    pub depths: Vec<DepthSample>,
    /// Symbolic fixpoint iterations (reachability onion rings, EU/EG
    /// iterations, Emerson–Lei passes).
    pub fixpoint_iterations: u64,
    /// States expanded by the explicit-state engine.
    pub states_visited: u64,
    /// Retry attempts consumed by the retry-escalation layer (PR 4).
    pub retries: u64,
    /// Fault-injection probes that fired during this run (PR 4 harness;
    /// zero in production runs).
    pub faults_injected: u64,
    /// Accumulated nanoseconds per [`Phase`], indexed by `Phase::index`.
    phase_ns: [u64; 4],
    trace: Option<Arc<TraceSink>>,
}

impl Stats {
    /// An empty sink labelled with the engine that will fill it.
    pub fn for_engine(engine: EngineKind) -> Stats {
        Stats {
            engine: Some(engine),
            ..Stats::default()
        }
    }

    /// Attaches a JSONL trace sink; span and depth events are mirrored to
    /// it as they are recorded.
    pub fn with_trace(mut self, trace: Option<Arc<TraceSink>>) -> Stats {
        self.trace = trace;
        self
    }

    /// The attached trace sink, if any.
    pub fn trace(&self) -> Option<&Arc<TraceSink>> {
        self.trace.as_ref()
    }

    fn engine_tag(&self) -> &'static str {
        self.engine.map_or("?", EngineKind::tag)
    }

    /// Adds a SAT solver's cumulative counters (fresh-solver runs: call
    /// once at exit).
    pub fn absorb_sat(&mut self, s: verdict_sat::Stats) {
        self.sat.add(SatCounters::from(s));
        self.runtime.clauses_exported += s.clauses_exported;
        self.runtime.clauses_imported += s.clauses_imported;
        self.runtime.imports_rejected += s.imports_rejected;
        self.runtime.import_hits += s.import_hits;
    }

    /// Adds the delta between two snapshots of a persistent SAT solver
    /// (incremental synthesis keeps solvers alive across assignments).
    pub fn absorb_sat_delta(&mut self, before: verdict_sat::Stats, after: verdict_sat::Stats) {
        let mut d = SatCounters::from(after);
        let b = SatCounters::from(before);
        d.decisions -= b.decisions;
        d.propagations -= b.propagations;
        d.conflicts -= b.conflicts;
        d.restarts -= b.restarts;
        d.learnt_clauses -= b.learnt_clauses;
        d.learnt_literals -= b.learnt_literals;
        d.deleted_clauses -= b.deleted_clauses;
        self.sat.add(d);
        self.runtime.clauses_exported += after.clauses_exported - before.clauses_exported;
        self.runtime.clauses_imported += after.clauses_imported - before.clauses_imported;
        self.runtime.imports_rejected += after.imports_rejected - before.imports_rejected;
        self.runtime.import_hits += after.import_hits - before.import_hits;
    }

    /// Absorbs an SMT solver's counters: its SAT core plus the simplex.
    pub fn absorb_smt(&mut self, smt: &verdict_smt::SmtSolver) {
        self.absorb_sat(smt.sat_stats());
        self.smt.add(SmtCounters {
            pivots: smt.simplex_pivots(),
            bound_flips: smt.simplex_bound_flips(),
            overflow_poisonings: smt.simplex_poisonings(),
        });
    }

    /// Absorbs a BDD manager's counters.
    pub fn absorb_bdd(&mut self, m: &verdict_bdd::BddManager) {
        self.bdd.add(BddCounters::from(m.stats()));
    }

    /// Records the cost of one unrolling depth and mirrors it to the
    /// trace sink.
    pub fn record_depth(&mut self, depth: usize, unroll: Duration, solve: Duration) {
        let sample = DepthSample {
            depth,
            unroll_ns: unroll.as_nanos() as u64,
            solve_ns: solve.as_nanos() as u64,
        };
        if let Some(t) = &self.trace {
            t.depth_event(self.engine_tag(), &sample);
        }
        self.depths.push(sample);
    }

    /// Closes a span: adds its elapsed time to the phase accumulator and
    /// mirrors a span event to the trace sink.
    pub fn end_span(&mut self, timer: SpanTimer) {
        let dur = timer.start.elapsed();
        self.phase_ns[timer.phase.index()] += dur.as_nanos() as u64;
        if let Some(t) = &self.trace {
            t.span_event(self.engine_tag(), timer.phase.tag(), dur);
        }
    }

    /// Accumulated time in `phase`.
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.phase_ns[phase.index()]
    }

    /// Folds another run's counters into this one (parameter sweeps sum
    /// their workers' stats). Per-depth samples are per-run artifacts and
    /// are not concatenated; phase and counter totals are summed.
    pub fn merge(&mut self, other: &Stats) {
        self.sat.add(other.sat);
        self.smt.add(other.smt);
        self.bdd.add(other.bdd);
        self.runtime.add(other.runtime);
        self.server.add(other.server);
        self.supervision.add(other.supervision);
        self.fixpoint_iterations += other.fixpoint_iterations;
        self.states_visited += other.states_visited;
        self.retries += other.retries;
        self.faults_injected += other.faults_injected;
        for (acc, v) in self.phase_ns.iter_mut().zip(other.phase_ns) {
            *acc += v;
        }
    }

    /// True iff no counter in any group is nonzero (timings ignored).
    pub fn counters_are_zero(&self) -> bool {
        self.sat.is_zero()
            && self.smt.is_zero()
            && self.bdd.is_zero()
            && self.runtime.is_zero()
            && self.server.is_zero()
            && self.supervision.is_zero()
            && self.fixpoint_iterations == 0
            && self.states_visited == 0
            && self.retries == 0
            && self.faults_injected == 0
            && self.depths.is_empty()
    }

    fn counters_body(&self) -> String {
        format!(
            concat!(
                "\"engine\":\"{}\",",
                "\"sat\":{{\"decisions\":{},\"propagations\":{},\"conflicts\":{},",
                "\"restarts\":{},\"learnt_clauses\":{},\"learnt_literals\":{},",
                "\"deleted_clauses\":{}}},",
                "\"smt\":{{\"pivots\":{},\"bound_flips\":{},\"overflow_poisonings\":{}}},",
                "\"bdd\":{{\"nodes_allocated\":{},\"ite_cache_lookups\":{},",
                "\"ite_cache_hits\":{},\"peak_live_nodes\":{},\"partitions\":{},",
                "\"sifts\":{},\"sift_nodes_before\":{},\"sift_nodes_after\":{},",
                "\"cache_clears\":{}}},",
                "\"runtime\":{{\"clauses_exported\":{},\"clauses_imported\":{},",
                "\"imports_rejected\":{},\"import_hits\":{},\"ring_messages\":{},",
                "\"ring_batches\":{},\"parks\":{},\"wakes\":{},\"spurious_wakeups\":{}}},",
                "\"server\":{{\"jobs_accepted\":{},\"jobs_rejected\":{},",
                "\"jobs_queued\":{},\"jobs_running\":{},\"jobs_completed\":{},",
                "\"jobs_recovered\":{},\"wal_appends\":{},\"wal_group_commits\":{},",
                "\"wal_fsyncs\":{},\"wal_rotations\":{}}},",
                "\"supervision\":{{\"heartbeats\":{},\"escalations\":{},",
                "\"hung_workers\":{},\"workers_respawned\":{},",
                "\"hedges_launched\":{},\"hedges_won\":{},\"hedges_lost\":{},",
                "\"hedges_wasted\":{},\"quarantine_hits\":{},\"quarantined\":{}}},",
                "\"fixpoint_iterations\":{},\"states_visited\":{},",
                "\"retries\":{},\"faults_injected\":{},\"depth_samples\":{}"
            ),
            self.engine_tag(),
            self.sat.decisions,
            self.sat.propagations,
            self.sat.conflicts,
            self.sat.restarts,
            self.sat.learnt_clauses,
            self.sat.learnt_literals,
            self.sat.deleted_clauses,
            self.smt.pivots,
            self.smt.bound_flips,
            self.smt.overflow_poisonings,
            self.bdd.nodes_allocated,
            self.bdd.ite_cache_lookups,
            self.bdd.ite_cache_hits,
            self.bdd.peak_live_nodes,
            self.bdd.partitions,
            self.bdd.sifts,
            self.bdd.sift_nodes_before,
            self.bdd.sift_nodes_after,
            self.bdd.cache_clears,
            self.runtime.clauses_exported,
            self.runtime.clauses_imported,
            self.runtime.imports_rejected,
            self.runtime.import_hits,
            self.runtime.ring_messages,
            self.runtime.ring_batches,
            self.runtime.parks,
            self.runtime.wakes,
            self.runtime.spurious_wakeups,
            self.server.jobs_accepted,
            self.server.jobs_rejected,
            self.server.jobs_queued,
            self.server.jobs_running,
            self.server.jobs_completed,
            self.server.jobs_recovered,
            self.server.wal_appends,
            self.server.wal_group_commits,
            self.server.wal_fsyncs,
            self.server.wal_rotations,
            self.supervision.heartbeats,
            self.supervision.escalations,
            self.supervision.hung_workers,
            self.supervision.workers_respawned,
            self.supervision.hedges_launched,
            self.supervision.hedges_won,
            self.supervision.hedges_lost,
            self.supervision.hedges_wasted,
            self.supervision.quarantine_hits,
            self.supervision.quarantined,
            self.fixpoint_iterations,
            self.states_visited,
            self.retries,
            self.faults_injected,
            self.depths.len(),
        )
    }

    /// The deterministic subset of the stats as JSON: counters only, no
    /// timings. Two runs with the same seed and one worker produce equal
    /// strings (the stats-determinism contract).
    pub fn counters_json(&self) -> String {
        format!(
            "{{\"schema\":{},{}}}",
            STATS_SCHEMA_VERSION,
            self.counters_body()
        )
    }

    /// The full stats block as JSON, including per-depth and per-phase
    /// timings. Carries `"schema": 2` (see [`STATS_SCHEMA_VERSION`]).
    pub fn to_json(&self) -> String {
        let depths: Vec<String> = self
            .depths
            .iter()
            .map(|d| {
                format!(
                    "{{\"depth\":{},\"unroll_us\":{},\"solve_us\":{}}}",
                    d.depth,
                    d.unroll_ns / 1_000,
                    d.solve_ns / 1_000
                )
            })
            .collect();
        format!(
            "{{\"schema\":{},{},\"depths\":[{}],\"phases\":{{\"encode_us\":{},\"solve_us\":{},\"certify_us\":{},\"replay_us\":{}}}}}",
            STATS_SCHEMA_VERSION,
            self.counters_body(),
            depths.join(","),
            self.phase_nanos(Phase::Encode) / 1_000,
            self.phase_nanos(Phase::Solve) / 1_000,
            self.phase_nanos(Phase::Certify) / 1_000,
            self.phase_nanos(Phase::Replay) / 1_000,
        )
    }
}

/// Minimal JSON string escaping for trace event payloads.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A shared JSONL event log (`--trace FILE`). One JSON object per line:
///
/// ```json
/// {"ts_us":1234,"kind":"span","engine":"bmc","phase":"solve","dur_us":87}
/// {"ts_us":1300,"kind":"depth","engine":"bmc","depth":3,"unroll_us":12,"solve_us":60}
/// {"ts_us":1400,"kind":"mark","engine":"portfolio","name":"winner","detail":"bmc"}
/// ```
///
/// `ts_us` is microseconds since the sink was created (emission time).
/// The sink is `Sync`; portfolio contenders on different threads share
/// one via `Arc` and interleave whole lines.
pub struct TraceSink {
    epoch: Instant,
    out: Mutex<Box<dyn io::Write + Send>>,
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceSink").finish_non_exhaustive()
    }
}

impl TraceSink {
    /// A sink writing JSONL to `path` (truncates an existing file).
    pub fn create(path: &Path) -> io::Result<TraceSink> {
        let f = File::create(path)?;
        Ok(TraceSink::from_writer(Box::new(BufWriter::new(f))))
    }

    /// A sink writing JSONL to an arbitrary writer.
    pub fn from_writer(w: Box<dyn io::Write + Send>) -> TraceSink {
        TraceSink {
            epoch: Instant::now(),
            out: Mutex::new(w),
        }
    }

    fn emit(&self, body: &str) {
        let ts = self.epoch.elapsed().as_micros();
        let mut g = self.out.lock().unwrap_or_else(|e| e.into_inner());
        // Trace logging is best-effort: a full disk must not fail a check.
        let _ = writeln!(g, "{{\"ts_us\":{ts},{body}}}");
    }

    fn span_event(&self, engine: &str, phase: &str, dur: Duration) {
        self.emit(&format!(
            "\"kind\":\"span\",\"engine\":\"{engine}\",\"phase\":\"{phase}\",\"dur_us\":{}",
            dur.as_micros()
        ));
    }

    fn depth_event(&self, engine: &str, d: &DepthSample) {
        self.emit(&format!(
            "\"kind\":\"depth\",\"engine\":\"{engine}\",\"depth\":{},\"unroll_us\":{},\"solve_us\":{}",
            d.depth,
            d.unroll_ns / 1_000,
            d.solve_ns / 1_000
        ));
    }

    /// Emits a free-form marker event (race winners, retry attempts, …).
    pub fn mark(&self, engine: &str, name: &str, detail: &str) {
        self.emit(&format!(
            "\"kind\":\"mark\",\"engine\":\"{}\",\"name\":\"{}\",\"detail\":\"{}\"",
            json_escape(engine),
            json_escape(name),
            json_escape(detail)
        ));
    }

    /// Flushes buffered events to the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        self.out.lock().unwrap_or_else(|e| e.into_inner()).flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_json_is_deterministic_and_versioned() {
        let mut a = Stats::for_engine(EngineKind::Bmc);
        a.sat.decisions = 41;
        a.record_depth(0, Duration::from_micros(10), Duration::from_micros(20));
        let mut b = Stats::for_engine(EngineKind::Bmc);
        b.sat.decisions = 41;
        b.record_depth(0, Duration::from_micros(99), Duration::from_micros(1));
        // Same counters, different timings: the deterministic view agrees.
        assert_eq!(a.counters_json(), b.counters_json());
        assert!(a.counters_json().starts_with("{\"schema\":2,"));
        assert!(a.to_json().contains("\"depths\":[{\"depth\":0,"));
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = Stats::default();
        a.sat.conflicts = 3;
        a.retries = 1;
        let mut b = Stats::default();
        b.sat.conflicts = 4;
        b.bdd.peak_live_nodes = 17;
        a.merge(&b);
        assert_eq!(a.sat.conflicts, 7);
        assert_eq!(a.retries, 1);
        assert_eq!(a.bdd.peak_live_nodes, 17);
    }

    #[test]
    fn span_accumulates_and_traces() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl io::Write for Shared {
            fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let sink = Arc::new(TraceSink::from_writer(Box::new(Shared(buf.clone()))));
        let mut s = Stats::for_engine(EngineKind::Bdd).with_trace(Some(sink.clone()));
        let t = SpanTimer::begin(Phase::Solve);
        s.end_span(t);
        sink.mark("bdd", "done", "it \"worked\"");
        sink.flush().unwrap();
        let log = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = log.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"span\"") && lines[0].contains("\"phase\":\"solve\""));
        assert!(lines[1].contains("\\\"worked\\\""));
        assert!(s.phase_nanos(Phase::Solve) > 0);
        assert_eq!(s.phase_nanos(Phase::Encode), 0);
    }

    #[test]
    fn absorb_sat_delta_subtracts_baseline() {
        let before = verdict_sat::Stats {
            decisions: 10,
            conflicts: 2,
            ..Default::default()
        };
        let after = verdict_sat::Stats {
            decisions: 25,
            conflicts: 7,
            ..Default::default()
        };
        let mut s = Stats::default();
        s.absorb_sat_delta(before, after);
        assert_eq!(s.sat.decisions, 15);
        assert_eq!(s.sat.conflicts, 5);
    }

    #[test]
    fn ite_hit_rate() {
        let b = BddCounters {
            ite_cache_lookups: 8,
            ite_cache_hits: 2,
            ..Default::default()
        };
        assert!((b.ite_hit_rate() - 0.25).abs() < 1e-9);
        assert_eq!(BddCounters::default().ite_hit_rate(), 0.0);
    }
}
