//! Verdicts, options, and errors shared by every engine.

use std::fmt;
use std::time::{Duration, Instant};

use verdict_ts::Trace;

/// Outcome of a model-checking run.
#[derive(Clone, Debug)]
pub enum CheckResult {
    /// The property holds (engine-specific guarantee: complete engines
    /// prove it; BMC reports `Holds` only when an inductive argument or
    /// a completeness threshold applies — otherwise it returns
    /// [`CheckResult::Unknown`]).
    Holds,
    /// The property is violated; the trace is the evidence.
    Violated(Trace),
    /// No verdict within the given resource limits.
    Unknown(UnknownReason),
}

impl CheckResult {
    /// True iff the verdict is `Holds`.
    pub fn holds(&self) -> bool {
        matches!(self, CheckResult::Holds)
    }

    /// True iff the verdict is `Violated`.
    pub fn violated(&self) -> bool {
        matches!(self, CheckResult::Violated(_))
    }

    /// The counterexample trace, if violated.
    pub fn trace(&self) -> Option<&Trace> {
        match self {
            CheckResult::Violated(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for CheckResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckResult::Holds => write!(f, "property HOLDS"),
            CheckResult::Violated(t) => {
                writeln!(f, "property VIOLATED; counterexample:")?;
                write!(f, "{t}")
            }
            CheckResult::Unknown(r) => write!(f, "UNKNOWN ({r})"),
        }
    }
}

/// Why an engine stopped without a verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnknownReason {
    /// Unrolling reached the depth bound without a violation or proof.
    DepthBound,
    /// Wall-clock timeout.
    Timeout,
    /// Conflict/step budget exhausted.
    EffortBound,
}

impl fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnknownReason::DepthBound => write!(f, "depth bound reached"),
            UnknownReason::Timeout => write!(f, "timeout"),
            UnknownReason::EffortBound => write!(f, "effort budget exhausted"),
        }
    }
}

/// An error that prevents checking at all (ill-typed model, wrong engine
/// for the model's sorts, …) — as opposed to a resource-limited
/// [`CheckResult::Unknown`].
#[derive(Clone, Debug)]
pub struct McError(pub String);

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "model checking error: {}", self.0)
    }
}

impl std::error::Error for McError {}

impl From<verdict_ts::TypeError> for McError {
    fn from(e: verdict_ts::TypeError) -> McError {
        McError(e.to_string())
    }
}

/// Resource limits and knobs for a checking run.
#[derive(Clone, Copy, Debug)]
pub struct CheckOptions {
    /// Maximum BMC unrolling depth (transitions).
    pub max_depth: usize,
    /// Wall-clock budget.
    pub timeout: Option<Duration>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            max_depth: 64,
            timeout: None,
        }
    }
}

impl CheckOptions {
    /// Options with a depth bound.
    pub fn with_depth(max_depth: usize) -> CheckOptions {
        CheckOptions {
            max_depth,
            ..CheckOptions::default()
        }
    }

    /// Adds a wall-clock budget.
    pub fn with_timeout(mut self, timeout: Duration) -> CheckOptions {
        self.timeout = Some(timeout);
        self
    }

    /// Returns self with `max_depth` replaced by `depth` **iff** it still
    /// holds the default value — used by CLIs whose subcommands have
    /// different depth defaults.
    pub fn max_depth_defaulted(mut self, depth: usize) -> CheckOptions {
        if self.max_depth == CheckOptions::default().max_depth {
            self.max_depth = depth;
        }
        self
    }

    /// The absolute deadline implied by the timeout, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.timeout.map(|t| Instant::now() + t)
    }
}

/// True if the deadline has passed.
pub(crate) fn past(deadline: Option<Instant>) -> bool {
    matches!(deadline, Some(d) if Instant::now() >= d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_accessors() {
        assert!(CheckResult::Holds.holds());
        assert!(!CheckResult::Holds.violated());
        let r = CheckResult::Unknown(UnknownReason::Timeout);
        assert!(!r.holds() && !r.violated());
        assert!(r.trace().is_none());
    }

    #[test]
    fn display() {
        assert_eq!(CheckResult::Holds.to_string(), "property HOLDS");
        assert!(CheckResult::Unknown(UnknownReason::DepthBound)
            .to_string()
            .contains("depth"));
    }

    #[test]
    fn options_builder() {
        let o = CheckOptions::with_depth(10).with_timeout(Duration::from_secs(1));
        assert_eq!(o.max_depth, 10);
        assert!(o.deadline().is_some());
        assert!(!past(o.deadline()));
        assert!(past(Some(Instant::now())));
    }
}
