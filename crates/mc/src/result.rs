//! Verdicts, options, and errors shared by every engine.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use verdict_journal::fault;
use verdict_ring::Heartbeat;
use verdict_sat::Limits;
use verdict_ts::Trace;

use crate::retry::RetryPolicy;
use crate::stats::TraceSink;

/// Outcome of a model-checking run. `PartialEq` compares verdicts
/// structurally (traces included) — what resume tests use to show a
/// recovered run is identical to an uninterrupted one.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckResult {
    /// The property holds (engine-specific guarantee: complete engines
    /// prove it; BMC reports `Holds` only when an inductive argument or
    /// a completeness threshold applies — otherwise it returns
    /// [`CheckResult::Unknown`]).
    Holds,
    /// The property is violated; the trace is the evidence.
    Violated(Trace),
    /// No verdict within the given resource limits.
    Unknown(UnknownReason),
}

impl CheckResult {
    /// True iff the verdict is `Holds`.
    pub fn holds(&self) -> bool {
        matches!(self, CheckResult::Holds)
    }

    /// True iff the verdict is `Violated`.
    pub fn violated(&self) -> bool {
        matches!(self, CheckResult::Violated(_))
    }

    /// The counterexample trace, if violated.
    pub fn trace(&self) -> Option<&Trace> {
        match self {
            CheckResult::Violated(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for CheckResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckResult::Holds => write!(f, "property HOLDS"),
            CheckResult::Violated(t) => {
                writeln!(f, "property VIOLATED; counterexample:")?;
                write!(f, "{t}")
            }
            CheckResult::Unknown(r) => write!(f, "UNKNOWN ({r})"),
        }
    }
}

/// Why an engine stopped without a verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnknownReason {
    /// Unrolling reached the depth bound without a violation or proof.
    DepthBound,
    /// Wall-clock timeout.
    Timeout,
    /// Conflict/step budget exhausted.
    EffortBound,
    /// Another worker raised the shared stop flag (portfolio racing or
    /// early-exit synthesis) and this engine exited cooperatively.
    Cancelled,
    /// The engine produced a verdict whose certificate (counterexample
    /// replay, inductive-invariant re-check, or UNSAT proof) failed
    /// independent validation — the verdict is withheld rather than
    /// reported unverified.
    CertificateRejected,
    /// The engine panicked and the panic was contained at the isolation
    /// boundary (portfolio contender thread or synthesis worker).
    EngineFailure,
    /// A memory-shaped resource ceiling was hit: SAT clause count, BDD
    /// node count, or exact-rational overflow in the simplex.
    ResourceExhausted,
    /// A supervision watchdog declared the worker running this check
    /// hung (stopped polling its budget past `deadline + grace`) and
    /// escalated: the verdict is honest-Unknown, not a logical limit.
    HungWorker,
}

impl UnknownReason {
    /// Stable lowercase tag used in JSON output and journal records.
    pub fn tag(self) -> &'static str {
        match self {
            UnknownReason::DepthBound => "depth-bound",
            UnknownReason::Timeout => "timeout",
            UnknownReason::EffortBound => "effort-bound",
            UnknownReason::Cancelled => "cancelled",
            UnknownReason::CertificateRejected => "certificate-rejected",
            UnknownReason::EngineFailure => "engine-failure",
            UnknownReason::ResourceExhausted => "resource-exhausted",
            UnknownReason::HungWorker => "hung-worker",
        }
    }

    /// Parses a tag produced by [`UnknownReason::tag`].
    pub fn from_tag(s: &str) -> Option<UnknownReason> {
        match s {
            "depth-bound" => Some(UnknownReason::DepthBound),
            "timeout" => Some(UnknownReason::Timeout),
            "effort-bound" => Some(UnknownReason::EffortBound),
            "cancelled" => Some(UnknownReason::Cancelled),
            "certificate-rejected" => Some(UnknownReason::CertificateRejected),
            "engine-failure" => Some(UnknownReason::EngineFailure),
            "resource-exhausted" => Some(UnknownReason::ResourceExhausted),
            "hung-worker" => Some(UnknownReason::HungWorker),
            _ => None,
        }
    }

    /// Whether this reason signals an *infrastructure* failure (engine
    /// death, resource ceiling, deadline) rather than an honest logical
    /// limit (depth/effort bound) — infrastructure failures are worth
    /// retrying with a bigger budget, logical limits are not.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            UnknownReason::EngineFailure
                | UnknownReason::ResourceExhausted
                | UnknownReason::Timeout
                | UnknownReason::HungWorker
        )
    }
}

impl fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnknownReason::DepthBound => write!(f, "depth bound reached"),
            UnknownReason::Timeout => write!(f, "timeout"),
            UnknownReason::EffortBound => write!(f, "effort budget exhausted"),
            UnknownReason::Cancelled => write!(f, "cancelled"),
            UnknownReason::CertificateRejected => {
                write!(f, "certificate rejected by independent check")
            }
            UnknownReason::EngineFailure => {
                write!(f, "engine failure (panic contained)")
            }
            UnknownReason::ResourceExhausted => {
                write!(f, "resource budget exhausted")
            }
            UnknownReason::HungWorker => {
                write!(f, "worker hung (watchdog escalation)")
            }
        }
    }
}

/// The supervision handle a watchdog shares with one engine run: a
/// per-worker [`Heartbeat`] the run stamps on every budget poll (proof
/// of liveness by *change*), and a poison flag the watchdog raises as
/// its second escalation step when raising the stop flag did not get
/// the worker back.
///
/// Poison differs from the stop flag in what the verdict says: a
/// stop-flag exit reports [`UnknownReason::Cancelled`] (someone chose
/// to cancel), a poisoned exit reports [`UnknownReason::HungWorker`]
/// (the watchdog declared the run wedged). Both are cooperative — a
/// thread that never polls its budget responds to neither, which is
/// exactly what the heartbeat exposes.
#[derive(Debug, Default)]
pub struct Supervision {
    heartbeat: Arc<Heartbeat>,
    poison: AtomicBool,
}

impl Supervision {
    /// A handle stamping `heartbeat` — typically the supervised worker
    /// slot's cell, shared across every job that slot runs.
    pub fn new(heartbeat: Arc<Heartbeat>) -> Supervision {
        Supervision {
            heartbeat,
            poison: AtomicBool::new(false),
        }
    }

    /// Stamps one beat on the worker's heartbeat cell.
    #[inline]
    pub fn beat(&self) {
        self.heartbeat.beat();
    }

    /// The heartbeat cell this handle stamps.
    pub fn heartbeat(&self) -> &Arc<Heartbeat> {
        &self.heartbeat
    }

    /// Watchdog escalation step two: make every subsequent budget poll
    /// in this run report [`UnknownReason::HungWorker`].
    pub fn poison(&self) {
        self.poison.store(true, Ordering::SeqCst);
    }

    /// Whether the watchdog has poisoned this run.
    #[inline]
    pub fn poisoned(&self) -> bool {
        self.poison.load(Ordering::Relaxed)
    }
}

/// An error that prevents checking at all (ill-typed model, wrong engine
/// for the model's sorts, …) — as opposed to a resource-limited
/// [`CheckResult::Unknown`].
#[derive(Clone, Debug)]
pub struct McError(pub String);

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "model checking error: {}", self.0)
    }
}

impl std::error::Error for McError {}

impl From<verdict_ts::TypeError> for McError {
    fn from(e: verdict_ts::TypeError) -> McError {
        McError(e.to_string())
    }
}

/// Resource limits and knobs for a checking run.
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Maximum BMC unrolling depth (transitions).
    pub max_depth: usize,
    /// Wall-clock budget.
    pub timeout: Option<Duration>,
    /// Cooperative cancellation: engines exit with
    /// [`UnknownReason::Cancelled`] soon after this shared flag is raised
    /// by another thread. `None` = never cancelled.
    pub stop: Option<Arc<AtomicBool>>,
    /// Worker threads for parallel operations (portfolio racing already
    /// uses one thread per engine; parameter synthesis shards assignments
    /// over this many workers). `None` = `std::thread::available_parallelism()`.
    pub jobs: Option<usize>,
    /// Certify verdicts before reporting: counterexample traces are
    /// replayed through the independent reference interpreter
    /// (`verdict_ts::replay`) and k-induction/BDD `Holds` verdicts are
    /// re-checked with fresh SAT queries. A failed check demotes the
    /// verdict to [`UnknownReason::CertificateRejected`].
    pub certify: bool,
    /// SAT clause-count ceiling (original + learnt, a memory backstop):
    /// solvers give up `Unknown` ([`UnknownReason::ResourceExhausted`])
    /// once the clause database grows past this. `None` = unbounded.
    pub max_clauses: Option<usize>,
    /// BDD node-count ceiling: symbolic fixpoints give up `Unknown`
    /// ([`UnknownReason::ResourceExhausted`]) once the manager holds more
    /// nodes than this. `None` = unbounded.
    pub max_bdd_nodes: Option<usize>,
    /// Parameter synthesis only: pin assignments with assumption literals
    /// over one shared unrolling (one SAT solver per worker survives the
    /// whole sweep), instead of cloning and re-encoding the system per
    /// assignment. `None` = auto: on where the incremental path exists
    /// (invariant properties under the k-induction synthesis engine),
    /// clone-per-assignment everywhere else. `Some(false)` forces the
    /// clone path even there.
    pub incremental: Option<bool>,
    /// Retry failed checks with escalating budgets: a verdict of
    /// `Unknown` with a [retryable](UnknownReason::retryable) reason is
    /// re-run up to the policy's attempt cap, each time with the
    /// deadline/clause/node ceilings multiplied and a jittered backoff
    /// pause in between. `None` = one attempt, no retries.
    pub retry: Option<RetryPolicy>,
    /// Structured trace sink: engines append JSONL span/depth/mark events
    /// here as they run (see [`TraceSink`]). Shared — clones of the
    /// options write to the same sink. `None` = no tracing.
    pub trace: Option<Arc<TraceSink>>,
    /// Allow learned-clause sharing between parallel solvers. Only takes
    /// effect where a sharing hub gets installed (portfolio races and
    /// incremental synthesis sweeps with ≥ 2 workers); single-solver runs
    /// are unaffected, so jobs = 1 stats stay bit-identical. Soundness
    /// does not depend on this flag: the solver-side prefix guard rejects
    /// any clause not entailed by the importer's own input
    /// (`verdict_sat::share`), and `certify` re-proves with fresh
    /// import-free solvers either way.
    pub sharing: bool,
    /// The clause-sharing hub solvers attach to, installed internally by
    /// the portfolio/synthesis layers when `sharing` is on (callers can
    /// also pre-install one to make sequential runs exchange clauses —
    /// see the clause-sharing tests). Engines that unroll the same CNF
    /// prefix (BMC and the k-induction base case) take one endpoint each;
    /// `None` = no sharing.
    pub share_hub: Option<Arc<verdict_sat::ClauseHub>>,
    /// Symbolic engine: use the partitioned transition relation (one
    /// clustered update BDD per group of state variables, images by
    /// chained `and_exists` with early quantification) instead of one
    /// monolithic `trans` BDD. On by default — the monolithic relation is
    /// kept as a baseline/debugging path (`--bdd-monolithic`).
    pub bdd_partitioned: bool,
    /// Symbolic engine: allow dynamic variable reordering (block sifting)
    /// when the manager's live-node count crosses the growth threshold.
    /// On by default; `--bdd-no-sift` disables it.
    pub bdd_sift: bool,
    /// Symbolic engine: live-node count that triggers the first sift.
    /// `None` = adaptive (a multiple of the post-encoding node count,
    /// doubling after each sift). A fixed value is mostly a test hook for
    /// forcing sifts on small models.
    pub bdd_sift_threshold: Option<usize>,
    /// Watchdog supervision handle: every budget poll stamps its
    /// heartbeat, and a poisoned handle makes polls report
    /// [`UnknownReason::HungWorker`]. `None` = unsupervised (the
    /// default everywhere outside the daemon's worker pool).
    pub supervision: Option<Arc<Supervision>>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            max_depth: 64,
            timeout: None,
            stop: None,
            jobs: None,
            certify: false,
            max_clauses: None,
            max_bdd_nodes: None,
            incremental: None,
            retry: None,
            trace: None,
            sharing: true,
            share_hub: None,
            bdd_partitioned: true,
            bdd_sift: true,
            bdd_sift_threshold: None,
            supervision: None,
        }
    }
}

impl CheckOptions {
    /// A fluent builder over every knob; finish with
    /// [`CheckOptionsBuilder::build`].
    ///
    /// ```
    /// use std::time::Duration;
    /// use verdict_mc::CheckOptions;
    ///
    /// let opts = CheckOptions::builder()
    ///     .max_depth(32)
    ///     .timeout(Duration::from_secs(5))
    ///     .certify(true)
    ///     .build();
    /// assert_eq!(opts.max_depth, 32);
    /// assert!(opts.certify);
    /// ```
    pub fn builder() -> CheckOptionsBuilder {
        CheckOptionsBuilder {
            opts: CheckOptions::default(),
        }
    }

    /// Options with a depth bound.
    pub fn with_depth(max_depth: usize) -> CheckOptions {
        CheckOptions {
            max_depth,
            ..CheckOptions::default()
        }
    }

    /// Adds a wall-clock budget.
    pub fn with_timeout(mut self, timeout: Duration) -> CheckOptions {
        self.timeout = Some(timeout);
        self
    }

    /// Attaches a shared cancellation flag.
    pub fn with_stop(mut self, stop: Arc<AtomicBool>) -> CheckOptions {
        self.stop = Some(stop);
        self
    }

    /// Sets the worker-thread count for parallel operations.
    pub fn with_jobs(mut self, jobs: usize) -> CheckOptions {
        self.jobs = Some(jobs);
        self
    }

    /// Enables verdict certification (trace replay + proof re-checking).
    pub fn with_certify(mut self) -> CheckOptions {
        self.certify = true;
        self
    }

    /// Caps the SAT clause database (memory backstop).
    pub fn with_max_clauses(mut self, max: usize) -> CheckOptions {
        self.max_clauses = Some(max);
        self
    }

    /// Caps the BDD node count (memory backstop).
    pub fn with_max_bdd_nodes(mut self, max: usize) -> CheckOptions {
        self.max_bdd_nodes = Some(max);
        self
    }

    /// Forces the incremental (assumption-pinned) synthesis sweep on or
    /// off instead of the auto default.
    pub fn with_incremental(mut self, on: bool) -> CheckOptions {
        self.incremental = Some(on);
        self
    }

    /// Attaches a retry policy for infrastructure failures.
    pub fn with_retry(mut self, policy: RetryPolicy) -> CheckOptions {
        self.retry = Some(policy);
        self
    }

    /// Attaches a shared structured-trace sink.
    pub fn with_trace(mut self, sink: Arc<TraceSink>) -> CheckOptions {
        self.trace = Some(sink);
        self
    }

    /// Enables or disables learned-clause sharing between parallel
    /// solvers (on by default; only effective where a hub is installed).
    pub fn with_sharing(mut self, on: bool) -> CheckOptions {
        self.sharing = on;
        self
    }

    /// Installs a clause-sharing hub for the engines this run spawns.
    pub fn with_share_hub(mut self, hub: Arc<verdict_sat::ClauseHub>) -> CheckOptions {
        self.share_hub = Some(hub);
        self
    }

    /// Selects the partitioned (true, default) or monolithic (false)
    /// transition relation in the symbolic engine.
    pub fn with_bdd_partitioned(mut self, on: bool) -> CheckOptions {
        self.bdd_partitioned = on;
        self
    }

    /// Enables or disables dynamic variable reordering (sifting) in the
    /// symbolic engine.
    pub fn with_bdd_sift(mut self, on: bool) -> CheckOptions {
        self.bdd_sift = on;
        self
    }

    /// Fixes the live-node count that triggers sifting instead of the
    /// adaptive default.
    pub fn with_bdd_sift_threshold(mut self, nodes: usize) -> CheckOptions {
        self.bdd_sift_threshold = Some(nodes);
        self
    }

    /// Attaches a watchdog supervision handle (heartbeat + poison flag).
    pub fn with_supervision(mut self, sup: Arc<Supervision>) -> CheckOptions {
        self.supervision = Some(sup);
        self
    }

    /// Attaches a sharing endpoint to `solver` if a hub is installed,
    /// sharing is enabled, and the hub still has endpoints to give out.
    /// Call before the solver sees its first clause — attachment on a
    /// non-empty solver is refused by `verdict_sat`.
    pub(crate) fn attach_sharing(&self, solver: &mut verdict_sat::Solver) {
        if !self.sharing {
            return;
        }
        if let Some(hub) = &self.share_hub {
            if let Some(ep) = hub.endpoint() {
                solver.attach_sharing(ep);
            }
        }
    }

    /// Returns self with `max_depth` replaced by `depth` **iff** it still
    /// holds the default value — used by CLIs whose subcommands have
    /// different depth defaults.
    pub fn max_depth_defaulted(mut self, depth: usize) -> CheckOptions {
        if self.max_depth == CheckOptions::default().max_depth {
            self.max_depth = depth;
        }
        self
    }

    /// The absolute deadline implied by the timeout, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.timeout.map(|t| Instant::now() + t)
    }

    /// The effective worker count for parallel operations.
    pub fn effective_jobs(&self) -> usize {
        self.jobs
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
            .max(1)
    }
}

/// Fluent builder for [`CheckOptions`]; see [`CheckOptions::builder`].
#[derive(Clone, Debug)]
pub struct CheckOptionsBuilder {
    opts: CheckOptions,
}

impl CheckOptionsBuilder {
    /// Sets the maximum unrolling depth.
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.opts.max_depth = depth;
        self
    }

    /// Sets the wall-clock budget.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.opts.timeout = Some(timeout);
        self
    }

    /// Attaches a shared cancellation flag.
    pub fn stop(mut self, stop: Arc<AtomicBool>) -> Self {
        self.opts.stop = Some(stop);
        self
    }

    /// Sets the worker-thread count for parallel operations.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.opts.jobs = Some(jobs);
        self
    }

    /// Enables or disables verdict certification.
    pub fn certify(mut self, on: bool) -> Self {
        self.opts.certify = on;
        self
    }

    /// Caps the SAT clause database (memory backstop).
    pub fn max_clauses(mut self, max: usize) -> Self {
        self.opts.max_clauses = Some(max);
        self
    }

    /// Caps the BDD node count (memory backstop).
    pub fn max_bdd_nodes(mut self, max: usize) -> Self {
        self.opts.max_bdd_nodes = Some(max);
        self
    }

    /// Forces the incremental synthesis sweep on or off.
    pub fn incremental(mut self, on: bool) -> Self {
        self.opts.incremental = Some(on);
        self
    }

    /// Attaches a retry policy for infrastructure failures.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.opts.retry = Some(policy);
        self
    }

    /// Attaches a shared structured-trace sink.
    pub fn trace(mut self, sink: Arc<TraceSink>) -> Self {
        self.opts.trace = Some(sink);
        self
    }

    /// Enables or disables learned-clause sharing between parallel
    /// solvers.
    pub fn sharing(mut self, on: bool) -> Self {
        self.opts.sharing = on;
        self
    }

    /// Selects the partitioned (true, default) or monolithic (false)
    /// symbolic transition relation.
    pub fn bdd_partitioned(mut self, on: bool) -> Self {
        self.opts.bdd_partitioned = on;
        self
    }

    /// Enables or disables BDD variable sifting.
    pub fn bdd_sift(mut self, on: bool) -> Self {
        self.opts.bdd_sift = on;
        self
    }

    /// Fixes the sift trigger threshold (live nodes).
    pub fn bdd_sift_threshold(mut self, nodes: usize) -> Self {
        self.opts.bdd_sift_threshold = Some(nodes);
        self
    }

    /// Attaches a watchdog supervision handle (heartbeat + poison flag).
    pub fn supervision(mut self, sup: Arc<Supervision>) -> Self {
        self.opts.supervision = Some(sup);
        self
    }

    /// Finalizes the options.
    pub fn build(self) -> CheckOptions {
        self.opts
    }
}

/// The wall-clock + cancellation budget of one engine run, snapshotted
/// from [`CheckOptions`] at entry so the deadline is fixed once.
///
/// Engines poll [`Budget::exceeded`] in their outer loops and pass
/// [`Budget::limits`] into SAT/SMT solve calls; when a solver returns
/// `Unknown`, [`Budget::unknown_reason`] distinguishes a raised stop flag
/// ([`UnknownReason::Cancelled`]) from an expired deadline
/// ([`UnknownReason::Timeout`]).
#[derive(Clone, Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    stop: Option<Arc<AtomicBool>>,
    max_clauses: Option<usize>,
    max_bdd_nodes: Option<usize>,
    /// Set by [`Budget::check_nodes`] when the BDD node ceiling is hit,
    /// so [`Budget::unknown_reason`] can report `ResourceExhausted` from
    /// fixpoint helpers that only return `None`. Shared across clones of
    /// the budget.
    node_overflow: Arc<AtomicBool>,
    /// Watchdog handle: every poll stamps its heartbeat; a poisoned
    /// handle turns polls into [`UnknownReason::HungWorker`].
    supervision: Option<Arc<Supervision>>,
}

impl Budget {
    /// Snapshots the budget (deadline + stop flag + resource ceilings)
    /// of `opts`.
    pub fn new(opts: &CheckOptions) -> Budget {
        Budget {
            deadline: opts.deadline(),
            stop: opts.stop.clone(),
            max_clauses: opts.max_clauses,
            max_bdd_nodes: opts.max_bdd_nodes,
            node_overflow: Arc::new(AtomicBool::new(false)),
            supervision: opts.supervision.clone(),
        }
    }

    /// True if the stop flag has been raised.
    pub fn cancelled(&self) -> bool {
        self.stop
            .as_ref()
            .is_some_and(|s| s.load(Ordering::Relaxed))
    }

    /// True if the watchdog has poisoned this run.
    fn poisoned(&self) -> bool {
        self.supervision.as_ref().is_some_and(|s| s.poisoned())
    }

    /// The reason to abort now, if any. Each poll stamps the worker's
    /// heartbeat — liveness is proven by the act of asking. Watchdog
    /// poisoning wins over cancellation (the stop flag was raised by the
    /// same escalation one step earlier, and `HungWorker` is the honest
    /// label); cancellation wins over timeout.
    pub fn exceeded(&self) -> Option<UnknownReason> {
        if let Some(sup) = &self.supervision {
            sup.beat();
            if sup.poisoned() {
                return Some(UnknownReason::HungWorker);
            }
        }
        if self.cancelled() {
            return Some(UnknownReason::Cancelled);
        }
        if matches!(self.deadline, Some(d) if Instant::now() >= d) {
            return Some(UnknownReason::Timeout);
        }
        // Fault-injection probe at site `mc.budget`: `Exhaust` makes the
        // budget report a spent resource ceiling (and marks the overflow
        // flag so solver-level `Unknown`s get the same reason).
        if fault::probe("mc.budget") == Some(fault::FaultKind::Exhaust) {
            self.node_overflow.store(true, Ordering::Relaxed);
            return Some(UnknownReason::ResourceExhausted);
        }
        None
    }

    /// Like [`Budget::exceeded`], additionally enforcing the BDD
    /// node-count ceiling against the manager's current `node_count`.
    pub fn check_nodes(&self, node_count: usize) -> Option<UnknownReason> {
        if let Some(reason) = self.exceeded() {
            return Some(reason);
        }
        if matches!(self.max_bdd_nodes, Some(max) if node_count > max) {
            self.node_overflow.store(true, Ordering::Relaxed);
            return Some(UnknownReason::ResourceExhausted);
        }
        None
    }

    /// Why a solver just gave up `Unknown` under `self.limits()`.
    pub fn unknown_reason(&self) -> UnknownReason {
        if self.poisoned() {
            UnknownReason::HungWorker
        } else if self.cancelled() {
            UnknownReason::Cancelled
        } else if self.node_overflow.load(Ordering::Relaxed) || fault::exhaust_fired() {
            UnknownReason::ResourceExhausted
        } else {
            UnknownReason::Timeout
        }
    }

    /// Why a SAT/SMT solver holding `num_clauses` clauses gave up
    /// `Unknown`: the clause ceiling is distinguished from
    /// cancellation/timeout.
    pub fn unknown_reason_sat(&self, num_clauses: usize) -> UnknownReason {
        if self.poisoned() {
            UnknownReason::HungWorker
        } else if self.cancelled() {
            UnknownReason::Cancelled
        } else if matches!(self.max_clauses, Some(max) if num_clauses >= max)
            || fault::exhaust_fired()
        {
            UnknownReason::ResourceExhausted
        } else {
            UnknownReason::Timeout
        }
    }

    /// Solver limits carrying this budget's deadline, stop flag, and
    /// clause ceiling.
    pub fn limits(&self) -> Limits {
        Limits {
            max_conflicts: None,
            deadline: self.deadline,
            stop: self.stop.clone(),
            max_clauses: self.max_clauses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_accessors() {
        assert!(CheckResult::Holds.holds());
        assert!(!CheckResult::Holds.violated());
        let r = CheckResult::Unknown(UnknownReason::Timeout);
        assert!(!r.holds() && !r.violated());
        assert!(r.trace().is_none());
    }

    #[test]
    fn display() {
        assert_eq!(CheckResult::Holds.to_string(), "property HOLDS");
        assert!(CheckResult::Unknown(UnknownReason::DepthBound)
            .to_string()
            .contains("depth"));
    }

    #[test]
    fn options_builder() {
        let o = CheckOptions::with_depth(10).with_timeout(Duration::from_secs(1));
        assert_eq!(o.max_depth, 10);
        assert!(o.deadline().is_some());
        assert!(o.effective_jobs() >= 1);
        assert_eq!(o.with_jobs(3).effective_jobs(), 3);
    }

    #[test]
    fn fluent_builder_mirrors_with_methods() {
        let built = CheckOptions::builder()
            .max_depth(12)
            .timeout(Duration::from_secs(3))
            .jobs(2)
            .certify(true)
            .max_clauses(1000)
            .max_bdd_nodes(2000)
            .incremental(false)
            .build();
        assert_eq!(built.max_depth, 12);
        assert_eq!(built.timeout, Some(Duration::from_secs(3)));
        assert_eq!(built.jobs, Some(2));
        assert!(built.certify);
        assert_eq!(built.max_clauses, Some(1000));
        assert_eq!(built.max_bdd_nodes, Some(2000));
        assert_eq!(built.incremental, Some(false));
        assert!(built.retry.is_none() && built.trace.is_none());
    }

    #[test]
    fn budget_distinguishes_cancel_from_timeout() {
        let stop = Arc::new(AtomicBool::new(false));
        let opts = CheckOptions::default().with_stop(stop.clone());
        let budget = Budget::new(&opts);
        assert!(budget.exceeded().is_none());
        stop.store(true, Ordering::Relaxed);
        assert_eq!(budget.exceeded(), Some(UnknownReason::Cancelled));
        assert_eq!(budget.unknown_reason(), UnknownReason::Cancelled);
        assert!(budget.limits().interrupted());

        let timed = Budget::new(&CheckOptions::default().with_timeout(Duration::ZERO));
        assert_eq!(timed.exceeded(), Some(UnknownReason::Timeout));
        assert_eq!(timed.unknown_reason(), UnknownReason::Timeout);
    }
}
