//! k-induction: proving invariants on finite systems.
//!
//! Combines the BMC base case with the strengthened induction step of
//! Sheeran–Singh–Stålmarck: if no counterexample of length ≤ k exists
//! (base) and every *simple* path of k+1 states that satisfies `p` in its
//! first k states satisfies `p` in the last (step), then `G p` holds.
//! The simple-path constraint makes the method complete for finite
//! systems: k eventually exceeds the recurrence diameter.

//!
//! ```
//! use verdict_mc::prelude::*;
//! use verdict_ts::{Expr, System};
//!
//! let mut sys = System::new("latch");
//! let x = sys.bool_var("x");
//! sys.add_init(Expr::var(x));
//! sys.add_trans(Expr::var(x).implies(Expr::next(x))); // x latches
//! let r = engine(EngineKind::KInduction)
//!     .check_invariant(&sys, &Expr::var(x), &CheckOptions::default(),
//!                      &mut Stats::default())
//!     .unwrap();
//! assert!(r.holds());
//! ```
use std::time::Instant;

use verdict_sat::Solver;
use verdict_ts::{Expr, System, Trace, Unroller};

use crate::result::{Budget, CheckOptions, CheckResult, McError, UnknownReason};
use crate::stats::{Phase, SpanTimer, Stats};

/// Trait-dispatch entry point for k-induction — proves or refutes the
/// invariant `G p` (see [`crate::engine::engine`]); per-depth samples
/// cover both the base-case and induction-step queries at each k.
///
/// Returns `Holds` (proved by induction), `Violated` with a trace (found
/// by the embedded base case), or `Unknown` on resource limits.
pub(crate) fn run_invariant(
    sys: &System,
    p: &Expr,
    opts: &CheckOptions,
    stats: &mut Stats,
) -> Result<CheckResult, McError> {
    let mut base_solver = Solver::new();
    let mut ind_solver = Solver::new();
    // Only the base case shares: its init-anchored unrolling emits the
    // same clause stream as BMC's, so races exchange clauses there. The
    // induction solver's free unrolling has a foreign prefix — anything
    // it exported would just be rejected by the peers' guards.
    opts.attach_sharing(&mut base_solver);
    let res = induction_loop(sys, p, opts, stats, &mut base_solver, &mut ind_solver);
    stats.absorb_sat(base_solver.stats());
    stats.absorb_sat(ind_solver.stats());
    res
}

fn induction_loop(
    sys: &System,
    p: &Expr,
    opts: &CheckOptions,
    stats: &mut Stats,
    base_solver: &mut Solver,
    ind_solver: &mut Solver,
) -> Result<CheckResult, McError> {
    let budget = Budget::new(opts);
    let bad = p.clone().not();

    // Base-case engine: init-anchored unrolling.
    let mut base_unr = Unroller::new(sys)?;

    // Induction engine: free (any-state) unrolling with simple paths.
    let mut ind_unr = Unroller::new_free(sys)?;

    for k in 0..=opts.max_depth {
        if let Some(reason) = budget.exceeded() {
            return Ok(CheckResult::Unknown(reason));
        }
        // ---- base case: violation at exactly step k?
        let encode = SpanTimer::begin(Phase::Encode);
        let t_unroll = Instant::now();
        base_unr.extend_to(k);
        let bad_k = base_unr.lower_bool(&bad, k);
        let bad_lit = base_unr.literal_for(&bad_k);
        for c in base_unr.drain_clauses() {
            base_solver.add_clause(c);
        }
        let mut unroll_time = t_unroll.elapsed();
        stats.end_span(encode);
        let solve = SpanTimer::begin(Phase::Solve);
        let t_solve = Instant::now();
        let base_outcome = base_solver.solve_limited(&[bad_lit], budget.limits());
        let mut solve_time = t_solve.elapsed();
        stats.end_span(solve);
        match base_outcome {
            verdict_sat::SolveResult::Sat(model) => {
                let states = base_unr.decode_trace(k + 1, &|v| model.value(v));
                let trace = Trace::new(sys, states, None);
                stats.record_depth(k, unroll_time, solve_time);
                return Ok(if opts.certify {
                    let replay = SpanTimer::begin(Phase::Replay);
                    let gated = crate::certify::gate_invariant_cex(sys, p, trace);
                    stats.end_span(replay);
                    gated
                } else {
                    CheckResult::Violated(trace)
                });
            }
            verdict_sat::SolveResult::Unsat => {
                base_solver.add_clause([!bad_lit]);
            }
            verdict_sat::SolveResult::Unknown => {
                stats.record_depth(k, unroll_time, solve_time);
                return Ok(CheckResult::Unknown(
                    budget.unknown_reason_sat(base_solver.num_clauses()),
                ));
            }
        }

        // ---- induction step: p@0..k-1 ∧ simple-path ∧ ¬p@k unsat?
        let encode = SpanTimer::begin(Phase::Encode);
        let t_unroll = Instant::now();
        ind_unr.extend_to(k);
        if k > 0 {
            // p holds at the newly-previous step on induction paths.
            ind_unr.assert_expr(p, k - 1);
            // Simple path: the new state differs from all earlier ones.
            for i in 0..k {
                let diff = ind_unr.states_differ(i, k);
                ind_unr.assert_formula(&diff);
            }
        }
        let ind_bad = ind_unr.lower_bool(&bad, k);
        let ind_bad_lit = ind_unr.literal_for(&ind_bad);
        for c in ind_unr.drain_clauses() {
            ind_solver.add_clause(c);
        }
        unroll_time += t_unroll.elapsed();
        stats.end_span(encode);
        let solve = SpanTimer::begin(Phase::Solve);
        let t_solve = Instant::now();
        let ind_outcome = ind_solver.solve_limited(&[ind_bad_lit], budget.limits());
        solve_time += t_solve.elapsed();
        stats.end_span(solve);
        stats.record_depth(k, unroll_time, solve_time);
        match ind_outcome {
            verdict_sat::SolveResult::Sat(_) => {
                // Induction failed at this k; deepen.
            }
            verdict_sat::SolveResult::Unsat => {
                // Base (≤ k) + step (k) ⇒ G p. In certify mode the proven
                // depth is re-checked from scratch before it is trusted.
                return Ok(if opts.certify {
                    let certify = SpanTimer::begin(Phase::Certify);
                    let gated = crate::certify::gate_holds(
                        "k-induction",
                        crate::certify::recheck_induction(sys, p, k, &budget),
                    );
                    stats.end_span(certify);
                    gated
                } else {
                    CheckResult::Holds
                });
            }
            verdict_sat::SolveResult::Unknown => {
                return Ok(CheckResult::Unknown(
                    budget.unknown_reason_sat(ind_solver.num_clauses()),
                ));
            }
        }
    }
    Ok(CheckResult::Unknown(UnknownReason::DepthBound))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prove_invariant_t(
        sys: &System,
        p: &Expr,
        opts: &CheckOptions,
    ) -> Result<CheckResult, McError> {
        run_invariant(sys, p, opts, &mut Stats::default())
    }

    fn counter(limit: i64) -> (System, verdict_ts::VarId) {
        let mut sys = System::new("counter");
        let n = sys.int_var("n", 0, limit);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        sys.add_trans(Expr::next(n).eq(Expr::ite(
            Expr::var(n).lt(Expr::int(limit)),
            Expr::var(n).add(Expr::int(1)),
            Expr::var(n),
        )));
        (sys, n)
    }

    #[test]
    fn proves_true_invariant() {
        let (sys, n) = counter(5);
        let r = prove_invariant_t(
            &sys,
            &Expr::var(n).le(Expr::int(5)),
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(r.holds(), "got {r}");
    }

    #[test]
    fn refutes_false_invariant_with_trace() {
        let (sys, n) = counter(5);
        let r = prove_invariant_t(
            &sys,
            &Expr::var(n).lt(Expr::int(3)),
            &CheckOptions::default(),
        )
        .unwrap();
        let t = r.trace().expect("violated");
        assert_eq!(t.len(), 4); // 0,1,2,3
    }

    #[test]
    fn proves_non_inductive_invariant_via_strengthening() {
        // Two-phase counter: a goes 0..3 then wraps, b tracks whether a
        // ever exceeded 2. Property G(n <= 3) holds but needs path depth.
        let mut sys = System::new("mod");
        let n = sys.int_var("n", 0, 7);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        // n cycles 0,1,2,3,0,...: values 4..7 unreachable though in range.
        sys.add_trans(Expr::next(n).eq(Expr::ite(
            Expr::var(n).ge(Expr::int(3)),
            Expr::int(0),
            Expr::var(n).add(Expr::int(1)),
        )));
        let r = prove_invariant_t(
            &sys,
            &Expr::var(n).le(Expr::int(3)),
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(r.holds(), "got {r}");
    }

    #[test]
    fn frozen_parameters_universally_quantified() {
        // Counter step p in 1..=2; G(n <= 10) holds for all p (saturates).
        let mut sys = System::new("paramcounter");
        let n = sys.int_var("n", 0, 10);
        let p = sys.int_param("p", 1, 2);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        sys.add_trans(Expr::next(n).eq(Expr::ite(
            Expr::var(n).le(Expr::int(8)),
            Expr::var(n).add(Expr::var(p)),
            Expr::var(n),
        )));
        let r = prove_invariant_t(
            &sys,
            &Expr::var(n).le(Expr::int(10)),
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(r.holds(), "got {r}");
        // But G(n != 10) fails for p=2 (0,2,...,8,10) and p=1.
        let r = prove_invariant_t(
            &sys,
            &Expr::var(n).ne(Expr::int(10)),
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(r.violated(), "got {r}");
    }

    #[test]
    fn depth_bound_reported() {
        let (sys, n) = counter(5);
        let r = prove_invariant_t(
            &sys,
            // Holds, but not 1-inductive; depth 0 budget can't prove it.
            &Expr::var(n).le(Expr::int(5)),
            &CheckOptions::with_depth(0),
        )
        .unwrap();
        // With depth 0 the step case may or may not conclude; accept
        // either Holds (0-inductive) or DepthBound, never Violated.
        assert!(!r.violated());
    }

    #[test]
    fn deadline_bounds_a_hard_base_case_solve() {
        use std::time::{Duration, Instant};
        // Nine frozen 3-bit values in eight slots: the k = 0 base query
        // is an UNSAT pigeonhole instance (all-different), exponentially
        // hard for CDCL. The deadline must interrupt it mid-solve rather
        // than letting the depth loop run the query to completion.
        let mut sys = System::new("php");
        let vs: Vec<_> = (0..9)
            .map(|i| sys.int_var(&format!("v{i}"), 0, 7))
            .collect();
        for &v in &vs {
            sys.add_trans(Expr::next(v).eq(Expr::var(v)));
        }
        let mut collision = Expr::ff();
        for i in 0..9 {
            for j in i + 1..9 {
                collision = collision.or(Expr::var(vs[i]).eq(Expr::var(vs[j])));
            }
        }
        let opts = CheckOptions::with_depth(4).with_timeout(Duration::from_millis(20));
        let start = Instant::now();
        let r = prove_invariant_t(&sys, &collision, &opts).unwrap();
        let elapsed = start.elapsed();
        assert!(
            matches!(r, CheckResult::Unknown(UnknownReason::Timeout)),
            "got {r}"
        );
        assert!(elapsed < Duration::from_secs(5), "overshot: {elapsed:?}");
    }
}
