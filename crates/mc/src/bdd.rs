//! BDD fixpoint engine: complete verification for finite systems.
//!
//! Reached through the [`crate::engine::Engine`] trait
//! (`engine(EngineKind::Bdd)`):
//!
//! * invariants — forward reachability with onion-ring trace
//!   reconstruction.
//! * CTL — the full logic over the `{EX, EU, EG}` base, with the
//!   system's fairness constraints honored via fair-EG.
//! * LTL — tableau product + Emerson–Lei fair-cycle detection;
//!   counterexample traces are reconstructed by a bounded fair-lasso
//!   search on the product.
//!
//! This engine exhausts the state space, which is what the paper's Fig. 6
//! "verification" runs measure (and why they grow exponentially while
//! falsification stays cheap).

use verdict_bdd::{Bdd, BddManager, VarSet};
use verdict_ts::bits::{self, BoolAlg, Num};
use verdict_ts::{Ctl, Expr, Ltl, Sort, System, Trace, Value, VarId, VarKind};

use crate::result::{Budget, CheckOptions, CheckResult, McError, UnknownReason};
use crate::stats::{Phase, SpanTimer, Stats};
use crate::tableau::violation_product;

/// Node-size cap for merging adjacent per-variable clusters into one
/// partition. Deliberately small: the relation stays per-variable except
/// where updates are trivial (frozen params, domain bits), because early
/// quantification — not cluster count — is what keeps intermediate image
/// products off the monolithic blowup curve.
const PARTITION_NODE_CAP: usize = 50;

/// Fattest variable blocks moved per sift pass (each trial reorders the
/// whole arena, so the pass cost is `blocks × candidate positions ×
/// O(nodes)`).
const MAX_SIFT_BLOCKS: usize = 8;

/// Floor for the adaptive sift trigger: below this the arena is too
/// small for reordering to pay for itself.
const MIN_SIFT_TRIGGER: usize = 20_000;

/// Floor for the adaptive garbage-collection trigger: below this the
/// arena is too small for a collection pass to matter.
const GC_MIN_TRIGGER: usize = 1 << 12;

/// [`BoolAlg`] adapter over a [`BddManager`] (newtype for coherence).
pub struct BddAlg<'m>(pub &'m mut BddManager);

impl BoolAlg for BddAlg<'_> {
    type B = Bdd;

    fn tt(&mut self) -> Bdd {
        self.0.constant(true)
    }
    fn ff(&mut self) -> Bdd {
        self.0.constant(false)
    }
    fn not(&mut self, a: &Bdd) -> Bdd {
        self.0.not(*a)
    }
    fn and(&mut self, a: &Bdd, b: &Bdd) -> Bdd {
        self.0.and(*a, *b)
    }
    fn or(&mut self, a: &Bdd, b: &Bdd) -> Bdd {
        self.0.or(*a, *b)
    }
    fn xor(&mut self, a: &Bdd, b: &Bdd) -> Bdd {
        self.0.xor(*a, *b)
    }
    fn iff(&mut self, a: &Bdd, b: &Bdd) -> Bdd {
        self.0.iff(*a, *b)
    }
    fn ite(&mut self, c: &Bdd, t: &Bdd, e: &Bdd) -> Bdd {
        self.0.ite(*c, *t, *e)
    }
}

/// Bit width of a finite sort.
fn sort_width(sort: &Sort) -> Result<usize, McError> {
    let card = sort
        .cardinality()
        .ok_or_else(|| McError("BDD engine requires finite sorts".to_string()))?;
    Ok(64 - (card - 1).leading_zeros() as usize)
}

/// One cluster of the partitioned transition relation together with its
/// early-quantification schedule: the variables quantified out right
/// after this partition is conjoined are exactly those no later
/// partition (in chain order) mentions.
#[derive(Clone, Copy)]
struct Partition {
    /// Conjunction of the cluster's update constraints (current + next
    /// vars).
    rel: Bdd,
    /// Current-state vars whose last mention is this partition
    /// (quantified here during [`SymbolicSystem::image`]).
    img_quant: VarSet,
    /// Next-state vars whose last mention is this partition (for
    /// [`SymbolicSystem::preimage`]).
    pre_quant: VarSet,
}

/// Index into the engine's protected-root registry: handles stored there
/// are remapped when a sift invalidates the arena, so fixpoint loops can
/// keep BDDs alive across dynamic reordering.
#[derive(Clone, Copy, Debug)]
struct RootId(usize);

/// The symbolic encoding of a finite system: interleaved current/next BDD
/// variables per state bit, plus the INIT / TRANS / INVAR BDDs.
pub struct SymbolicSystem<'s> {
    sys: &'s System,
    man: BddManager,
    /// `bit_base[v]` = index of the first bit of variable `v`; bit `j` of
    /// `v` has current BDD var `2*(bit_base[v]+j)` and next var `+1`.
    bit_base: Vec<usize>,
    widths: Vec<usize>,
    total_bits: usize,
    /// ∃-sets and rename maps for image computation.
    current_set: VarSet,
    next_set: VarSet,
    cur_to_next: Vec<(u32, u32)>,
    next_to_cur: Vec<(u32, u32)>,
    /// INIT ∧ INVAR ∧ domains.
    pub init: Bdd,
    /// TRANS ∧ frozen-equality ∧ next-state INVAR/domains — monolithic
    /// mode only; stays `TRUE` when the relation is partitioned.
    pub trans: Bdd,
    /// INVAR ∧ domain constraints (the legal state space).
    pub space: Bdd,
    /// Whether images chain over `partitions` instead of `trans`.
    partitioned: bool,
    partitions: Vec<Partition>,
    /// Current-state vars no partition mentions: quantified out of the
    /// source set before the image chain starts.
    img_prequant: VarSet,
    /// Next-state vars no partition mentions (preimage counterpart).
    pre_prequant: VarSet,
    /// Garbage collection fires when the arena outgrows this many
    /// nodes (re-armed to 4× the post-collection live set).
    gc_trigger: usize,
    /// Dynamic-reordering configuration: sifting fires when the arena
    /// grows past `sift_threshold` live nodes (re-armed after each pass).
    sift_enabled: bool,
    sift_threshold: usize,
    sift_fixed: Option<usize>,
    /// `(reachable nodes before, after)` per sift, for stats/tracing.
    sift_events: Vec<(usize, usize)>,
    /// Caller-held handles that must survive a sift (stack discipline:
    /// see [`SymbolicSystem::protect`]).
    protected: Vec<Bdd>,
    /// Care set for expression lowering: when set, every intermediate
    /// boolean BDD is simplified against it (sibling substitution), so
    /// results are only trusted inside the care set. Installed by
    /// [`SymbolicSystem::expr_bdd_within`].
    care: Option<Bdd>,
    /// Fixpoint iterations performed so far (reachability rings plus
    /// EU/EG rounds); snapshotted into [`Stats::fixpoint_iterations`].
    fixpoints: u64,
}

impl<'s> SymbolicSystem<'s> {
    /// Builds the encoding with default options (partitioned relation,
    /// sifting on, no node ceiling). Fails on real-sorted variables.
    pub fn new(sys: &'s System) -> Result<SymbolicSystem<'s>, McError> {
        SymbolicSystem::configured(sys, &CheckOptions::default())
    }

    /// Builds the encoding honoring the symbolic-engine knobs in `opts`
    /// (`bdd_partitioned`, `bdd_sift`, `bdd_sift_threshold`,
    /// `max_bdd_nodes`). The node ceiling is installed *before* lowering
    /// starts, so even encoding a pathological model cannot blow past it;
    /// callers must consult [`BddManager::limit_exceeded`] before
    /// trusting any BDD built here.
    pub fn configured(sys: &'s System, opts: &CheckOptions) -> Result<SymbolicSystem<'s>, McError> {
        sys.check()?;
        let mut man = BddManager::new();
        man.set_node_limit(opts.max_bdd_nodes);
        // The wall-clock deadline is enforced inside the manager too:
        // on models whose *encoding* explodes (a monolithic `and_all`
        // over a wide relation) the grind is inside a single BDD call,
        // where no engine loop ever gets a chance to poll the budget.
        man.set_deadline(opts.deadline());
        let mut bit_base = Vec::with_capacity(sys.num_vars());
        let mut widths = Vec::with_capacity(sys.num_vars());
        let mut total_bits = 0usize;
        for v in sys.var_ids() {
            let w = sort_width(sys.sort_of(v))?;
            bit_base.push(total_bits);
            widths.push(w);
            total_bits += w;
        }
        // Interleaved allocation: current bit 2i, next bit 2i+1.
        for _ in 0..2 * total_bits {
            man.new_var();
        }
        let current_set = man.var_set((0..total_bits).map(|i| 2 * i as u32));
        let next_set = man.var_set((0..total_bits).map(|i| 2 * i as u32 + 1));
        let empty_set = man.var_set([]);
        let cur_to_next: Vec<(u32, u32)> = (0..total_bits)
            .map(|i| (2 * i as u32, 2 * i as u32 + 1))
            .collect();
        let next_to_cur: Vec<(u32, u32)> = (0..total_bits)
            .map(|i| (2 * i as u32 + 1, 2 * i as u32))
            .collect();

        let mut enc = SymbolicSystem {
            sys,
            man,
            bit_base,
            widths,
            total_bits,
            current_set,
            next_set,
            cur_to_next,
            next_to_cur,
            init: Bdd::TRUE,
            trans: Bdd::TRUE,
            space: Bdd::TRUE,
            partitioned: opts.bdd_partitioned,
            partitions: Vec::new(),
            img_prequant: empty_set,
            pre_prequant: empty_set,
            gc_trigger: GC_MIN_TRIGGER,
            sift_enabled: opts.bdd_sift,
            sift_threshold: usize::MAX,
            sift_fixed: opts.bdd_sift_threshold,
            sift_events: Vec::new(),
            protected: Vec::new(),
            care: None,
            fixpoints: 0,
        };

        // Legal state space: domain constraints + INVAR (current vars).
        // Lowering leaves dead intermediates behind; collecting at
        // every stage boundary keeps the arena's high-water mark near
        // the live set instead of the sum of all lowering garbage.
        let mut space = Bdd::TRUE;
        for v in sys.var_ids() {
            let d = enc.domain_constraint(v, false);
            space = enc.man.and(space, d);
        }
        // Each constraint is lowered under the accumulated set as its
        // care set: constraints already conjoined (parameter pins,
        // "nothing failed yet") collapse later ones (deep connectivity
        // expansions) *during* lowering, instead of paying for the
        // exact full-space BDD and then conjoining it away.
        for inv in sys.invar() {
            let b = enc.expr_bdd_within(inv, space)?;
            space = enc.man.and(space, b);
            space = enc.maybe_gc(vec![space])[0];
        }
        enc.space = space;

        // INIT.
        let mut init = space;
        for e in sys.init() {
            let b = enc.expr_bdd_within(e, init)?;
            init = enc.man.and(init, b);
            init = enc.maybe_gc(vec![init])[0];
        }
        enc.init = init;

        // TRANS, as a list of conjuncts: the model's own transition
        // constraints, frozen-variable equalities, and next-state
        // legality (per-variable domain constraints plus renamed INVAR
        // — the monolithic `rename(space)` distributed so each conjunct
        // stays attached to the variables it mentions).
        let mut conjuncts: Vec<Bdd> = Vec::new();
        for e in sys.trans() {
            conjuncts.push(enc.expr_bdd(e)?);
            conjuncts = enc.maybe_gc(conjuncts);
        }
        for v in sys.var_ids() {
            if sys.decl(v).kind == VarKind::Frozen {
                let eq = enc.var_bits_equal_cur_next(v);
                conjuncts.push(eq);
            }
        }
        for v in sys.var_ids() {
            let d = enc.domain_constraint(v, true);
            conjuncts.push(d);
        }
        for inv in sys.invar() {
            let b = enc.expr_bdd(inv)?;
            let map = enc.cur_to_next.clone();
            conjuncts.push(enc.man.rename(b, &map));
            conjuncts = enc.maybe_gc(conjuncts);
        }
        conjuncts.retain(|&c| c != Bdd::TRUE);

        if enc.partitioned {
            enc.build_partitions(&conjuncts);
        } else {
            enc.trans = enc.man.and_all(conjuncts);
        }
        enc.maybe_gc(Vec::new());

        enc.sift_threshold = match enc.sift_fixed {
            Some(t) => t,
            None => (4 * enc.man.node_count()).max(MIN_SIFT_TRIGGER),
        };
        Ok(enc)
    }

    /// Clusters the transition conjuncts into partitions and computes the
    /// early-quantification schedules. Conjuncts are bucketed by the
    /// system variable owning their lowest next-state bit (pure-guard
    /// conjuncts with no next bits ride with their lowest current bit),
    /// then adjacent buckets merge while the merged BDD stays under
    /// [`PARTITION_NODE_CAP`] nodes.
    fn build_partitions(&mut self, conjuncts: &[Bdd]) {
        let mut buckets: Vec<Vec<Bdd>> = vec![Vec::new(); self.sys.num_vars().max(1)];
        for &c in conjuncts {
            let sup = self.support(c);
            let key_bit = sup
                .iter()
                .copied()
                .filter(|b| b % 2 == 1)
                .min()
                .or_else(|| sup.iter().copied().min());
            let key = key_bit.map_or(0, |b| self.owner_var(b));
            buckets[key].push(c);
        }
        let mut rels: Vec<Bdd> = Vec::new();
        for bucket in buckets {
            if bucket.is_empty() {
                continue;
            }
            let r = self.man.and_all(bucket);
            match rels.last().copied() {
                Some(prev) if self.man.size(prev) + self.man.size(r) <= PARTITION_NODE_CAP => {
                    let merged = self.man.and(prev, r);
                    *rels.last_mut().expect("nonempty") = merged;
                }
                _ => rels.push(r),
            }
        }
        if rels.is_empty() {
            // Fully unconstrained system: one trivial partition keeps the
            // image chain well-formed.
            rels.push(Bdd::TRUE);
        }
        // The bucket conjunctions are done with the raw conjuncts;
        // collect their garbage before the supports are computed.
        let rels = self.maybe_gc(rels);
        let k = rels.len();
        let sups: Vec<std::collections::HashSet<u32>> =
            rels.iter().map(|&r| self.support(r)).collect();
        let mut img_lists: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut pre_lists: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut img_pre: Vec<u32> = Vec::new();
        let mut pre_pre: Vec<u32> = Vec::new();
        for i in 0..self.total_bits {
            let cur = 2 * i as u32;
            let next = cur + 1;
            match (0..k).rev().find(|&j| sups[j].contains(&cur)) {
                Some(j) => img_lists[j].push(cur),
                None => img_pre.push(cur),
            }
            match (0..k).rev().find(|&j| sups[j].contains(&next)) {
                Some(j) => pre_lists[j].push(next),
                None => pre_pre.push(next),
            }
        }
        self.img_prequant = self.man.var_set(img_pre);
        self.pre_prequant = self.man.var_set(pre_pre);
        self.partitions = Vec::with_capacity(k);
        for ((rel, img), pre) in rels.into_iter().zip(img_lists).zip(pre_lists) {
            let img_quant = self.man.var_set(img);
            let pre_quant = self.man.var_set(pre);
            self.partitions.push(Partition {
                rel,
                img_quant,
                pre_quant,
            });
        }
    }

    /// The set of BDD variables a function depends on.
    fn support(&self, b: Bdd) -> std::collections::HashSet<u32> {
        let mut seen = std::collections::HashSet::new();
        let mut sup = std::collections::HashSet::new();
        let mut stack = vec![b];
        while let Some(x) = stack.pop() {
            if x.is_constant() || !seen.insert(x) {
                continue;
            }
            let (v, low, high) = self.man.node_parts(x);
            sup.insert(v);
            stack.push(low);
            stack.push(high);
        }
        sup
    }

    /// The system variable owning BDD variable `bdd_var`.
    fn owner_var(&self, bdd_var: u32) -> usize {
        let pos = (bdd_var / 2) as usize;
        // Zero-width variables share a base with their successor; the
        // last base ≤ pos is the owner.
        self.bit_base.partition_point(|&b| b <= pos) - 1
    }

    /// The manager (for node-count diagnostics).
    pub fn manager(&self) -> &BddManager {
        &self.man
    }

    /// Mutable manager access, for callers composing their own boolean
    /// operations over handles obtained from this encoding. Handles
    /// built this way are NOT sift-safe — either disable sifting or
    /// keep such composition outside the reachability loop.
    pub fn manager_mut(&mut self) -> &mut BddManager {
        &mut self.man
    }

    /// Why every result this manager now produces is garbage, if it is:
    /// the node ceiling poisons to `ResourceExhausted`, the wall-clock
    /// deadline to `Timeout`. Engines consult this at every phase
    /// boundary before trusting any BDD built since the last check.
    pub fn give_up(&self) -> Option<UnknownReason> {
        if self.man.limit_exceeded() {
            Some(UnknownReason::ResourceExhausted)
        } else if self.man.deadline_exceeded() {
            Some(UnknownReason::Timeout)
        } else {
            None
        }
    }

    /// Total fixpoint iterations performed by this encoding so far.
    pub fn fixpoint_count(&self) -> u64 {
        self.fixpoints
    }

    /// Transition-relation partitions this encoding images over (1 in
    /// monolithic mode).
    pub fn partition_count(&self) -> usize {
        if self.partitioned {
            self.partitions.len()
        } else {
            1
        }
    }

    /// `(reachable nodes before, after)` for every sift performed.
    pub fn sift_log(&self) -> &[(usize, usize)] {
        &self.sift_events
    }

    /// Registers a handle to survive sifting: the registry is remapped
    /// alongside the engine's own roots whenever a reorder invalidates
    /// the arena. Stack discipline — release with
    /// [`SymbolicSystem::unprotect_to`] in reverse order.
    fn protect(&mut self, b: Bdd) -> RootId {
        self.protected.push(b);
        RootId(self.protected.len() - 1)
    }

    /// The current handle behind a protected slot (fresh after any sift).
    fn root(&self, id: RootId) -> Bdd {
        self.protected[id.0]
    }

    /// Replaces the handle in a protected slot.
    fn set_root(&mut self, id: RootId, b: Bdd) {
        self.protected[id.0] = b;
    }

    /// Releases `id` and every slot protected after it.
    fn unprotect_to(&mut self, id: RootId) {
        self.protected.truncate(id.0);
    }

    /// Sifts if the arena has outgrown the trigger threshold: reorders
    /// the fattest variable blocks (current/next bit pairs move as one so
    /// the interleaving invariant survives), remaps every engine root and
    /// protected handle, and re-arms the trigger at twice the compacted
    /// size. All handles not registered via [`SymbolicSystem::protect`]
    /// are invalidated — only call from points where the live set is
    /// exactly the engine roots plus the registry.
    /// Engine-owned handles that must survive an arena rebuild (GC or
    /// sift): INIT/TRANS/space, partition relations, and the protected
    /// registry — in that fixed order, which [`Self::install_roots`]
    /// mirrors.
    fn engine_roots(&self) -> Vec<Bdd> {
        let mut roots = vec![self.init, self.trans, self.space];
        for p in &self.partitions {
            roots.push(p.rel);
        }
        roots.extend(self.protected.iter().copied());
        roots
    }

    /// Reinstalls the engine roots from a rebuild's remapped handle
    /// list (same order as [`Self::engine_roots`], possibly followed by
    /// caller extras, which are returned remapped).
    fn install_roots(&mut self, remapped: Vec<Bdd>) -> Vec<Bdd> {
        let mut it = remapped.into_iter();
        self.init = it.next().expect("root");
        self.trans = it.next().expect("root");
        self.space = it.next().expect("root");
        for p in &mut self.partitions {
            p.rel = it.next().expect("root");
        }
        for slot in &mut self.protected {
            *slot = it.next().expect("root");
        }
        it.collect()
    }

    /// Collects lowering garbage once the arena has outgrown the live
    /// set. Engine roots and `extras` survive (extras come back
    /// remapped); every other handle is invalidated — callers must not
    /// hold any. Cheap no-op below the adaptive trigger.
    fn maybe_gc(&mut self, extras: Vec<Bdd>) -> Vec<Bdd> {
        debug_assert!(self.care.is_none(), "care-set handle would go stale");
        if self.man.node_count() < self.gc_trigger || self.man.poisoned() {
            return extras;
        }
        let mut roots = self.engine_roots();
        roots.extend(extras.iter().copied());
        let remapped = self.man.gc(&roots);
        let out = self.install_roots(remapped);
        self.gc_trigger = (4 * self.man.node_count()).max(GC_MIN_TRIGGER);
        out
    }

    fn maybe_sift(&mut self) {
        if !self.sift_enabled
            || self.total_bits == 0
            || self.man.poisoned()
            || self.man.node_count() < self.sift_threshold
        {
            return;
        }
        // Collect before judging size: most arena growth is operation
        // garbage, and collection is far cheaper than a sifting pass.
        // Sift only when the *live* set still exceeds the threshold.
        let roots = self.engine_roots();
        let remapped = self.man.gc(&roots);
        self.install_roots(remapped);
        self.gc_trigger = (4 * self.man.node_count()).max(GC_MIN_TRIGGER);
        if self.man.node_count() < self.sift_threshold {
            return;
        }
        let roots = self.engine_roots();
        let blocks: Vec<Vec<u32>> = (0..self.total_bits)
            .map(|i| vec![2 * i as u32, 2 * i as u32 + 1])
            .collect();
        let out = self.man.sift(&roots, &blocks, MAX_SIFT_BLOCKS);
        self.install_roots(out.roots);
        self.sift_events.push((out.nodes_before, out.nodes_after));
        self.sift_threshold = out
            .nodes_after
            .saturating_mul(2)
            .max(self.sift_fixed.unwrap_or(MIN_SIFT_TRIGGER));
    }

    fn bdd_var_index(&self, v: VarId, bit: usize, next: bool) -> u32 {
        (2 * (self.bit_base[v.index()] + bit) + usize::from(next)) as u32
    }

    fn var_bits(&mut self, v: VarId, next: bool) -> Vec<Bdd> {
        (0..self.widths[v.index()])
            .map(|j| {
                let idx = self.bdd_var_index(v, j, next);
                self.man.var(idx)
            })
            .collect()
    }

    fn domain_constraint(&mut self, v: VarId, next: bool) -> Bdd {
        let card = self.sys.sort_of(v).cardinality().expect("finite");
        if card.is_power_of_two() {
            return Bdd::TRUE;
        }
        let bits = self.var_bits(v, next);
        let mut alg = BddAlg(&mut self.man);
        bits::unsigned_le_const(&mut alg, &bits, card - 1)
    }

    /// Lowers a boolean expression (current and next vars allowed).
    pub fn expr_bdd(&mut self, e: &Expr) -> Result<Bdd, McError> {
        // Per-call pointer memo: expressions are shared DAGs and BDD
        // results are canonical, so caching by node identity is exact.
        let mut seen = std::collections::HashMap::new();
        Ok(self.lower_bool(e, &mut seen))
    }

    /// Lowers a boolean expression under a care set: every intermediate
    /// boolean BDD is simplified by sibling substitution against
    /// `care`, so the result agrees with the exact lowering *inside*
    /// `care` and is unconstrained elsewhere. Lowering a property
    /// against the already-computed reachable set this way sidesteps
    /// the full-space blowup of order-hostile formulas (deep
    /// connectivity expansions, view-vs-truth comparators) whose exact
    /// BDDs dwarf the reachable set itself.
    pub fn expr_bdd_within(&mut self, e: &Expr, care: Bdd) -> Result<Bdd, McError> {
        self.care = Some(care);
        let r = self.expr_bdd(e);
        self.care = None;
        r
    }

    fn lower_bool(
        &mut self,
        e: &Expr,
        seen: &mut std::collections::HashMap<*const Expr, Bdd>,
    ) -> Bdd {
        let key = e as *const Expr;
        if let Some(&hit) = seen.get(&key) {
            return hit;
        }
        let mut result = self.lower_bool_uncached(e, seen);
        if let Some(care) = self.care {
            result = self.man.simplify(result, care);
        }
        seen.insert(key, result);
        result
    }

    fn lower_bool_uncached(
        &mut self,
        e: &Expr,
        seen: &mut std::collections::HashMap<*const Expr, Bdd>,
    ) -> Bdd {
        match e {
            Expr::Const(Value::Bool(b)) => self.man.constant(*b),
            Expr::Var(v) => self.bool_bit(*v, false),
            Expr::Next(v) => self.bool_bit(*v, true),
            Expr::Not(a) => {
                let a = self.lower_bool(a, seen);
                self.man.not(a)
            }
            Expr::And(xs) => {
                let mut acc = Bdd::TRUE;
                for x in xs.iter() {
                    let b = self.lower_bool(x, seen);
                    acc = self.man.and(acc, b);
                }
                acc
            }
            Expr::Or(xs) => {
                let mut acc = Bdd::FALSE;
                for x in xs.iter() {
                    let b = self.lower_bool(x, seen);
                    acc = self.man.or(acc, b);
                }
                acc
            }
            Expr::Implies(a, b) => {
                let a = self.lower_bool(a, seen);
                let b = self.lower_bool(b, seen);
                self.man.implies(a, b)
            }
            Expr::Iff(a, b) => {
                let a = self.lower_bool(a, seen);
                let b = self.lower_bool(b, seen);
                self.man.iff(a, b)
            }
            Expr::Ite(c, t, f) => {
                let c = self.lower_bool(c, seen);
                let t = self.lower_bool(t, seen);
                let f = self.lower_bool(f, seen);
                self.man.ite(c, t, f)
            }
            Expr::Eq(a, b) => {
                let sort = a.sort(self.sys).expect("type-checked");
                match sort {
                    Sort::Bool => {
                        let a = self.lower_bool(a, seen);
                        let b = self.lower_bool(b, seen);
                        self.man.iff(a, b)
                    }
                    Sort::Enum(_) => {
                        let a = self.lower_enum_bits(a, seen);
                        let b = self.lower_enum_bits(b, seen);
                        let mut alg = BddAlg(&mut self.man);
                        bits::bits_eq(&mut alg, &a, &b)
                    }
                    Sort::Int { .. } => {
                        let a = self.lower_num(a, seen);
                        let b = self.lower_num(b, seen);
                        let mut alg = BddAlg(&mut self.man);
                        bits::eq(&mut alg, &a, &b)
                    }
                    Sort::Real => unreachable!("finite engine"),
                }
            }
            Expr::Le(a, b) => {
                let a = self.lower_num(a, seen);
                let b = self.lower_num(b, seen);
                let mut alg = BddAlg(&mut self.man);
                bits::le(&mut alg, &a, &b)
            }
            Expr::Lt(a, b) => {
                let a = self.lower_num(a, seen);
                let b = self.lower_num(b, seen);
                let mut alg = BddAlg(&mut self.man);
                bits::lt(&mut alg, &a, &b)
            }
            other => panic!("boolean lowering of {other}"),
        }
    }

    fn bool_bit(&mut self, v: VarId, next: bool) -> Bdd {
        let idx = self.bdd_var_index(v, 0, next);
        self.man.var(idx)
    }

    fn lower_num(
        &mut self,
        e: &Expr,
        seen: &mut std::collections::HashMap<*const Expr, Bdd>,
    ) -> Num<Bdd> {
        match e {
            Expr::Const(Value::Int(n)) => {
                let mut alg = BddAlg(&mut self.man);
                bits::num_const(&mut alg, *n)
            }
            Expr::Var(v) | Expr::Next(v) => {
                let next = matches!(e, Expr::Next(_));
                let Sort::Int { lo, .. } = *self.sys.sort_of(*v) else {
                    panic!("numeric lowering of non-int var");
                };
                let raw = self.var_bits(*v, next);
                let mut alg = BddAlg(&mut self.man);
                let unsigned = bits::from_unsigned(&mut alg, &raw);
                if lo == 0 {
                    unsigned
                } else {
                    let off = bits::num_const(&mut alg, lo);
                    bits::add(&mut alg, &unsigned, &off)
                }
            }
            Expr::Add(xs) => {
                let mut acc = {
                    let mut alg = BddAlg(&mut self.man);
                    bits::num_const(&mut alg, 0)
                };
                for x in xs.iter() {
                    let n = self.lower_num(x, seen);
                    let mut alg = BddAlg(&mut self.man);
                    acc = bits::add(&mut alg, &acc, &n);
                }
                acc
            }
            Expr::Sub(a, b) => {
                let a = self.lower_num(a, seen);
                let b = self.lower_num(b, seen);
                let mut alg = BddAlg(&mut self.man);
                bits::sub(&mut alg, &a, &b)
            }
            Expr::Neg(a) => {
                let a = self.lower_num(a, seen);
                let mut alg = BddAlg(&mut self.man);
                bits::neg(&mut alg, &a)
            }
            Expr::MulConst(k, a) => {
                let a = self.lower_num(a, seen);
                let mut alg = BddAlg(&mut self.man);
                bits::mul_const(&mut alg, &a, k.numer() as i64)
            }
            Expr::CountTrue(xs) => {
                let flags: Vec<Bdd> = xs.iter().map(|x| self.lower_bool(x, seen)).collect();
                let mut alg = BddAlg(&mut self.man);
                bits::count_true(&mut alg, &flags)
            }
            Expr::Ite(c, a, b) => {
                let c = self.lower_bool(c, seen);
                let a = self.lower_num(a, seen);
                let b = self.lower_num(b, seen);
                let mut alg = BddAlg(&mut self.man);
                bits::mux(&mut alg, &c, &a, &b)
            }
            other => panic!("numeric lowering of {other}"),
        }
    }

    fn lower_enum_bits(
        &mut self,
        e: &Expr,
        seen: &mut std::collections::HashMap<*const Expr, Bdd>,
    ) -> Vec<Bdd> {
        match e {
            Expr::Const(Value::Enum(sort, idx)) => {
                let w = sort_width(&Sort::Enum(sort.clone())).expect("finite");
                (0..w)
                    .map(|i| self.man.constant(idx >> i & 1 == 1))
                    .collect()
            }
            Expr::Var(v) | Expr::Next(v) => self.var_bits(*v, matches!(e, Expr::Next(_))),
            Expr::Ite(c, a, b) => {
                let c = self.lower_bool(c, seen);
                let a = self.lower_enum_bits(a, seen);
                let b = self.lower_enum_bits(b, seen);
                a.into_iter()
                    .zip(b)
                    .map(|(x, y)| self.man.ite(c, x, y))
                    .collect()
            }
            other => panic!("enum lowering of {other}"),
        }
    }

    fn var_bits_equal_cur_next(&mut self, v: VarId) -> Bdd {
        let cur = self.var_bits(v, false);
        let next = self.var_bits(v, true);
        let mut alg = BddAlg(&mut self.man);
        bits::bits_eq(&mut alg, &cur, &next)
    }

    /// Forward image: states reachable in one step from `s`. Partitioned
    /// mode chains `and_exists` over the clusters, quantifying each
    /// current-state variable at its last mention, so no intermediate
    /// product ever carries the full monolithic relation.
    pub fn image(&mut self, s: Bdd) -> Bdd {
        let stepped = if self.partitioned {
            let mut acc = self.man.exists(s, self.img_prequant);
            for i in 0..self.partitions.len() {
                let p = self.partitions[i];
                acc = self.man.and_exists(acc, p.rel, p.img_quant);
            }
            acc
        } else {
            self.man.and_exists(s, self.trans, self.current_set)
        };
        let map = self.next_to_cur.clone();
        self.man.rename(stepped, &map)
    }

    /// Backward image: states with a successor in `s` (same chained
    /// schedule as [`SymbolicSystem::image`], quantifying next-state
    /// variables at their last mention).
    pub fn preimage(&mut self, s: Bdd) -> Bdd {
        let map = self.cur_to_next.clone();
        let s_next = self.man.rename(s, &map);
        if self.partitioned {
            let mut acc = self.man.exists(s_next, self.pre_prequant);
            for i in 0..self.partitions.len() {
                let p = self.partitions[i];
                acc = self.man.and_exists(acc, p.rel, p.pre_quant);
            }
            acc
        } else {
            self.man.and_exists(self.trans, s_next, self.next_set)
        }
    }

    /// Onion rings of reachability from `init`; `None` on timeout,
    /// cancellation, or node-count overflow (consult the budget and
    /// [`BddManager::limit_exceeded`] for which). This is the only loop
    /// that triggers sifting — rings live in the protected registry so a
    /// mid-fixpoint reorder cannot orphan them.
    pub fn reachable(&mut self, budget: &Budget) -> Option<Vec<Bdd>> {
        let reach_id = self.protect(self.init);
        let mut ring_ids = vec![self.protect(self.init)];
        let ok = loop {
            self.fixpoints += 1;
            if budget.check_nodes(self.man.node_count()).is_some() {
                break false;
            }
            self.maybe_sift();
            let frontier = self.root(*ring_ids.last().expect("nonempty"));
            let img = self.image(frontier);
            let reach = self.root(reach_id);
            let not_reach = self.man.not(reach);
            let new = self.man.and(img, not_reach);
            // A poisoned manager collapses everything to FALSE — check
            // both poison flags before trusting `new` as a fixpoint
            // witness.
            if self.man.poisoned() {
                break false;
            }
            if new == Bdd::FALSE {
                break true;
            }
            let grown = self.man.or(reach, new);
            self.set_root(reach_id, grown);
            ring_ids.push(self.protect(new));
            // Image chains shed intermediates every iteration; the
            // rings and reach live in the protected registry, so
            // nothing the loop still needs can be collected.
            self.maybe_gc(Vec::new());
        };
        let rings: Vec<Bdd> = ring_ids.iter().map(|&id| self.root(id)).collect();
        self.unprotect_to(reach_id);
        if ok {
            Some(rings)
        } else {
            None
        }
    }

    /// Decodes one concrete state out of a nonempty set.
    pub fn pick_state(&mut self, set: Bdd) -> Vec<Value> {
        let cube = self.man.sat_one(set).expect("nonempty set");
        // Assignments for current bits; unmentioned bits default to 0.
        let mut bits_on = vec![false; self.total_bits];
        for (var, val) in cube {
            if var % 2 == 0 {
                bits_on[(var / 2) as usize] = val;
            }
        }
        self.sys
            .var_ids()
            .map(|v| {
                let base = self.bit_base[v.index()];
                let w = self.widths[v.index()];
                let mut u: u64 = 0;
                for j in 0..w {
                    if bits_on[base + j] {
                        u |= 1 << j;
                    }
                }
                match self.sys.sort_of(v) {
                    Sort::Bool => Value::Bool(u == 1),
                    Sort::Enum(en) => {
                        Value::Enum(en.clone(), (u as u32).min(en.variants.len() as u32 - 1))
                    }
                    Sort::Int { lo, hi } => Value::Int((*lo + u as i64).min(*hi)),
                    Sort::Real => unreachable!(),
                }
            })
            .collect()
    }

    /// Converts a current-state BDD back into a boolean [`Expr`] over the
    /// system's variables, via Shannon expansion over the decision nodes.
    /// A decision on bit `j` of an int/enum variable becomes a disjunction
    /// of the domain values whose offset-binary encoding has that bit set,
    /// so the result mentions only the system's own vocabulary — this is
    /// what lets an independent SAT-based checker re-verify a reachable
    /// set computed symbolically (see [`crate::certify`]).
    pub fn bdd_to_expr(&mut self, b: Bdd) -> Expr {
        let mut memo = std::collections::HashMap::new();
        self.bdd_to_expr_in(b, &mut memo)
    }

    fn bdd_to_expr_in(&mut self, b: Bdd, memo: &mut std::collections::HashMap<Bdd, Expr>) -> Expr {
        if b == Bdd::TRUE {
            return Expr::tt();
        }
        if b == Bdd::FALSE {
            return Expr::ff();
        }
        if let Some(hit) = memo.get(&b) {
            return hit.clone();
        }
        let (var, low, high) = self.man.node_parts(b);
        let cond = self.bit_expr(var);
        let low_e = self.bdd_to_expr_in(low, memo);
        let high_e = self.bdd_to_expr_in(high, memo);
        let e = Expr::ite(cond, high_e, low_e);
        memo.insert(b, e.clone());
        e
    }

    /// The predicate "BDD variable `idx` is true" over the system's
    /// variables. Only current-state bits are convertible.
    fn bit_expr(&self, idx: u32) -> Expr {
        assert!(
            idx.is_multiple_of(2),
            "next-state bit in a current-state BDD"
        );
        let pos = (idx / 2) as usize;
        let v = self
            .sys
            .var_ids()
            .find(|v| {
                let base = self.bit_base[v.index()];
                pos >= base && pos < base + self.widths[v.index()]
            })
            .expect("bit belongs to a declared variable");
        let j = pos - self.bit_base[v.index()];
        match self.sys.sort_of(v) {
            Sort::Bool => Expr::var(v),
            Sort::Int { lo, hi } => Expr::or_all((*lo..=*hi).filter_map(|val| {
                if (val - lo) as u64 >> j & 1 == 1 {
                    Some(Expr::var(v).eq(Expr::int(val)))
                } else {
                    None
                }
            })),
            Sort::Enum(en) => Expr::or_all((0..en.variants.len() as u32).filter_map(|i| {
                if i >> j & 1 == 1 {
                    Some(Expr::var(v).eq(Expr::Const(Value::Enum(en.clone(), i))))
                } else {
                    None
                }
            })),
            Sort::Real => unreachable!("finite engine"),
        }
    }

    /// BDD of the single concrete state `state` (current vars).
    pub fn state_bdd(&mut self, state: &[Value]) -> Bdd {
        let mut acc = Bdd::TRUE;
        for v in self.sys.var_ids() {
            let u: u64 = match &state[v.index()] {
                Value::Bool(b) => u64::from(*b),
                Value::Int(n) => {
                    let Sort::Int { lo, .. } = self.sys.sort_of(v) else {
                        unreachable!()
                    };
                    (n - lo) as u64
                }
                Value::Enum(_, i) => u64::from(*i),
                Value::Real(_) => unreachable!(),
            };
            for j in 0..self.widths[v.index()] {
                let idx = self.bdd_var_index(v, j, false);
                let lit = if u >> j & 1 == 1 {
                    self.man.var(idx)
                } else {
                    self.man.nvar(idx)
                };
                acc = self.man.and(acc, lit);
            }
        }
        acc
    }
}

/// Why a fixpoint gave up: the manager's own poisoned ceiling beats the
/// budget's explanation (a poisoned arena is always `ResourceExhausted`,
/// whatever the clock says).
fn give_up_reason(enc: &SymbolicSystem<'_>, budget: &Budget) -> UnknownReason {
    enc.give_up().unwrap_or_else(|| budget.unknown_reason())
}

/// Folds the encoding's observability into the stats sink: manager
/// counters, partition count, and one trace mark per sift.
fn finish_stats(stats: &mut Stats, enc: &SymbolicSystem<'_>) {
    stats.fixpoint_iterations += enc.fixpoint_count();
    stats.absorb_bdd(enc.manager());
    stats.bdd.partitions = stats.bdd.partitions.max(enc.partition_count() as u64);
    if let Some(t) = stats.trace() {
        for &(before, after) in enc.sift_log() {
            t.mark(
                "bdd",
                "sift",
                &format!("nodes_before={before} nodes_after={after}"),
            );
        }
    }
}

/// Trait-dispatch entry point for the complete invariant check by
/// forward reachability (see [`crate::engine::engine`]).
pub(crate) fn run_invariant(
    sys: &System,
    p: &Expr,
    opts: &CheckOptions,
    stats: &mut Stats,
) -> Result<CheckResult, McError> {
    // One budget for the whole check: the deadline armed inside the
    // manager during encode and the deadline the fixpoint loops poll
    // are the same instant, so encode time counts against the timeout.
    let budget = Budget::new(opts);
    let encode = SpanTimer::begin(Phase::Encode);
    let mut enc = SymbolicSystem::configured(sys, opts)?;
    stats.end_span(encode);
    let res = if let Some(reason) = enc.give_up() {
        Ok(CheckResult::Unknown(reason))
    } else {
        invariant_fix(sys, p, opts, &budget, stats, &mut enc)
    };
    finish_stats(stats, &enc);
    res
}

fn invariant_fix(
    sys: &System,
    p: &Expr,
    opts: &CheckOptions,
    budget: &Budget,
    stats: &mut Stats,
    enc: &mut SymbolicSystem<'_>,
) -> Result<CheckResult, McError> {
    // Reachability FIRST: the rings are cheap to saturate partition by
    // partition, and their union then serves as the care set for
    // lowering the property. Exact property BDDs over the free state
    // space (deep connectivity expansions, view-vs-truth comparators)
    // can dwarf the reachable set by orders of magnitude; restricted
    // lowering never pays for states no execution visits.
    let solve = SpanTimer::begin(Phase::Solve);
    let rings = enc.reachable(budget);
    stats.end_span(solve);
    let Some(rings) = rings else {
        return Ok(CheckResult::Unknown(give_up_reason(enc, budget)));
    };
    let encode = SpanTimer::begin(Phase::Encode);
    let mut reach = Bdd::FALSE;
    for &r in &rings {
        reach = enc.man.or(reach, r);
    }
    let p_bdd = enc.expr_bdd_within(p, reach)?;
    let bad = enc.man.not(p_bdd);
    stats.end_span(encode);
    if let Some(reason) = enc.give_up() {
        return Ok(CheckResult::Unknown(reason));
    }
    // First ring intersecting ¬p.
    let mut hit = None;
    for (i, &ring) in rings.iter().enumerate() {
        let overlap = enc.man.and(ring, bad);
        if let Some(reason) = enc.give_up() {
            return Ok(CheckResult::Unknown(reason));
        }
        if overlap != Bdd::FALSE {
            hit = Some((i, overlap));
            break;
        }
    }
    let Some((i, overlap)) = hit else {
        if opts.certify {
            // Certificate: the reachable set is an inductive invariant
            // implying p. Export it as an expression and re-check the
            // three obligations with fresh proof-logged SAT queries.
            // Under partitioning, first re-check inductiveness against
            // every partition symbolically: one more chained image must
            // stay inside the computed set. A nonempty escape means the
            // partitioned fixpoint lied — withhold the verdict.
            let img = enc.image(reach);
            let not_reach = enc.man.not(reach);
            let escaped = enc.man.and(img, not_reach);
            if let Some(reason) = enc.give_up() {
                return Ok(CheckResult::Unknown(reason));
            }
            if escaped != Bdd::FALSE {
                return Ok(CheckResult::Unknown(UnknownReason::CertificateRejected));
            }
            let inv = enc.bdd_to_expr(reach);
            let certify = SpanTimer::begin(Phase::Certify);
            let gated = crate::certify::gate_holds(
                "BDD reachable-set",
                crate::certify::check_inductive_invariant(sys, p, &inv, budget),
            );
            stats.end_span(certify);
            return Ok(gated);
        }
        return Ok(CheckResult::Holds);
    };
    // Reconstruct a path init → overlap through the onion rings.
    let mut states = vec![enc.pick_state(overlap)];
    for ring_idx in (0..i).rev() {
        let cur_bdd = enc.state_bdd(states.last().expect("nonempty"));
        let pre = enc.preimage(cur_bdd);
        let in_ring = enc.man.and(pre, rings[ring_idx]);
        if let Some(reason) = enc.give_up() {
            return Ok(CheckResult::Unknown(reason));
        }
        debug_assert!(in_ring != Bdd::FALSE, "onion ring reconstruction");
        states.push(enc.pick_state(in_ring));
    }
    states.reverse();
    let trace = Trace::new(sys, states, None);
    Ok(if opts.certify {
        let replay = SpanTimer::begin(Phase::Replay);
        let gated = crate::certify::gate_invariant_cex(sys, p, trace);
        stats.end_span(replay);
        gated
    } else {
        CheckResult::Violated(trace)
    })
}

/// Trait-dispatch entry point for full CTL model checking: does `phi`
/// hold in every initial state? Fairness constraints of the system
/// restrict path quantifiers to fair paths — fair-CTL semantics (see
/// [`crate::engine::engine`]).
pub(crate) fn run_ctl(
    sys: &System,
    phi: &Ctl,
    opts: &CheckOptions,
    stats: &mut Stats,
) -> Result<CheckResult, McError> {
    let budget = Budget::new(opts);
    let encode = SpanTimer::begin(Phase::Encode);
    let mut enc = SymbolicSystem::configured(sys, opts)?;
    stats.end_span(encode);
    let res = if let Some(reason) = enc.give_up() {
        Ok(CheckResult::Unknown(reason))
    } else {
        ctl_fix(sys, phi, &budget, stats, &mut enc)
    };
    finish_stats(stats, &enc);
    res
}

fn ctl_fix(
    sys: &System,
    phi: &Ctl,
    budget: &Budget,
    stats: &mut Stats,
    enc: &mut SymbolicSystem<'_>,
) -> Result<CheckResult, McError> {
    let encode = SpanTimer::begin(Phase::Encode);
    let justice: Vec<Bdd> = sys
        .fairness()
        .iter()
        .map(|e| enc.expr_bdd(e))
        .collect::<Result<_, _>>()?;
    stats.end_span(encode);
    if let Some(reason) = enc.give_up() {
        return Ok(CheckResult::Unknown(reason));
    }
    let solve = SpanTimer::begin(Phase::Solve);
    let fair = fair_states(enc, &justice, budget);
    let Some(fair) = fair else {
        stats.end_span(solve);
        return Ok(CheckResult::Unknown(give_up_reason(enc, budget)));
    };
    let base = phi.to_base();
    let sat = eval_ctl(enc, &base, fair, &justice, budget);
    stats.end_span(solve);
    let Some(sat) = sat else {
        return Ok(CheckResult::Unknown(give_up_reason(enc, budget)));
    };
    let nsat = enc.man.not(sat);
    let cex = enc.man.and(enc.init, nsat);
    if let Some(reason) = enc.give_up() {
        return Ok(CheckResult::Unknown(reason));
    }
    if cex == Bdd::FALSE {
        Ok(CheckResult::Holds)
    } else {
        // CTL counterexamples are trees in general; report the offending
        // initial state as a single-state trace.
        let state = enc.pick_state(cex);
        Ok(CheckResult::Violated(Trace::new(sys, vec![state], None)))
    }
}

/// States with at least one (fair) infinite path: the Emerson–Lei fixpoint
/// `gfp Z. space ∧ ⋀_j pre(E[Z U (Z ∧ j)])`, specializing to
/// `gfp Z. pre(Z)` when there are no justice constraints.
fn fair_states(enc: &mut SymbolicSystem<'_>, justice: &[Bdd], budget: &Budget) -> Option<Bdd> {
    let space = enc.space;
    eg_fair(enc, space, justice, budget)
}

/// `E[p U q]` least fixpoint.
fn eu_fix(enc: &mut SymbolicSystem<'_>, p: Bdd, q: Bdd, budget: &Budget) -> Option<Bdd> {
    let mut y = q;
    loop {
        enc.fixpoints += 1;
        if budget.check_nodes(enc.man.node_count()).is_some() {
            return None;
        }
        let pre = enc.preimage(y);
        let step = enc.man.and(p, pre);
        let ynew = enc.man.or(y, step);
        // Poisoned results collapse to FALSE; never mistake that for
        // convergence.
        if enc.man.poisoned() {
            return None;
        }
        if ynew == y {
            return Some(y);
        }
        y = ynew;
    }
}

/// `EG p` greatest fixpoint restricted to fair paths:
/// `gfp Z. p ∧ ⋀_j pre(E[Z U (Z ∧ j)])` (plain `gfp Z. p ∧ pre(Z)`
/// without justice).
fn eg_fair(enc: &mut SymbolicSystem<'_>, p: Bdd, justice: &[Bdd], budget: &Budget) -> Option<Bdd> {
    let mut z = p;
    loop {
        enc.fixpoints += 1;
        if budget.check_nodes(enc.man.node_count()).is_some() {
            return None;
        }
        let mut znew = z;
        if justice.is_empty() {
            let pre = enc.preimage(z);
            znew = enc.man.and(z, pre);
        } else {
            for &j in justice {
                let target = enc.man.and(z, j);
                let eu = eu_fix(enc, z, target, budget)?;
                let pre = enc.preimage(eu);
                znew = enc.man.and(znew, pre);
            }
        }
        if enc.man.poisoned() {
            return None;
        }
        if znew == z {
            return Some(z);
        }
        z = znew;
    }
}

/// Evaluates a base-form CTL formula to its satisfying state set.
/// Path quantifiers are restricted to `fair` states.
fn eval_ctl(
    enc: &mut SymbolicSystem<'_>,
    phi: &Ctl,
    fair: Bdd,
    justice: &[Bdd],
    budget: &Budget,
) -> Option<Bdd> {
    Some(match phi {
        Ctl::Atom(e) => {
            let b = enc.expr_bdd(e).ok()?;
            enc.man.and(b, enc.space)
        }
        Ctl::Not(a) => {
            let a = eval_ctl(enc, a, fair, justice, budget)?;
            let na = enc.man.not(a);
            enc.man.and(na, enc.space)
        }
        Ctl::And(a, b) => {
            let a = eval_ctl(enc, a, fair, justice, budget)?;
            let b = eval_ctl(enc, b, fair, justice, budget)?;
            enc.man.and(a, b)
        }
        Ctl::Or(a, b) => {
            let a = eval_ctl(enc, a, fair, justice, budget)?;
            let b = eval_ctl(enc, b, fair, justice, budget)?;
            enc.man.or(a, b)
        }
        Ctl::EX(a) => {
            let a = eval_ctl(enc, a, fair, justice, budget)?;
            let af = enc.man.and(a, fair);
            enc.preimage(af)
        }
        Ctl::EU(a, b) => {
            let a = eval_ctl(enc, a, fair, justice, budget)?;
            let b = eval_ctl(enc, b, fair, justice, budget)?;
            let bf = enc.man.and(b, fair);
            eu_fix(enc, a, bf, budget)?
        }
        Ctl::EG(a) => {
            let a = eval_ctl(enc, a, fair, justice, budget)?;
            eg_fair(enc, a, justice, budget)?
        }
        other => {
            // to_base() eliminates the A-quantifiers and EF.
            unreachable!("non-base CTL form {other}")
        }
    })
}

/// Trait-dispatch entry point for the complete LTL check: tableau
/// product + fair-cycle detection. A violation exists iff some initial
/// product state starts a fair path; the trace is recovered by bounded
/// fair-lasso search on the product (see [`crate::engine::engine`]).
pub(crate) fn run_ltl(
    sys: &System,
    phi: &Ltl,
    opts: &CheckOptions,
    stats: &mut Stats,
) -> Result<CheckResult, McError> {
    let budget = Budget::new(opts);
    let encode = SpanTimer::begin(Phase::Encode);
    let product = violation_product(sys, phi);
    let mut enc = SymbolicSystem::configured(&product.system, opts)?;
    stats.end_span(encode);
    let res = if let Some(reason) = enc.give_up() {
        Ok(CheckResult::Unknown(reason))
    } else {
        ltl_fix(sys, phi, &product, opts, &budget, stats, &mut enc)
    };
    finish_stats(stats, &enc);
    res
}

fn ltl_fix(
    sys: &System,
    phi: &Ltl,
    product: &crate::tableau::TableauProduct,
    opts: &CheckOptions,
    budget: &Budget,
    stats: &mut Stats,
    enc: &mut SymbolicSystem<'_>,
) -> Result<CheckResult, McError> {
    let encode = SpanTimer::begin(Phase::Encode);
    let justice: Vec<Bdd> = product
        .justice
        .iter()
        .map(|e| enc.expr_bdd(e))
        .collect::<Result<_, _>>()?;
    stats.end_span(encode);
    if let Some(reason) = enc.give_up() {
        return Ok(CheckResult::Unknown(reason));
    }
    // Lockstep forward/backward over the partitions: the forward sweep
    // restricts to reachable states (cheaper fixpoints and sound
    // verdicts — fair cycles must be reachable from init), then the
    // backward Emerson–Lei pass runs under that restriction. The justice
    // sets must survive any sift inside the forward sweep.
    let justice_base = justice.first().map(|_| enc.protect(justice[0]));
    for &j in justice.iter().skip(1) {
        enc.protect(j);
    }
    let solve = SpanTimer::begin(Phase::Solve);
    let rings = enc.reachable(budget);
    let justice: Vec<Bdd> = match justice_base {
        Some(base) => (0..justice.len())
            .map(|k| enc.root(RootId(base.0 + k)))
            .collect(),
        None => Vec::new(),
    };
    if let Some(base) = justice_base {
        enc.unprotect_to(base);
    }
    let Some(rings) = rings else {
        stats.end_span(solve);
        return Ok(CheckResult::Unknown(give_up_reason(enc, budget)));
    };
    let mut reach = Bdd::FALSE;
    for r in rings {
        reach = enc.man.or(reach, r);
    }
    if let Some(reason) = enc.give_up() {
        stats.end_span(solve);
        return Ok(CheckResult::Unknown(reason));
    }
    let saved_space = enc.space;
    enc.space = reach;
    let fair = fair_states(enc, &justice, budget);
    enc.space = saved_space;
    stats.end_span(solve);
    let Some(fair) = fair else {
        return Ok(CheckResult::Unknown(give_up_reason(enc, budget)));
    };
    let witness = enc.man.and(enc.init, fair);
    if let Some(reason) = enc.give_up() {
        return Ok(CheckResult::Unknown(reason));
    }
    if witness == Bdd::FALSE {
        return Ok(CheckResult::Holds);
    }
    // Property violated; reconstruct a concrete lasso via bounded search.
    match crate::bmc::find_fair_lasso(product, opts, stats)? {
        crate::bmc::LassoOutcome::Found(trace) => Ok(if opts.certify {
            let replay = SpanTimer::begin(Phase::Replay);
            let gated = crate::certify::gate_ltl_cex(sys, phi, trace);
            stats.end_span(replay);
            gated
        } else {
            CheckResult::Violated(trace)
        }),
        // The violation is certain; only the trace search hit a limit, so
        // report the witnessing initial state. No lasso means the replay
        // interpreter cannot validate it, so certify mode withholds it.
        _ => {
            let trace = Trace::new(
                sys,
                vec![enc.pick_state(witness)[..product.original_vars].to_vec()],
                None,
            );
            Ok(if opts.certify {
                let replay = SpanTimer::begin(Phase::Replay);
                let gated = crate::certify::gate_ltl_cex(sys, phi, trace);
                stats.end_span(replay);
                gated
            } else {
                CheckResult::Violated(trace)
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_invariant_t(
        sys: &System,
        p: &Expr,
        opts: &CheckOptions,
    ) -> Result<CheckResult, McError> {
        run_invariant(sys, p, opts, &mut Stats::default())
    }

    fn check_ctl_t(sys: &System, phi: &Ctl, opts: &CheckOptions) -> Result<CheckResult, McError> {
        run_ctl(sys, phi, opts, &mut Stats::default())
    }

    fn check_ltl_t(sys: &System, phi: &Ltl, opts: &CheckOptions) -> Result<CheckResult, McError> {
        run_ltl(sys, phi, opts, &mut Stats::default())
    }

    fn counter(limit: i64) -> (System, VarId) {
        let mut sys = System::new("counter");
        let n = sys.int_var("n", 0, limit);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        sys.add_trans(Expr::next(n).eq(Expr::ite(
            Expr::var(n).lt(Expr::int(limit)),
            Expr::var(n).add(Expr::int(1)),
            Expr::var(n),
        )));
        (sys, n)
    }

    #[test]
    fn reachability_proves_invariant() {
        let (sys, n) = counter(5);
        let r = check_invariant_t(
            &sys,
            &Expr::var(n).le(Expr::int(5)),
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(r.holds(), "{r}");
    }

    #[test]
    fn reachability_finds_shortest_violation() {
        let (sys, n) = counter(5);
        let r = check_invariant_t(
            &sys,
            &Expr::var(n).lt(Expr::int(3)),
            &CheckOptions::default(),
        )
        .unwrap();
        let t = r.trace().expect("violated");
        assert_eq!(t.len(), 4, "shortest path is 0,1,2,3:\n{t}");
        assert_eq!(t.value(3, "n"), Some(&Value::Int(3)));
    }

    #[test]
    fn unreachable_range_values_ignored() {
        // n cycles 0..3 inside range 0..7: G(n <= 3) holds.
        let mut sys = System::new("mod");
        let n = sys.int_var("n", 0, 7);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        sys.add_trans(Expr::next(n).eq(Expr::ite(
            Expr::var(n).ge(Expr::int(3)),
            Expr::int(0),
            Expr::var(n).add(Expr::int(1)),
        )));
        let r = check_invariant_t(
            &sys,
            &Expr::var(n).le(Expr::int(3)),
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(r.holds(), "{r}");
    }

    #[test]
    fn ctl_ef_and_ag() {
        let (sys, n) = counter(3);
        let r = check_ctl_t(
            &sys,
            &Ctl::atom(Expr::var(n).eq(Expr::int(3))).ef(),
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(r.holds(), "{r}");
        let r = check_ctl_t(
            &sys,
            &Ctl::atom(Expr::var(n).le(Expr::int(3))).ag(),
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(r.holds(), "{r}");
        let r = check_ctl_t(
            &sys,
            &Ctl::atom(Expr::var(n).le(Expr::int(2))).ag(),
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(r.violated(), "{r}");
    }

    #[test]
    fn ctl_nondeterminism_ex_vs_ax() {
        // x unconstrained: from any state both next values possible.
        let mut sys = System::new("free");
        let x = sys.bool_var("x");
        sys.add_init(Expr::var(x).not());
        let ex_x = Ctl::atom(Expr::var(x)).ex();
        let r = check_ctl_t(&sys, &ex_x, &CheckOptions::default()).unwrap();
        assert!(r.holds(), "EX x: {r}");
        let ax_x = Ctl::atom(Expr::var(x)).ax();
        let r = check_ctl_t(&sys, &ax_x, &CheckOptions::default()).unwrap();
        assert!(r.violated(), "AX x: {r}");
    }

    #[test]
    fn ctl_fairness_restricts_paths() {
        // x fully nondeterministic; AF x fails without fairness but holds
        // when fairness demands x infinitely often.
        let mut sys = System::new("fair");
        let x = sys.bool_var("x");
        sys.add_init(Expr::var(x).not());
        let af_x = Ctl::atom(Expr::var(x)).af();
        let r = check_ctl_t(&sys, &af_x, &CheckOptions::default()).unwrap();
        assert!(r.violated(), "AF x without fairness: {r}");
        sys.add_fairness(Expr::var(x));
        let r = check_ctl_t(&sys, &af_x, &CheckOptions::default()).unwrap();
        assert!(r.holds(), "AF x with fairness: {r}");
    }

    #[test]
    fn ltl_complete_verdicts() {
        // Oscillator: G F x holds, F G x fails with a lasso trace.
        let mut sys = System::new("flip");
        let x = sys.bool_var("x");
        sys.add_init(Expr::var(x));
        sys.add_trans(Expr::next(x).eq(Expr::var(x).not()));
        let gfx = Ltl::atom(Expr::var(x)).eventually().always();
        let r = check_ltl_t(&sys, &gfx, &CheckOptions::default()).unwrap();
        assert!(r.holds(), "G F x: {r}");
        let fgx = Ltl::atom(Expr::var(x)).always().eventually();
        let r = check_ltl_t(&sys, &fgx, &CheckOptions::default()).unwrap();
        let t = r.trace().expect("F G x violated");
        assert!(t.loop_back.is_some(), "lasso expected:\n{t}");
    }

    #[test]
    fn ltl_holds_where_bmc_was_unknown() {
        // The stabilizing system from the BMC tests: BDD proves F G x.
        let mut sys = System::new("stabilize");
        let x = sys.bool_var("x");
        let done = sys.bool_var("done");
        sys.add_init(Expr::var(x).and(Expr::var(done).not()));
        sys.add_trans(Expr::var(done).implies(Expr::next(done)));
        sys.add_trans(Expr::next(done).implies(Expr::next(x)));
        sys.add_trans(
            Expr::next(done)
                .not()
                .implies(Expr::next(x).eq(Expr::var(x).not())),
        );
        sys.add_fairness(Expr::var(done));
        let phi = Ltl::atom(Expr::var(x)).always().eventually();
        let r = check_ltl_t(&sys, &phi, &CheckOptions::default()).unwrap();
        assert!(r.holds(), "{r}");
    }

    #[test]
    fn frozen_params_in_bdd_engine() {
        // Step counter: BDD proves safety over all parameter values.
        let mut sys = System::new("param");
        let n = sys.int_var("n", 0, 10);
        let p = sys.int_param("p", 1, 2);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        sys.add_trans(Expr::next(n).eq(Expr::ite(
            Expr::var(n).le(Expr::int(8)),
            Expr::var(n).add(Expr::var(p)),
            Expr::var(n),
        )));
        let r = check_invariant_t(
            &sys,
            &Expr::var(n).le(Expr::int(10)),
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(r.holds(), "{r}");
        let r = check_invariant_t(
            &sys,
            &Expr::var(n).ne(Expr::int(9)),
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(r.violated(), "p=1 reaches 9: {r}");
    }

    #[test]
    fn real_vars_rejected() {
        let mut sys = System::new("real");
        sys.real_var("r");
        assert!(SymbolicSystem::new(&sys).is_err());
    }

    #[test]
    fn monolithic_matches_partitioned() {
        let (sys, n) = counter(5);
        for p in [Expr::var(n).le(Expr::int(5)), Expr::var(n).lt(Expr::int(3))] {
            let part = check_invariant_t(&sys, &p, &CheckOptions::default()).unwrap();
            let mono = check_invariant_t(
                &sys,
                &p,
                &CheckOptions::default().with_bdd_partitioned(false),
            )
            .unwrap();
            assert_eq!(part, mono, "partitioned vs monolithic on {p}");
        }
    }

    #[test]
    fn partitioned_builds_multiple_clusters() {
        // Independent counters land in separate partitions (their update
        // BDDs stay tiny, so adjacent clusters may merge — but never into
        // one monolith spanning all 6 variables given the node cap).
        let mut sys = System::new("many");
        for name in ["a", "b", "c", "d", "e", "f"] {
            let v = sys.int_var(name, 0, 255);
            sys.add_init(Expr::var(v).eq(Expr::int(0)));
            sys.add_trans(Expr::next(v).eq(Expr::ite(
                Expr::var(v).lt(Expr::int(255)),
                Expr::var(v).add(Expr::int(1)),
                Expr::int(0),
            )));
        }
        let enc = SymbolicSystem::new(&sys).unwrap();
        assert!(
            enc.partition_count() >= 2,
            "expected a partitioned relation, got {} cluster(s)",
            enc.partition_count()
        );
    }

    #[test]
    fn tiny_node_ceiling_is_prompt_unknown() {
        let (sys, n) = counter(5);
        let opts = CheckOptions::default().with_max_bdd_nodes(16);
        let r = check_invariant_t(&sys, &Expr::var(n).le(Expr::int(5)), &opts).unwrap();
        assert_eq!(
            r,
            CheckResult::Unknown(UnknownReason::ResourceExhausted),
            "poisoned manager must demote to ResourceExhausted, not Holds"
        );
    }

    #[test]
    fn forced_sift_keeps_verdicts() {
        // A threshold of 1 forces a sift on every reachability ring; the
        // verdicts and trace must match the unsifted run exactly.
        let (sys, n) = counter(12);
        let sifted = CheckOptions::default().with_bdd_sift_threshold(1);
        let plain = CheckOptions::default().with_bdd_sift(false);
        for p in [
            Expr::var(n).le(Expr::int(12)),
            Expr::var(n).lt(Expr::int(7)),
        ] {
            let a = check_invariant_t(&sys, &p, &sifted).unwrap();
            let b = check_invariant_t(&sys, &p, &plain).unwrap();
            assert_eq!(a, b, "sift changed the verdict on {p}");
        }
    }
}
