//! Parameter synthesis over frozen variables.
//!
//! The paper (§4.2, case study 1) asks: *"find safe non-zero values for
//! `p`, given the property and `k = 1`, `m = 1` — the system suggests
//! `p ∈ {1, 2}`."* This module implements that workflow: enumerate the
//! (finite) assignments of chosen frozen parameters, verify the property
//! under each assignment with a complete engine, and partition the space
//! into safe and unsafe values with witnesses for the unsafe ones.
//!
//! Assignments are indexed lazily in odometer order ([`AssignmentSpace`]):
//! the sweep decodes assignment `i` on demand instead of materializing the
//! cross-product up front. They are independent, so the sweep shards them
//! over a worker pool ([`CheckOptions::jobs`], default
//! `available_parallelism()`); the verdict vector keeps odometer order
//! regardless of which worker finished first, so parallel output is
//! identical to a `jobs = 1` run. [`synthesize_first_safe`] additionally
//! stops the sweep as soon as one SAFE assignment is found, cancelling
//! outstanding workers cooperatively (their slots report
//! [`UnknownReason::Cancelled`]).
//!
//! For invariants under the k-induction engine the sweep defaults to the
//! **incremental** path ([`crate::incremental`]): each worker keeps one
//! assumption-pinned [`PinnedKInduction`] engine for its whole shard, so
//! learned clauses and solver heuristics transfer between assignments, and
//! unsat-core pruning lets assignments differing only in parameters that
//! never entered a proof inherit the `Holds` verdict without a solve.
//! `CheckOptions::with_incremental(false)` forces the original
//! clone-per-assignment path; with [`CheckOptions::certify`] every
//! incremental verdict (inherited ones included) is re-proved with fresh
//! proof-logged solvers before being reported.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use verdict_ring::{ring, Consumer, Doorbell, Published, PublishedReader};
use verdict_sat::ClauseHub;
use verdict_ts::{Expr, Ltl, System, Trace, Value, VarId};

use verdict_journal::fault;

use crate::durable::Durability;
use crate::incremental::{HoldsPattern, PinnedKInduction, PinnedOutcome};
use crate::result::{Budget, CheckOptions, CheckResult, McError, UnknownReason};
use crate::stats::RuntimeCounters;

/// The property being synthesized against.
#[derive(Clone, Debug)]
pub enum Property {
    /// `G p` for a boolean state expression `p`.
    Invariant(Expr),
    /// An arbitrary LTL property.
    Ltl(Ltl),
}

/// Verdict for one parameter assignment.
#[derive(Clone, Debug)]
pub struct ParamVerdict {
    /// Values of the synthesized parameters, in the order given to
    /// [`synthesize`].
    pub values: Vec<Value>,
    /// The verification outcome under this assignment.
    pub result: CheckResult,
    /// Attempts spent on the verdict: 1 for a first-try result, more when
    /// a [`crate::RetryPolicy`] re-ran an infrastructure failure. Resumed
    /// verdicts keep the attempt count recorded in the journal.
    pub attempts: u32,
}

/// Aggregated synthesis output.
#[derive(Clone, Debug, Default)]
pub struct SynthesisResult {
    /// Names of the synthesized parameters.
    pub param_names: Vec<String>,
    /// One verdict per enumerated assignment.
    pub verdicts: Vec<ParamVerdict>,
    /// Parallel-runtime counters for the sweep: clause-sharing traffic
    /// summed over the workers' persistent solvers plus the collector's
    /// ring/parking activity. All zero for a sequential (`jobs = 1`)
    /// sweep without a pre-installed sharing hub.
    pub runtime: RuntimeCounters,
}

impl SynthesisResult {
    /// Assignments under which the property was proved.
    pub fn safe(&self) -> Vec<&[Value]> {
        self.verdicts
            .iter()
            .filter(|v| v.result.holds())
            .map(|v| v.values.as_slice())
            .collect()
    }

    /// Assignments with a counterexample.
    pub fn unsafe_values(&self) -> Vec<(&[Value], &Trace)> {
        self.verdicts
            .iter()
            .filter_map(|v| v.result.trace().map(|t| (v.values.as_slice(), t)))
            .collect()
    }

    /// True iff any assignment failed to get a verdict for a reason other
    /// than cooperative cancellation. Cancelled slots are the *expected*
    /// outcome of a successful [`synthesize_first_safe`] sweep (the tail
    /// is skipped on purpose), not a verification failure — see
    /// [`SynthesisResult::has_cancelled`] for those.
    pub fn has_unknown(&self) -> bool {
        self.verdicts
            .iter()
            .any(|v| matches!(&v.result, CheckResult::Unknown(r) if *r != UnknownReason::Cancelled))
    }

    /// True iff any assignment was skipped by cooperative cancellation
    /// (first-safe early exit or a caller stop flag).
    pub fn has_cancelled(&self) -> bool {
        self.verdicts
            .iter()
            .any(|v| matches!(&v.result, CheckResult::Unknown(UnknownReason::Cancelled)))
    }
}

impl fmt::Display for SynthesisResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "parameter synthesis over ({})",
            self.param_names.join(", ")
        )?;
        for v in &self.verdicts {
            let vals: Vec<String> = v.values.iter().map(Value::to_string).collect();
            let verdict = match &v.result {
                CheckResult::Holds => "SAFE".to_string(),
                CheckResult::Violated(_) => "UNSAFE".to_string(),
                CheckResult::Unknown(UnknownReason::Cancelled) => "SKIPPED (cancelled)".to_string(),
                CheckResult::Unknown(r) => format!("UNKNOWN ({r})"),
            };
            writeln!(f, "  ({}) -> {verdict}", vals.join(", "))?;
        }
        Ok(())
    }
}

/// The complete engine used per assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SynthesisEngine {
    /// k-induction (safety only).
    KInduction,
    /// BDD fixpoints (safety and LTL).
    Bdd,
    /// Explicit state (safety and LTL; tiny models only).
    Explicit,
}

impl SynthesisEngine {
    /// Stable lowercase tag used in journal headers.
    pub fn tag(self) -> &'static str {
        match self {
            SynthesisEngine::KInduction => "kind",
            SynthesisEngine::Bdd => "bdd",
            SynthesisEngine::Explicit => "explicit",
        }
    }

    /// The [`EngineKind`](crate::engine::EngineKind) this synthesis engine
    /// dispatches to.
    pub fn kind(self) -> crate::engine::EngineKind {
        match self {
            SynthesisEngine::KInduction => crate::engine::EngineKind::KInduction,
            SynthesisEngine::Bdd => crate::engine::EngineKind::Bdd,
            SynthesisEngine::Explicit => crate::engine::EngineKind::Explicit,
        }
    }
}

/// The assignment cross-product in odometer order (the first parameter
/// varies fastest — the order the original sequential sweep visited, which
/// callers and tests rely on), indexed lazily: assignment `i` is decoded
/// from its mixed-radix index on demand, so the sweep never materializes
/// the whole product.
#[derive(Clone, Debug)]
pub struct AssignmentSpace {
    domains: Vec<Vec<Value>>,
    total: usize,
}

impl AssignmentSpace {
    /// Builds the space over the given per-parameter domains. Errors if
    /// the product size overflows `usize`.
    pub fn new(domains: Vec<Vec<Value>>) -> Result<AssignmentSpace, McError> {
        let mut total = 1usize;
        for d in &domains {
            total = total
                .checked_mul(d.len())
                .ok_or_else(|| McError("parameter space size overflows usize".to_string()))?;
        }
        Ok(AssignmentSpace { domains, total })
    }

    /// Number of assignments in the space (1 for an empty parameter list:
    /// the single empty assignment).
    pub fn len(&self) -> usize {
        self.total
    }

    /// True iff the space has no assignments (some domain is empty).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Decodes assignment `idx` (odometer order, first parameter fastest).
    pub fn get(&self, idx: usize) -> Vec<Value> {
        debug_assert!(idx < self.total);
        let mut i = idx;
        self.domains
            .iter()
            .map(|d| {
                let v = d[i % d.len()].clone();
                i /= d.len();
                v
            })
            .collect()
    }

    /// All assignments, lazily, in odometer order.
    pub fn iter(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.total).map(|i| self.get(i))
    }
}

/// Clones `sys` with `params` pinned to `assignment` via INVAR
/// constraints: frozen variables are constant, so INVAR equals INIT on
/// executions, but INVAR also constrains free-start engines (k-induction's
/// step case).
pub(crate) fn pin_system(sys: &System, params: &[VarId], assignment: &[Value]) -> System {
    let mut pinned = sys.clone();
    for (&p, v) in params.iter().zip(assignment) {
        pinned.add_invar(Expr::var(p).eq(Expr::Const(v.clone())));
    }
    pinned
}

/// Verifies the property on `sys` with `params` pinned to `assignment`.
fn check_assignment(
    sys: &System,
    params: &[VarId],
    assignment: &[Value],
    property: &Property,
    engine: SynthesisEngine,
    opts: &CheckOptions,
) -> Result<CheckResult, McError> {
    let pinned = pin_system(sys, params, assignment);
    // Per-assignment counters land in a scratch sink: sweep-level
    // observability tracks verdicts and retries, not per-pin solver work.
    let mut stats = crate::stats::Stats::default();
    let eng = crate::engine::engine(engine.kind());
    match property {
        Property::Invariant(p) => eng.check_invariant(&pinned, p, opts, &mut stats),
        Property::Ltl(_) if engine == SynthesisEngine::KInduction => Err(McError(
            "k-induction synthesizes safety properties only".to_string(),
        )),
        Property::Ltl(phi) => eng.check_ltl(&pinned, phi, opts, &mut stats),
    }
}

fn report_panic(assignment: &[Value], payload: &(dyn std::any::Any + Send)) {
    let msg: &str = if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    };
    let vals: Vec<String> = assignment.iter().map(Value::to_string).collect();
    eprintln!(
        "verdict-mc: synthesis worker panicked on ({}): {msg}",
        vals.join(", ")
    );
}

/// A contained check outcome plus the induction depth when the engine
/// reports one — recorded in the journal so a certified resume can
/// re-prove the verdict at that depth.
struct Checked {
    result: CheckResult,
    depth: Option<usize>,
}

impl Checked {
    fn plain(result: CheckResult) -> Checked {
        Checked {
            result,
            depth: None,
        }
    }
}

/// [`check_assignment`] with panic containment: an engine crash on one
/// assignment becomes `Unknown(EngineFailure)` for that slot instead of
/// poisoning the whole sweep (the payload is reported on stderr).
fn check_assignment_contained(
    sys: &System,
    params: &[VarId],
    assignment: &[Value],
    property: &Property,
    engine: SynthesisEngine,
    opts: &CheckOptions,
) -> Result<Checked, McError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // Fault-injection probe at site `mc.synth.worker`, inside the
        // containment boundary so an injected panic exercises it.
        fault::panic_if_armed("mc.synth.worker");
        check_assignment(sys, params, assignment, property, engine, opts).map(Checked::plain)
    }))
    .unwrap_or_else(|payload| {
        report_panic(assignment, payload.as_ref());
        Ok(Checked::plain(CheckResult::Unknown(
            UnknownReason::EngineFailure,
        )))
    })
}

/// A worker's persistent incremental state: one lazily-built
/// [`PinnedKInduction`] engine plus a read handle on the sweep-wide pool
/// of transferable `Holds` patterns.
struct IncrementalChecker<'a> {
    engine: Option<PinnedKInduction<'a>>,
    sys: &'a System,
    params: &'a [VarId],
    prop: &'a Expr,
    patterns: PublishedReader<HoldsPattern>,
    /// Clause-sharing hub for sibling workers' base solvers; the engine
    /// attaches an endpoint when (re)built.
    hub: Option<Arc<ClauseHub>>,
}

impl IncrementalChecker<'_> {
    fn check(&mut self, assignment: &[Value], opts: &CheckOptions) -> Result<Checked, McError> {
        // Core-pruned inheritance: a previous Holds proof whose unsat
        // cores ignored every parameter this assignment differs in
        // transfers verbatim. The epoch-read store may serve a snapshot
        // one publish behind — a missed pattern only costs a redundant
        // solve, never a wrong answer.
        let inherited = self
            .patterns
            .read()
            .iter()
            .find(|p| p.matches(assignment))
            .map(|p| p.depth);
        if let Some(depth) = inherited {
            if !opts.certify {
                return Ok(Checked {
                    result: CheckResult::Holds,
                    depth: Some(depth),
                });
            }
            // Certification never trusts the transfer argument: re-prove
            // the inherited verdict at the recorded depth with fresh
            // proof-logged solvers; on failure fall through to a full
            // incremental solve.
            let budget = Budget::new(opts);
            let pinned = pin_system(self.sys, self.params, assignment);
            if crate::certify::recheck_induction(&pinned, self.prop, depth, &budget).is_ok() {
                return Ok(Checked {
                    result: CheckResult::Holds,
                    depth: Some(depth),
                });
            }
        }
        let engine = match &mut self.engine {
            Some(e) => e,
            None => {
                let mut e = PinnedKInduction::new(self.sys, self.params, self.prop)?;
                if let Some(hub) = &self.hub {
                    // Best-effort: a hub out of endpoints (e.g. after a
                    // panic-triggered rebuild) just means this worker
                    // solves without sharing.
                    e.attach_sharing(hub);
                }
                self.engine.insert(e)
            }
        };
        match engine.check(assignment, opts)? {
            PinnedOutcome::Violated(trace) => {
                if opts.certify {
                    let pinned = pin_system(self.sys, self.params, assignment);
                    Ok(Checked::plain(crate::certify::gate_invariant_cex(
                        &pinned, self.prop, trace,
                    )))
                } else {
                    Ok(Checked::plain(CheckResult::Violated(trace)))
                }
            }
            PinnedOutcome::Holds { depth, relevant } => {
                let result = if opts.certify {
                    let budget = Budget::new(opts);
                    let pinned = pin_system(self.sys, self.params, assignment);
                    crate::certify::gate_holds(
                        "k-induction",
                        crate::certify::recheck_induction(&pinned, self.prop, depth, &budget),
                    )
                } else {
                    CheckResult::Holds
                };
                if result.holds() && relevant.iter().any(|&r| !r) {
                    self.patterns.publish(HoldsPattern {
                        values: assignment.to_vec(),
                        relevant,
                        depth,
                    });
                }
                let depth = result.holds().then_some(depth);
                Ok(Checked { result, depth })
            }
            PinnedOutcome::Unknown(r) => Ok(Checked::plain(CheckResult::Unknown(r))),
        }
    }

    fn check_contained(
        &mut self,
        assignment: &[Value],
        opts: &CheckOptions,
    ) -> Result<Checked, McError> {
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Fault-injection probe, inside containment (see the clone
            // path in `check_assignment_contained`).
            fault::panic_if_armed("mc.synth.worker");
            self.check(assignment, opts)
        }));
        res.unwrap_or_else(|payload| {
            // The shared engine may be mid-update; rebuild it from scratch
            // on the next assignment rather than trusting its state.
            self.engine = None;
            report_panic(assignment, payload.as_ref());
            Ok(Checked::plain(CheckResult::Unknown(
                UnknownReason::EngineFailure,
            )))
        })
    }
}

/// One worker's checking strategy for the sweep.
enum Checker<'a> {
    /// Clone the system and pin parameters with INVAR per assignment.
    Clone,
    /// Shared-unrolling assumption pinning ([`crate::incremental`]).
    /// Boxed: the engine carries two unrollings and two solvers, far
    /// larger than the dataless `Clone` variant.
    Incremental(Box<IncrementalChecker<'a>>),
}

impl Checker<'_> {
    #[allow(clippy::too_many_arguments)]
    fn check(
        &mut self,
        sys: &System,
        params: &[VarId],
        assignment: &[Value],
        property: &Property,
        engine: SynthesisEngine,
        opts: &CheckOptions,
    ) -> Result<Checked, McError> {
        match self {
            Checker::Clone => {
                check_assignment_contained(sys, params, assignment, property, engine, opts)
            }
            Checker::Incremental(inc) => inc.check_contained(assignment, opts),
        }
    }

    /// [`Checker::check`] under the sweep's retry policy: a verdict of
    /// `Unknown` with a [retryable](UnknownReason::retryable) reason is
    /// re-run with escalated budgets (each failed attempt journaled)
    /// until it decides, stops being retryable, or the attempt cap is
    /// hit. Returns the final outcome and the attempts spent.
    #[allow(clippy::too_many_arguments)]
    fn check_with_retry(
        &mut self,
        sys: &System,
        params: &[VarId],
        idx: usize,
        assignment: &[Value],
        property: &Property,
        engine: SynthesisEngine,
        opts: &CheckOptions,
        durability: &Durability<'_>,
    ) -> Result<(Checked, u32), McError> {
        let max_attempts = opts.retry.as_ref().map_or(1, |p| p.max_attempts.max(1));
        let mut attempt = 1u32;
        loop {
            let run_opts = match &opts.retry {
                Some(policy) if attempt > 1 => policy.escalate(opts, attempt),
                _ => opts.clone(),
            };
            let checked = self.check(sys, params, assignment, property, engine, &run_opts)?;
            let reason = match &checked.result {
                CheckResult::Unknown(r) if r.retryable() => *r,
                _ => return Ok((checked, attempt)),
            };
            if attempt >= max_attempts {
                return Ok((checked, attempt));
            }
            durability.record_attempt(idx, attempt, reason);
            if let Some(policy) = &opts.retry {
                let pause = policy.backoff_for(idx as u64, attempt + 1);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
            attempt += 1;
        }
    }

    /// Clause-sharing counters of this worker's persistent solver, read
    /// once at worker exit (the clone path creates throwaway engines and
    /// reports nothing here).
    fn runtime_counters(&self) -> RuntimeCounters {
        match self {
            Checker::Clone => RuntimeCounters::default(),
            Checker::Incremental(inc) => match &inc.engine {
                Some(e) => {
                    let s = e.base_solver_stats();
                    RuntimeCounters {
                        clauses_exported: s.clauses_exported,
                        clauses_imported: s.clauses_imported,
                        imports_rejected: s.imports_rejected,
                        import_hits: s.import_hits,
                        ..RuntimeCounters::default()
                    }
                }
                None => RuntimeCounters::default(),
            },
        }
    }
}

/// Shards the assignments of `space` over `opts.effective_jobs()` workers
/// and returns the verdicts in input (odometer) order, plus the sweep's
/// parallel-runtime counters.
///
/// Each worker publishes results into its own SPSC ring and rings a
/// shared [`Doorbell`]; the collector parks between results instead of
/// polling a channel, draining whole batches per wakeup. In incremental
/// mode the workers' base solvers exchange learnt clauses through a
/// [`ClauseHub`] (all workers unroll the identical unpinned system, and
/// assumption pins never enter the clause database, so everything any of
/// them learns is sound for the others — the solver-side prefix guard
/// enforces exactly that).
///
/// With `stop_at_first_safe`, the first `Holds` verdict raises a shared
/// stop flag: outstanding workers exit cooperatively and unvisited
/// assignments report `Unknown(Cancelled)`. A worker error is returned for
/// the smallest-index erroring assignment, matching what the sequential
/// sweep would have hit first.
#[allow(clippy::too_many_arguments)]
fn run_assignments(
    sys: &System,
    params: &[VarId],
    space: &AssignmentSpace,
    property: &Property,
    engine: SynthesisEngine,
    opts: &CheckOptions,
    stop_at_first_safe: bool,
    durability: &Durability<'_>,
) -> Result<(Vec<ParamVerdict>, RuntimeCounters), McError> {
    if matches!(
        (property, engine),
        (Property::Ltl(_), SynthesisEngine::KInduction)
    ) {
        return Err(McError(
            "k-induction synthesizes safety properties only".to_string(),
        ));
    }
    // The incremental path handles invariants under k-induction and is
    // the default there; `with_incremental(false)` forces the clone path.
    let inc_prop: Option<&Expr> = match (property, engine) {
        (Property::Invariant(p), SynthesisEngine::KInduction)
            if opts.incremental.unwrap_or(true) =>
        {
            Some(p)
        }
        _ => None,
    };
    let patterns = Arc::new(Published::<HoldsPattern>::new());
    let make_checker = |hub: Option<Arc<ClauseHub>>| match inc_prop {
        Some(prop) => Checker::Incremental(Box::new(IncrementalChecker {
            engine: None,
            sys,
            params,
            prop,
            patterns: patterns.reader(),
            hub,
        })),
        None => Checker::Clone,
    };

    let n = space.len();
    let jobs = opts.effective_jobs().min(n.max(1));
    if jobs <= 1 {
        // Sequential: no hub unless the caller pre-installed one, so a
        // `jobs = 1` sweep stays deterministic and sharing-free.
        let mut checker = make_checker(if opts.sharing {
            opts.share_hub.clone()
        } else {
            None
        });
        let mut verdicts = Vec::with_capacity(n);
        let mut found_safe = false;
        for idx in 0..n {
            let a = space.get(idx);
            let (result, attempts) = if let Some((result, attempts)) = durability.resumed(idx) {
                // Already durably decided by a previous run: skip the
                // solve, don't re-journal.
                found_safe |= result.holds();
                (result, attempts)
            } else if found_safe && stop_at_first_safe {
                (CheckResult::Unknown(UnknownReason::Cancelled), 0)
            } else {
                let (checked, attempts) = checker
                    .check_with_retry(sys, params, idx, &a, property, engine, opts, durability)?;
                found_safe |= checked.result.holds();
                durability.record_verdict(idx, &a, &checked.result, attempts, checked.depth);
                (checked.result, attempts)
            };
            verdicts.push(ParamVerdict {
                values: a,
                result,
                attempts,
            });
        }
        return Ok((verdicts, checker.runtime_counters()));
    }

    let pool_stop = Arc::new(AtomicBool::new(false));
    let caller_stop = opts.stop.clone();
    // Learned-clause sharing between the workers' persistent base
    // solvers (incremental mode only — the clone path builds per-pin
    // systems whose clause streams differ, so there is nothing sound to
    // exchange). Sized 2× jobs: a worker whose engine was rebuilt after
    // a contained panic takes a fresh endpoint.
    let hub = (opts.sharing && opts.share_hub.is_none() && inc_prop.is_some())
        .then(|| ClauseHub::new(jobs * 2));
    let worker_opts = CheckOptions {
        stop: Some(pool_stop.clone()),
        ..opts.clone()
    };
    let next = AtomicUsize::new(0);
    type Slot = Result<(CheckResult, u32), McError>;
    let mut slots: Vec<Option<Slot>> = (0..n).map(|_| None).collect();

    // One result ring per worker plus a shared doorbell (built on this
    // thread: the collector below parks on it). Workers' sharing
    // counters are folded into `worker_runtime` once, at worker exit.
    let mut producers = Vec::with_capacity(jobs);
    let mut consumers: Vec<Consumer<(usize, Slot)>> = Vec::with_capacity(jobs);
    for _ in 0..jobs {
        let (p, c) = ring::<(usize, Slot)>(64);
        producers.push(p);
        consumers.push(c);
    }
    let bell = Doorbell::new();
    let finished = AtomicUsize::new(0);
    let worker_runtime = Mutex::new(RuntimeCounters::default());

    // Increments the finished count and rings the collector no matter
    // how the worker exits, so a dead worker can never strand a parked
    // collector.
    struct FinishGuard<'a> {
        finished: &'a AtomicUsize,
        bell: &'a Doorbell,
    }
    impl Drop for FinishGuard<'_> {
        fn drop(&mut self) {
            self.finished.fetch_add(1, Ordering::Release);
            self.bell.ring();
        }
    }

    let mut runtime = std::thread::scope(|scope| {
        let make_checker = &make_checker;
        for mut tx in producers {
            let next = &next;
            let pool_stop = pool_stop.clone();
            let worker_opts = worker_opts.clone();
            let hub = hub.clone();
            let (bell, finished, worker_runtime) = (&bell, &finished, &worker_runtime);
            scope.spawn(move || {
                let _guard = FinishGuard { finished, bell };
                // One persistent checker per worker: in incremental mode
                // its solvers survive every assignment this worker claims.
                let mut checker = make_checker(hub);
                // Publish a result and ring the collector; when the ring
                // is full (collector far behind), nudge it and yield
                // until a slot frees up — the payload is never dropped.
                let send = |tx: &mut verdict_ring::Producer<(usize, Slot)>,
                            mut msg: (usize, Slot)| {
                    loop {
                        match tx.push(msg) {
                            Ok(()) => break,
                            Err(back) => {
                                msg = back;
                                bell.ring();
                                std::thread::yield_now();
                            }
                        }
                    }
                    bell.ring();
                };
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    if let Some((result, attempts)) = durability.resumed(idx) {
                        // Durably decided by a previous run: skip the
                        // solve, don't re-journal.
                        if stop_at_first_safe && result.holds() {
                            pool_stop.store(true, Ordering::Relaxed);
                        }
                        send(&mut tx, (idx, Ok((result, attempts))));
                        continue;
                    }
                    if pool_stop.load(Ordering::Relaxed) {
                        // The sweep is already decided (first-safe hit or
                        // caller cancellation); don't start new work.
                        send(
                            &mut tx,
                            (idx, Ok((CheckResult::Unknown(UnknownReason::Cancelled), 0))),
                        );
                        continue;
                    }
                    let a = space.get(idx);
                    let res = checker.check_with_retry(
                        sys,
                        params,
                        idx,
                        &a,
                        property,
                        engine,
                        &worker_opts,
                        durability,
                    );
                    let res = match res {
                        Ok((checked, attempts)) => {
                            if stop_at_first_safe && checked.result.holds() {
                                pool_stop.store(true, Ordering::Relaxed);
                            }
                            durability.record_verdict(
                                idx,
                                &a,
                                &checked.result,
                                attempts,
                                checked.depth,
                            );
                            Ok((checked.result, attempts))
                        }
                        Err(e) => Err(e),
                    };
                    send(&mut tx, (idx, res));
                }
                let mine = checker.runtime_counters();
                worker_runtime
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .add(mine);
            });
        }

        let mut received = 0;
        let mut collector = RuntimeCounters::default();
        // Only wake on a timer when there is a caller-side stop flag
        // that nobody rings for; otherwise park until results arrive.
        let tick = caller_stop.as_ref().map(|_| Duration::from_millis(25));
        loop {
            // Forward caller-side cancellation into the pool.
            if caller_stop
                .as_ref()
                .is_some_and(|s| s.load(Ordering::Relaxed))
            {
                pool_stop.store(true, Ordering::Relaxed);
            }
            let mut batch = 0u64;
            for rx in consumers.iter_mut() {
                let got = rx.drain(|(idx, res)| {
                    slots[idx] = Some(res);
                });
                batch += got as u64;
                received += got;
            }
            if batch > 0 {
                collector.ring_messages += batch;
                collector.ring_batches += 1;
            }
            if received >= n {
                break;
            }
            if batch == 0 && finished.load(Ordering::Acquire) >= jobs {
                // Every worker exited and the rings are dry: a worker
                // died without reporting (its slots stay `None`).
                break;
            }
            bell.wait(tick, || {
                finished.load(Ordering::Acquire) >= jobs
                    || consumers.iter_mut().any(|rx| !rx.is_empty())
            });
        }
        let d = bell.counters();
        collector.parks = d.parks;
        collector.wakes = d.wakes;
        collector.spurious_wakeups = d.spurious_wakeups;
        collector
    });
    runtime.add(*worker_runtime.lock().unwrap_or_else(|e| e.into_inner()));

    let mut verdicts = Vec::with_capacity(n);
    for (idx, slot) in slots.into_iter().enumerate() {
        let values = space.get(idx);
        match slot {
            Some(Ok((result, attempts))) => verdicts.push(ParamVerdict {
                values,
                result,
                attempts,
            }),
            Some(Err(e)) => return Err(e),
            None => verdicts.push(ParamVerdict {
                values,
                result: CheckResult::Unknown(UnknownReason::Cancelled),
                attempts: 0,
            }),
        }
    }
    Ok((verdicts, runtime))
}

pub(crate) fn validate_and_enumerate(
    sys: &System,
    params: &[VarId],
) -> Result<(Vec<String>, AssignmentSpace), McError> {
    for &p in params {
        if !sys.sort_of(p).is_finite() {
            return Err(McError(format!(
                "cannot enumerate real-sorted parameter {}",
                sys.name_of(p)
            )));
        }
    }
    let domains: Vec<Vec<Value>> = params.iter().map(|&p| sys.sort_of(p).values()).collect();
    let names = params.iter().map(|&p| sys.name_of(p).to_string()).collect();
    Ok((names, AssignmentSpace::new(domains)?))
}

/// Enumerates every assignment of `params` (all must have finite sorts)
/// and verifies the property under each, sharding assignments over
/// `opts.effective_jobs()` worker threads.
///
/// The remaining frozen variables stay symbolic (universally quantified by
/// the underlying engine). Verdict order is the sequential odometer order
/// whatever the worker count.
pub fn synthesize(
    sys: &System,
    params: &[VarId],
    property: &Property,
    engine: SynthesisEngine,
    opts: &CheckOptions,
) -> Result<SynthesisResult, McError> {
    synthesize_durable(sys, params, property, engine, opts, &Durability::none())
}

/// [`synthesize`] with durability hooks: completed verdicts are appended
/// to `durability.recorder`'s journal as workers finish, and assignments
/// already decided in `durability.resume` are skipped (their recorded
/// verdict and attempt count reported as-is).
pub fn synthesize_durable(
    sys: &System,
    params: &[VarId],
    property: &Property,
    engine: SynthesisEngine,
    opts: &CheckOptions,
    durability: &Durability<'_>,
) -> Result<SynthesisResult, McError> {
    let (param_names, space) = validate_and_enumerate(sys, params)?;
    let (verdicts, runtime) = run_assignments(
        sys, params, &space, property, engine, opts, false, durability,
    )?;
    Ok(SynthesisResult {
        param_names,
        verdicts,
        runtime,
    })
}

/// Like [`synthesize`], but stops the sweep at the first SAFE assignment:
/// the winning worker raises a shared stop flag, outstanding workers exit
/// cooperatively, and every assignment not fully checked reports
/// `Unknown(Cancelled)`.
///
/// Use this when any one safe configuration is enough (the paper's
/// "suggest safe parameters" workflow) — on sweeps where most values are
/// safe it turns a full cross-product scan into a near-constant-time
/// query.
pub fn synthesize_first_safe(
    sys: &System,
    params: &[VarId],
    property: &Property,
    engine: SynthesisEngine,
    opts: &CheckOptions,
) -> Result<SynthesisResult, McError> {
    synthesize_first_safe_durable(sys, params, property, engine, opts, &Durability::none())
}

/// [`synthesize_first_safe`] with durability hooks (see
/// [`synthesize_durable`]). A resumed SAFE verdict stops the sweep just
/// like a freshly proved one.
pub fn synthesize_first_safe_durable(
    sys: &System,
    params: &[VarId],
    property: &Property,
    engine: SynthesisEngine,
    opts: &CheckOptions,
    durability: &Durability<'_>,
) -> Result<SynthesisResult, McError> {
    let (param_names, space) = validate_and_enumerate(sys, params)?;
    let (verdicts, runtime) = run_assignments(
        sys, params, &space, property, engine, opts, true, durability,
    )?;
    Ok(SynthesisResult {
        param_names,
        verdicts,
        runtime,
    })
}

/// Convenience for the falsification direction the paper also uses: leave
/// the parameters symbolic and let BMC pick violating values (they appear
/// in the returned trace, constant over time since parameters are frozen).
pub fn find_violating_params(
    sys: &System,
    property: &Property,
    opts: &CheckOptions,
) -> Result<CheckResult, McError> {
    let eng = crate::engine::engine(crate::engine::EngineKind::Bmc);
    let mut stats = crate::stats::Stats::default();
    match property {
        Property::Invariant(p) => eng.check_invariant(sys, p, opts, &mut stats),
        Property::Ltl(phi) => eng.check_ltl(sys, phi, opts, &mut stats),
    }
}

/// Guard for empty parameter lists in [`synthesize`] callers: with no
/// parameters the function still runs exactly one verification.
pub fn no_params_is_single_check(result: &SynthesisResult) -> bool {
    result.param_names.is_empty() && result.verdicts.len() == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Step counter: n += p (saturating at 10); G(n != target) safety.
    fn step_counter() -> (System, VarId) {
        let mut sys = System::new("step");
        let n = sys.int_var("n", 0, 10);
        let p = sys.int_param("p", 1, 3);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        sys.add_trans(Expr::next(n).eq(Expr::ite(
            Expr::var(n).le(Expr::int(7)),
            Expr::var(n).add(Expr::var(p)),
            Expr::var(n),
        )));
        (sys, p)
    }

    #[test]
    fn synthesis_partitions_parameter_space() {
        let (sys, p) = step_counter();
        // n hits 5 exactly iff p=1 (0,1,..) or p=5... p∈{1..3}: p=1 yes,
        // p=2 (0,2,4,6,8,10) no, p=3 (0,3,6,9,10?) 9+3 clamps... n<=7
        // guard: from 9 no step (9>7) stays 9. So p=3 path: 0,3,6,9,9...
        let prop = Property::Invariant(Expr::var(sys.var_by_name("n").unwrap()).ne(Expr::int(5)));
        let r = synthesize(
            &sys,
            &[p],
            &prop,
            SynthesisEngine::KInduction,
            &CheckOptions::default(),
        )
        .unwrap();
        assert_eq!(r.verdicts.len(), 3);
        let safe = r.safe();
        assert_eq!(safe.len(), 2, "{r}");
        assert!(safe.contains(&&[Value::Int(2)][..]));
        assert!(safe.contains(&&[Value::Int(3)][..]));
        let unsafe_ = r.unsafe_values();
        assert_eq!(unsafe_.len(), 1);
        assert_eq!(unsafe_[0].0, &[Value::Int(1)][..]);
        assert!(!r.has_unknown());
    }

    #[test]
    fn engines_agree_on_synthesis() {
        let (sys, p) = step_counter();
        let prop = Property::Invariant(Expr::var(sys.var_by_name("n").unwrap()).ne(Expr::int(6)));
        let opts = CheckOptions::default();
        let a = synthesize(&sys, &[p], &prop, SynthesisEngine::KInduction, &opts).unwrap();
        let b = synthesize(&sys, &[p], &prop, SynthesisEngine::Bdd, &opts).unwrap();
        let c = synthesize(&sys, &[p], &prop, SynthesisEngine::Explicit, &opts).unwrap();
        for ((x, y), z) in a.verdicts.iter().zip(&b.verdicts).zip(&c.verdicts) {
            assert_eq!(x.result.holds(), y.result.holds(), "kind vs bdd");
            assert_eq!(y.result.holds(), z.result.holds(), "bdd vs explicit");
        }
    }

    #[test]
    fn ltl_synthesis_via_bdd() {
        // p chooses whether x eventually latches: F G x holds iff p = 1.
        let mut sys = System::new("latchable");
        let x = sys.bool_var("x");
        let p = sys.int_param("p", 0, 1);
        sys.add_init(Expr::var(x));
        // p=1: x stays true. p=0: x flips forever.
        sys.add_trans(Expr::ite(
            Expr::var(p).eq(Expr::int(1)),
            Expr::next(x).eq(Expr::var(x)),
            Expr::next(x).eq(Expr::var(x).not()),
        ));
        let prop = Property::Ltl(Ltl::atom(Expr::var(x)).always().eventually());
        let r = synthesize(
            &sys,
            &[p],
            &prop,
            SynthesisEngine::Bdd,
            &CheckOptions::default(),
        )
        .unwrap();
        let safe = r.safe();
        assert_eq!(safe, vec![&[Value::Int(1)][..]], "{r}");
    }

    #[test]
    fn lazy_odometer_matches_eager_reference() {
        // The eager cross-product this sweep used to materialize, kept
        // here as the order oracle: first parameter varies fastest.
        fn eager(domains: &[Vec<Value>]) -> Vec<Vec<Value>> {
            let mut out = Vec::new();
            let mut indices = vec![0usize; domains.len()];
            'outer: loop {
                out.push(
                    indices
                        .iter()
                        .zip(domains)
                        .map(|(&i, d)| d[i].clone())
                        .collect(),
                );
                let mut pos = 0;
                loop {
                    if pos == indices.len() {
                        break 'outer;
                    }
                    indices[pos] += 1;
                    if indices[pos] < domains[pos].len() {
                        break;
                    }
                    indices[pos] = 0;
                    pos += 1;
                }
            }
            out
        }
        let domains = vec![
            vec![Value::Int(0), Value::Int(1), Value::Int(2)],
            vec![Value::Bool(false), Value::Bool(true)],
            vec![Value::Int(7), Value::Int(8)],
        ];
        let reference = eager(&domains);
        let space = AssignmentSpace::new(domains).unwrap();
        assert_eq!(space.len(), reference.len());
        for (i, a) in reference.iter().enumerate() {
            assert_eq!(&space.get(i), a, "index {i}");
        }
        assert_eq!(space.iter().collect::<Vec<_>>(), reference);
        // Empty parameter list = exactly one empty assignment.
        let empty = AssignmentSpace::new(Vec::new()).unwrap();
        assert_eq!(empty.len(), 1);
        assert!(empty.get(0).is_empty());
    }

    #[test]
    fn parallel_sweep_matches_sequential_order() {
        let (sys, p) = step_counter();
        let prop = Property::Invariant(Expr::var(sys.var_by_name("n").unwrap()).ne(Expr::int(5)));
        let baseline = synthesize(
            &sys,
            &[p],
            &prop,
            SynthesisEngine::KInduction,
            &CheckOptions::default().with_jobs(1),
        )
        .unwrap();
        for jobs in 2..=4 {
            let r = synthesize(
                &sys,
                &[p],
                &prop,
                SynthesisEngine::KInduction,
                &CheckOptions::default().with_jobs(jobs),
            )
            .unwrap();
            assert_eq!(r.verdicts.len(), baseline.verdicts.len());
            for (x, y) in baseline.verdicts.iter().zip(&r.verdicts) {
                assert_eq!(x.values, y.values, "jobs={jobs}");
                assert_eq!(x.result.holds(), y.result.holds(), "jobs={jobs}");
                assert_eq!(x.result.violated(), y.result.violated(), "jobs={jobs}");
            }
        }
    }

    #[test]
    fn incremental_sweep_matches_clone_sweep() {
        let (sys, p) = step_counter();
        let prop = Property::Invariant(Expr::var(sys.var_by_name("n").unwrap()).ne(Expr::int(5)));
        for jobs in [1, 4] {
            for certify in [false, true] {
                let mut base = CheckOptions::default().with_jobs(jobs);
                if certify {
                    base = base.with_certify();
                }
                let cloned = synthesize(
                    &sys,
                    &[p],
                    &prop,
                    SynthesisEngine::KInduction,
                    &base.clone().with_incremental(false),
                )
                .unwrap();
                let inc = synthesize(
                    &sys,
                    &[p],
                    &prop,
                    SynthesisEngine::KInduction,
                    &base.with_incremental(true),
                )
                .unwrap();
                assert_eq!(cloned.verdicts.len(), inc.verdicts.len());
                for (x, y) in cloned.verdicts.iter().zip(&inc.verdicts) {
                    assert_eq!(x.values, y.values, "jobs={jobs} certify={certify}");
                    assert_eq!(
                        x.result.holds(),
                        y.result.holds(),
                        "jobs={jobs} certify={certify} values={:?}",
                        x.values
                    );
                    assert_eq!(
                        x.result.violated(),
                        y.result.violated(),
                        "jobs={jobs} certify={certify} values={:?}",
                        x.values
                    );
                }
            }
        }
    }

    #[test]
    fn core_pruning_agrees_with_clone_path() {
        // q is irrelevant to the property (it only drives the x toggle),
        // so the incremental sweep inherits q-siblings of each safe p via
        // core pruning — the verdict partition must still match the clone
        // path on the full 12-assignment product.
        let (mut sys, p) = step_counter();
        let q = sys.int_param("q", 0, 3);
        let x = sys.bool_var("x");
        sys.add_trans(Expr::next(x).eq(Expr::ite(
            Expr::var(q).ge(Expr::int(2)),
            Expr::var(x).not(),
            Expr::var(x),
        )));
        let prop = Property::Invariant(Expr::var(sys.var_by_name("n").unwrap()).ne(Expr::int(5)));
        let cloned = synthesize(
            &sys,
            &[p, q],
            &prop,
            SynthesisEngine::KInduction,
            &CheckOptions::default().with_jobs(1).with_incremental(false),
        )
        .unwrap();
        let inc = synthesize(
            &sys,
            &[p, q],
            &prop,
            SynthesisEngine::KInduction,
            &CheckOptions::default().with_jobs(1).with_incremental(true),
        )
        .unwrap();
        assert_eq!(cloned.verdicts.len(), 12);
        assert_eq!(inc.verdicts.len(), 12);
        for (x, y) in cloned.verdicts.iter().zip(&inc.verdicts) {
            assert_eq!(x.values, y.values);
            assert_eq!(x.result.holds(), y.result.holds(), "values={:?}", x.values);
            assert_eq!(
                x.result.violated(),
                y.result.violated(),
                "values={:?}",
                x.values
            );
        }
        // Inherited verdicts survive certification: every slot gets a
        // definitive verdict, none demoted to CertificateRejected.
        let certified = synthesize(
            &sys,
            &[p, q],
            &prop,
            SynthesisEngine::KInduction,
            &CheckOptions::default().with_jobs(1).with_certify(),
        )
        .unwrap();
        for v in &certified.verdicts {
            assert!(
                !matches!(
                    v.result,
                    CheckResult::Unknown(UnknownReason::CertificateRejected)
                ),
                "{certified}"
            );
        }
        assert!(!certified.has_unknown(), "{certified}");
    }

    #[test]
    fn first_safe_stops_sequential_sweep() {
        let (sys, p) = step_counter();
        // p=1 is unsafe, p=2 safe, p=3 safe: with jobs=1 the sweep must
        // check p=1 (UNSAFE), find p=2 SAFE, and skip p=3 as Cancelled.
        let prop = Property::Invariant(Expr::var(sys.var_by_name("n").unwrap()).ne(Expr::int(5)));
        let r = synthesize_first_safe(
            &sys,
            &[p],
            &prop,
            SynthesisEngine::KInduction,
            &CheckOptions::default().with_jobs(1),
        )
        .unwrap();
        assert_eq!(r.verdicts.len(), 3);
        assert!(r.verdicts[0].result.violated());
        assert!(r.verdicts[1].result.holds());
        assert!(matches!(
            r.verdicts[2].result,
            CheckResult::Unknown(UnknownReason::Cancelled)
        ));
        assert_eq!(r.safe().len(), 1);
    }

    #[test]
    fn cancelled_slots_do_not_count_as_unknown() {
        // Regression: a successful first-safe sweep used to report
        // has_unknown() because its skipped tail is Unknown(Cancelled) —
        // making every early exit look like a verification failure.
        let (sys, p) = step_counter();
        let prop = Property::Invariant(Expr::var(sys.var_by_name("n").unwrap()).ne(Expr::int(5)));
        let r = synthesize_first_safe(
            &sys,
            &[p],
            &prop,
            SynthesisEngine::KInduction,
            &CheckOptions::default().with_jobs(1),
        )
        .unwrap();
        assert!(matches!(
            r.verdicts[2].result,
            CheckResult::Unknown(UnknownReason::Cancelled)
        ));
        assert!(!r.has_unknown(), "{r}");
        assert!(r.has_cancelled());
        // Display distinguishes the skipped slot from a real unknown.
        let shown = r.to_string();
        assert!(shown.contains("SKIPPED (cancelled)"), "{shown}");
    }

    #[test]
    fn first_safe_parallel_finds_a_safe_value() {
        let (sys, p) = step_counter();
        let prop = Property::Invariant(Expr::var(sys.var_by_name("n").unwrap()).ne(Expr::int(5)));
        let r = synthesize_first_safe(
            &sys,
            &[p],
            &prop,
            SynthesisEngine::KInduction,
            &CheckOptions::default().with_jobs(3),
        )
        .unwrap();
        // Racing workers may complete more than one assignment before the
        // flag propagates, but at least one SAFE value must be reported
        // and no verdict may contradict the sequential partition.
        assert!(!r.safe().is_empty(), "{r}");
        for v in &r.verdicts {
            if v.values == [Value::Int(1)] {
                assert!(!v.result.holds());
            } else {
                assert!(!v.result.violated());
            }
        }
    }

    #[test]
    fn violating_params_found_symbolically() {
        let (sys, _) = step_counter();
        let prop = Property::Invariant(Expr::var(sys.var_by_name("n").unwrap()).ne(Expr::int(5)));
        let r = find_violating_params(&sys, &prop, &CheckOptions::default()).unwrap();
        let t = r.trace().expect("p=1 violates");
        assert_eq!(t.value(0, "p"), Some(&Value::Int(1)));
    }

    #[test]
    fn real_params_rejected_for_enumeration() {
        let mut sys = System::new("r");
        let p = sys.real_param("p");
        let prop = Property::Invariant(Expr::tt());
        let e = synthesize(
            &sys,
            &[p],
            &prop,
            SynthesisEngine::Bdd,
            &CheckOptions::default(),
        );
        assert!(e.is_err());
    }

    #[test]
    fn display_lists_verdicts() {
        let (sys, p) = step_counter();
        let prop = Property::Invariant(Expr::var(sys.var_by_name("n").unwrap()).ne(Expr::int(5)));
        let r = synthesize(
            &sys,
            &[p],
            &prop,
            SynthesisEngine::KInduction,
            &CheckOptions::default(),
        )
        .unwrap();
        let shown = r.to_string();
        assert!(shown.contains("SAFE"), "{shown}");
        assert!(shown.contains("UNSAFE"), "{shown}");
    }
}
