//! Parameter synthesis over frozen variables.
//!
//! The paper (§4.2, case study 1) asks: *"find safe non-zero values for
//! `p`, given the property and `k = 1`, `m = 1` — the system suggests
//! `p ∈ {1, 2}`."* This module implements that workflow: enumerate the
//! (finite) assignments of chosen frozen parameters, verify the property
//! under each assignment with a complete engine, and partition the space
//! into safe and unsafe values with witnesses for the unsafe ones.

use std::fmt;

use verdict_ts::{Expr, Ltl, System, Trace, Value, VarId};

use crate::result::{CheckOptions, CheckResult, McError, UnknownReason};

/// The property being synthesized against.
#[derive(Clone, Debug)]
pub enum Property {
    /// `G p` for a boolean state expression `p`.
    Invariant(Expr),
    /// An arbitrary LTL property.
    Ltl(Ltl),
}

/// Verdict for one parameter assignment.
#[derive(Clone, Debug)]
pub struct ParamVerdict {
    /// Values of the synthesized parameters, in the order given to
    /// [`synthesize`].
    pub values: Vec<Value>,
    /// The verification outcome under this assignment.
    pub result: CheckResult,
}

/// Aggregated synthesis output.
#[derive(Clone, Debug, Default)]
pub struct SynthesisResult {
    /// Names of the synthesized parameters.
    pub param_names: Vec<String>,
    /// One verdict per enumerated assignment.
    pub verdicts: Vec<ParamVerdict>,
}

impl SynthesisResult {
    /// Assignments under which the property was proved.
    pub fn safe(&self) -> Vec<&[Value]> {
        self.verdicts
            .iter()
            .filter(|v| v.result.holds())
            .map(|v| v.values.as_slice())
            .collect()
    }

    /// Assignments with a counterexample.
    pub fn unsafe_values(&self) -> Vec<(&[Value], &Trace)> {
        self.verdicts
            .iter()
            .filter_map(|v| v.result.trace().map(|t| (v.values.as_slice(), t)))
            .collect()
    }

    /// True iff any assignment came back `Unknown`.
    pub fn has_unknown(&self) -> bool {
        self.verdicts
            .iter()
            .any(|v| matches!(v.result, CheckResult::Unknown(_)))
    }
}

impl fmt::Display for SynthesisResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "parameter synthesis over ({})", self.param_names.join(", "))?;
        for v in &self.verdicts {
            let vals: Vec<String> = v.values.iter().map(Value::to_string).collect();
            let verdict = match &v.result {
                CheckResult::Holds => "SAFE".to_string(),
                CheckResult::Violated(_) => "UNSAFE".to_string(),
                CheckResult::Unknown(r) => format!("UNKNOWN ({r})"),
            };
            writeln!(f, "  ({}) -> {verdict}", vals.join(", "))?;
        }
        Ok(())
    }
}

/// The complete engine used per assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SynthesisEngine {
    /// k-induction (safety only).
    KInduction,
    /// BDD fixpoints (safety and LTL).
    Bdd,
    /// Explicit state (safety and LTL; tiny models only).
    Explicit,
}

/// Enumerates every assignment of `params` (all must have finite sorts)
/// and verifies the property under each.
///
/// The remaining frozen variables stay symbolic (universally quantified by
/// the underlying engine).
pub fn synthesize(
    sys: &System,
    params: &[VarId],
    property: &Property,
    engine: SynthesisEngine,
    opts: &CheckOptions,
) -> Result<SynthesisResult, McError> {
    for &p in params {
        if !sys.sort_of(p).is_finite() {
            return Err(McError(format!(
                "cannot enumerate real-sorted parameter {}",
                sys.name_of(p)
            )));
        }
    }
    let domains: Vec<Vec<Value>> = params.iter().map(|&p| sys.sort_of(p).values()).collect();
    let mut result = SynthesisResult {
        param_names: params.iter().map(|&p| sys.name_of(p).to_string()).collect(),
        verdicts: Vec::new(),
    };
    let mut indices = vec![0usize; params.len()];
    loop {
        let assignment: Vec<Value> = indices
            .iter()
            .zip(&domains)
            .map(|(&i, d)| d[i].clone())
            .collect();
        // Pin the parameters via INVAR constraints: frozen variables are
        // constant, so INVAR equals INIT on executions, but INVAR also
        // constrains free-start engines (k-induction's step case).
        let mut pinned = sys.clone();
        for (&p, v) in params.iter().zip(&assignment) {
            pinned.add_invar(Expr::var(p).eq(Expr::Const(v.clone())));
        }
        let res = match (property, engine) {
            (Property::Invariant(p), SynthesisEngine::KInduction) => {
                crate::kind::prove_invariant(&pinned, p, opts)?
            }
            (Property::Invariant(p), SynthesisEngine::Bdd) => {
                crate::bdd::check_invariant(&pinned, p, opts)?
            }
            (Property::Invariant(p), SynthesisEngine::Explicit) => {
                crate::explicit_engine::check_invariant(&pinned, p, opts)?
            }
            (Property::Ltl(phi), SynthesisEngine::Bdd) => {
                crate::bdd::check_ltl(&pinned, phi, opts)?
            }
            (Property::Ltl(phi), SynthesisEngine::Explicit) => {
                crate::explicit_engine::check_ltl(&pinned, phi, opts)?
            }
            (Property::Ltl(_), SynthesisEngine::KInduction) => {
                return Err(McError(
                    "k-induction synthesizes safety properties only".to_string(),
                ))
            }
        };
        result.verdicts.push(ParamVerdict {
            values: assignment,
            result: res,
        });
        // Advance odometer.
        let mut pos = 0;
        loop {
            if pos == indices.len() {
                return Ok(result);
            }
            indices[pos] += 1;
            if indices[pos] < domains[pos].len() {
                break;
            }
            indices[pos] = 0;
            pos += 1;
        }
        if indices.iter().all(|&i| i == 0) {
            return Ok(result);
        }
    }
}

/// Convenience for the falsification direction the paper also uses: leave
/// the parameters symbolic and let BMC pick violating values (they appear
/// in the returned trace, constant over time since parameters are frozen).
pub fn find_violating_params(
    sys: &System,
    property: &Property,
    opts: &CheckOptions,
) -> Result<CheckResult, McError> {
    match property {
        Property::Invariant(p) => crate::bmc::check_invariant(sys, p, opts),
        Property::Ltl(phi) => crate::bmc::check_ltl(sys, phi, opts),
    }
}

/// Guard for empty parameter lists in [`synthesize`] callers: with no
/// parameters the function still runs exactly one verification.
pub fn no_params_is_single_check(result: &SynthesisResult) -> bool {
    result.param_names.is_empty() && result.verdicts.len() == 1
}

#[allow(dead_code)]
fn unused(_: UnknownReason) {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Step counter: n += p (saturating at 10); G(n != target) safety.
    fn step_counter() -> (System, VarId) {
        let mut sys = System::new("step");
        let n = sys.int_var("n", 0, 10);
        let p = sys.int_param("p", 1, 3);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        sys.add_trans(Expr::next(n).eq(Expr::ite(
            Expr::var(n).le(Expr::int(7)),
            Expr::var(n).add(Expr::var(p)),
            Expr::var(n),
        )));
        (sys, p)
    }

    #[test]
    fn synthesis_partitions_parameter_space() {
        let (sys, p) = step_counter();
        // n hits 5 exactly iff p=1 (0,1,..) or p=5... p∈{1..3}: p=1 yes,
        // p=2 (0,2,4,6,8,10) no, p=3 (0,3,6,9,10?) 9+3 clamps... n<=7
        // guard: from 9 no step (9>7) stays 9. So p=3 path: 0,3,6,9,9...
        let prop = Property::Invariant(Expr::var(sys.var_by_name("n").unwrap()).ne(Expr::int(5)));
        let r = synthesize(
            &sys,
            &[p],
            &prop,
            SynthesisEngine::KInduction,
            &CheckOptions::default(),
        )
        .unwrap();
        assert_eq!(r.verdicts.len(), 3);
        let safe = r.safe();
        assert_eq!(safe.len(), 2, "{r}");
        assert!(safe.contains(&&[Value::Int(2)][..]));
        assert!(safe.contains(&&[Value::Int(3)][..]));
        let unsafe_ = r.unsafe_values();
        assert_eq!(unsafe_.len(), 1);
        assert_eq!(unsafe_[0].0, &[Value::Int(1)][..]);
        assert!(!r.has_unknown());
    }

    #[test]
    fn engines_agree_on_synthesis() {
        let (sys, p) = step_counter();
        let prop = Property::Invariant(
            Expr::var(sys.var_by_name("n").unwrap()).ne(Expr::int(6)),
        );
        let opts = CheckOptions::default();
        let a = synthesize(&sys, &[p], &prop, SynthesisEngine::KInduction, &opts).unwrap();
        let b = synthesize(&sys, &[p], &prop, SynthesisEngine::Bdd, &opts).unwrap();
        let c = synthesize(&sys, &[p], &prop, SynthesisEngine::Explicit, &opts).unwrap();
        for ((x, y), z) in a.verdicts.iter().zip(&b.verdicts).zip(&c.verdicts) {
            assert_eq!(x.result.holds(), y.result.holds(), "kind vs bdd");
            assert_eq!(y.result.holds(), z.result.holds(), "bdd vs explicit");
        }
    }

    #[test]
    fn ltl_synthesis_via_bdd() {
        // p chooses whether x eventually latches: F G x holds iff p = 1.
        let mut sys = System::new("latchable");
        let x = sys.bool_var("x");
        let p = sys.int_param("p", 0, 1);
        sys.add_init(Expr::var(x));
        // p=1: x stays true. p=0: x flips forever.
        sys.add_trans(Expr::ite(
            Expr::var(p).eq(Expr::int(1)),
            Expr::next(x).eq(Expr::var(x)),
            Expr::next(x).eq(Expr::var(x).not()),
        ));
        let prop = Property::Ltl(Ltl::atom(Expr::var(x)).always().eventually());
        let r = synthesize(
            &sys,
            &[p],
            &prop,
            SynthesisEngine::Bdd,
            &CheckOptions::default(),
        )
        .unwrap();
        let safe = r.safe();
        assert_eq!(safe, vec![&[Value::Int(1)][..]], "{r}");
    }

    #[test]
    fn violating_params_found_symbolically() {
        let (sys, _) = step_counter();
        let prop = Property::Invariant(
            Expr::var(sys.var_by_name("n").unwrap()).ne(Expr::int(5)),
        );
        let r = find_violating_params(&sys, &prop, &CheckOptions::default()).unwrap();
        let t = r.trace().expect("p=1 violates");
        assert_eq!(t.value(0, "p"), Some(&Value::Int(1)));
    }

    #[test]
    fn real_params_rejected_for_enumeration() {
        let mut sys = System::new("r");
        let p = sys.real_param("p");
        let prop = Property::Invariant(Expr::tt());
        let e = synthesize(
            &sys,
            &[p],
            &prop,
            SynthesisEngine::Bdd,
            &CheckOptions::default(),
        );
        assert!(e.is_err());
    }

    #[test]
    fn display_lists_verdicts() {
        let (sys, p) = step_counter();
        let prop = Property::Invariant(
            Expr::var(sys.var_by_name("n").unwrap()).ne(Expr::int(5)),
        );
        let r = synthesize(
            &sys,
            &[p],
            &prop,
            SynthesisEngine::KInduction,
            &CheckOptions::default(),
        )
        .unwrap();
        let shown = r.to_string();
        assert!(shown.contains("SAFE"), "{shown}");
        assert!(shown.contains("UNSAFE"), "{shown}");
    }
}
