//! SAT-based bounded model checking.
//!
//! * Invariants — falsification of `G p`: unroll incrementally, ask for
//!   `¬p` at each new step under an assumption literal, decode the finite
//!   counterexample on success.
//! * LTL — falsification of an arbitrary property by *fair-lasso search*
//!   on the tableau product ([`crate::tableau`]): find a path `s₀ … s_k`
//!   with `s_k = s_l` whose loop satisfies every justice constraint at
//!   least once.
//!
//! BMC answers `Violated` definitively; on exhausting the depth bound it
//! answers `Unknown` (use [`crate::kind`] or [`crate::bdd`] to prove).
//!
//! ```
//! use verdict_mc::prelude::*;
//! use verdict_ts::{Expr, System};
//!
//! let mut sys = System::new("counter");
//! let n = sys.int_var("n", 0, 7);
//! sys.add_init(Expr::var(n).eq(Expr::int(0)));
//! sys.add_trans(Expr::next(n).eq(Expr::var(n).add(Expr::int(1))));
//! // n reaches 3, so G(n < 3) is violated with a 4-state trace.
//! let mut stats = Stats::default();
//! let r = engine(EngineKind::Bmc)
//!     .check_invariant(&sys, &Expr::var(n).lt(Expr::int(3)),
//!                      &CheckOptions::with_depth(8), &mut stats).unwrap();
//! assert_eq!(r.trace().unwrap().len(), 4);
//! assert_eq!(stats.depths.len(), 4); // depths 0..=3 each cost a solve
//! ```
use std::time::Instant;

use verdict_logic::Formula;
use verdict_sat::Solver;
use verdict_ts::{Expr, Ltl, System, Trace, Unroller};

use crate::result::{Budget, CheckOptions, CheckResult, McError, UnknownReason};
use crate::stats::{Phase, SpanTimer, Stats};
use crate::tableau::{violation_product, TableauProduct};

/// Feeds newly produced clauses into the solver.
fn sync(unroller: &mut Unroller<'_>, solver: &mut Solver) {
    for clause in unroller.drain_clauses() {
        solver.add_clause(clause);
    }
}

/// Trait-dispatch entry point for invariant BMC (see
/// [`crate::engine::engine`]); records per-depth unroll/solve cost and
/// SAT counters into `stats`.
///
/// Returns `Violated` with a shortest-per-depth-schedule counterexample,
/// or `Unknown(DepthBound | Timeout | Cancelled)`. Never returns `Holds` — BMC alone
/// cannot prove.
pub(crate) fn run_invariant(
    sys: &System,
    p: &Expr,
    opts: &CheckOptions,
    stats: &mut Stats,
) -> Result<CheckResult, McError> {
    let mut solver = Solver::new();
    // The invariant unrolling emits the same clause stream as the
    // k-induction base case, so a portfolio race can share learnt
    // clauses between the two.
    opts.attach_sharing(&mut solver);
    let res = invariant_loop(sys, p, opts, stats, &mut solver);
    stats.absorb_sat(solver.stats());
    res
}

fn invariant_loop(
    sys: &System,
    p: &Expr,
    opts: &CheckOptions,
    stats: &mut Stats,
    solver: &mut Solver,
) -> Result<CheckResult, McError> {
    let budget = Budget::new(opts);
    let mut unroller = Unroller::new(sys)?;
    let bad = p.clone().not();
    for k in 0..=opts.max_depth {
        if let Some(reason) = budget.exceeded() {
            return Ok(CheckResult::Unknown(reason));
        }
        let encode = SpanTimer::begin(Phase::Encode);
        let t_unroll = Instant::now();
        unroller.extend_to(k);
        let bad_k = unroller.lower_bool(&bad, k);
        let bad_lit = unroller.literal_for(&bad_k);
        sync(&mut unroller, solver);
        let unroll_time = t_unroll.elapsed();
        stats.end_span(encode);
        let solve = SpanTimer::begin(Phase::Solve);
        let t_solve = Instant::now();
        let outcome = solver.solve_limited(&[bad_lit], budget.limits());
        stats.record_depth(k, unroll_time, t_solve.elapsed());
        stats.end_span(solve);
        match outcome {
            verdict_sat::SolveResult::Sat(model) => {
                let states = unroller.decode_trace(k + 1, &|v| model.value(v));
                let trace = Trace::new(sys, states, None);
                return Ok(if opts.certify {
                    let replay = SpanTimer::begin(Phase::Replay);
                    let gated = crate::certify::gate_invariant_cex(sys, p, trace);
                    stats.end_span(replay);
                    gated
                } else {
                    CheckResult::Violated(trace)
                });
            }
            verdict_sat::SolveResult::Unsat => {
                // Proven: no violation at exactly step k. Pin it for the
                // benefit of later iterations.
                solver.add_clause([!bad_lit]);
            }
            verdict_sat::SolveResult::Unknown => {
                return Ok(CheckResult::Unknown(
                    budget.unknown_reason_sat(solver.num_clauses()),
                ));
            }
        }
    }
    Ok(CheckResult::Unknown(UnknownReason::DepthBound))
}

/// Trait-dispatch entry point for LTL BMC — bounded falsification of an
/// arbitrary LTL property via fair-lasso search on the tableau product
/// (see [`crate::engine::engine`]).
pub(crate) fn run_ltl(
    sys: &System,
    phi: &Ltl,
    opts: &CheckOptions,
    stats: &mut Stats,
) -> Result<CheckResult, McError> {
    let encode = SpanTimer::begin(Phase::Encode);
    let product = violation_product(sys, phi);
    stats.end_span(encode);
    match find_fair_lasso(&product, opts, stats)? {
        LassoOutcome::Found(trace) => Ok(if opts.certify {
            let replay = SpanTimer::begin(Phase::Replay);
            let gated = crate::certify::gate_ltl_cex(sys, phi, trace);
            stats.end_span(replay);
            gated
        } else {
            CheckResult::Violated(trace)
        }),
        LassoOutcome::Exhausted => Ok(CheckResult::Unknown(UnknownReason::DepthBound)),
        LassoOutcome::GaveUp(reason) => Ok(CheckResult::Unknown(reason)),
    }
}

/// Result of a bounded fair-lasso search.
pub(crate) enum LassoOutcome {
    /// A fair lasso exists; the trace is projected to the original
    /// variables and carries the loop-back index.
    Found(Trace),
    /// No lasso up to the depth bound.
    Exhausted,
    /// Resource limit: timed out or cancelled without a verdict.
    GaveUp(UnknownReason),
}

/// Searches the tableau product for a fair lasso of length ≤ `max_depth`.
/// Shared by the LTL BMC entry point and the BDD engine's counterexample
/// reconstruction.
pub(crate) fn find_fair_lasso(
    product: &TableauProduct,
    opts: &CheckOptions,
    stats: &mut Stats,
) -> Result<LassoOutcome, McError> {
    let mut solver = Solver::new();
    // Lasso searches over the same tableau product emit identical
    // streams, so concurrent searchers (LTL races) can exchange clauses.
    opts.attach_sharing(&mut solver);
    let res = lasso_loop(product, opts, stats, &mut solver);
    stats.absorb_sat(solver.stats());
    res
}

fn lasso_loop(
    product: &TableauProduct,
    opts: &CheckOptions,
    stats: &mut Stats,
    solver: &mut Solver,
) -> Result<LassoOutcome, McError> {
    let budget = Budget::new(opts);
    let sys = &product.system;
    let mut unroller = Unroller::new(sys)?;
    for k in 1..=opts.max_depth {
        if let Some(reason) = budget.exceeded() {
            return Ok(LassoOutcome::GaveUp(reason));
        }
        let encode = SpanTimer::begin(Phase::Encode);
        let t_unroll = Instant::now();
        unroller.extend_to(k);
        // lasso_k = ∨_{l<k} [ s_l = s_k ∧ ∧_j ∨_{i=l..k-1} j@i ]
        let mut options = Vec::with_capacity(k);
        for l in 0..k {
            let eq = unroller.states_equal(l, k);
            let mut parts = vec![eq];
            for j in &product.justice {
                let hits: Vec<Formula> = (l..k).map(|i| unroller.lower_bool(j, i)).collect();
                parts.push(Formula::or_all(hits));
            }
            options.push(Formula::and_all(parts));
        }
        let lasso = Formula::or_all(options);
        let lasso_lit = unroller.literal_for(&lasso);
        sync(&mut unroller, solver);
        let unroll_time = t_unroll.elapsed();
        stats.end_span(encode);
        let solve = SpanTimer::begin(Phase::Solve);
        let t_solve = Instant::now();
        let outcome = solver.solve_limited(&[lasso_lit], budget.limits());
        stats.record_depth(k, unroll_time, t_solve.elapsed());
        stats.end_span(solve);
        match outcome {
            verdict_sat::SolveResult::Sat(model) => {
                let full = unroller.decode_trace(k + 1, &|v| model.value(v));
                // Find the loop-back index by comparing decoded states.
                let loop_back = (0..k)
                    .find(|&l| states_match(&full[l], &full[k]))
                    .unwrap_or(0);
                // Project to the original variables for reporting.
                let projected: Vec<Vec<verdict_ts::Value>> = full
                    .iter()
                    .map(|s| s[..product.original_vars].to_vec())
                    .collect();
                let mut trace = Trace::new(sys, projected, Some(loop_back));
                trace.var_names.truncate(product.original_vars);
                return Ok(LassoOutcome::Found(trace));
            }
            verdict_sat::SolveResult::Unsat => {}
            verdict_sat::SolveResult::Unknown => {
                return Ok(LassoOutcome::GaveUp(
                    budget.unknown_reason_sat(solver.num_clauses()),
                ))
            }
        }
    }
    Ok(LassoOutcome::Exhausted)
}

fn states_match(a: &[verdict_ts::Value], b: &[verdict_ts::Value]) -> bool {
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_ts::Value;

    fn run_invariant_t(
        sys: &System,
        p: &Expr,
        opts: &CheckOptions,
    ) -> Result<CheckResult, McError> {
        run_invariant(sys, p, opts, &mut Stats::default())
    }

    fn run_ltl_t(sys: &System, phi: &Ltl, opts: &CheckOptions) -> Result<CheckResult, McError> {
        run_ltl(sys, phi, opts, &mut Stats::default())
    }

    /// Saturating counter 0..=5.
    fn counter(limit: i64) -> (System, verdict_ts::VarId) {
        let mut sys = System::new("counter");
        let n = sys.int_var("n", 0, limit);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        sys.add_trans(Expr::next(n).eq(Expr::ite(
            Expr::var(n).lt(Expr::int(limit)),
            Expr::var(n).add(Expr::int(1)),
            Expr::var(n),
        )));
        (sys, n)
    }

    #[test]
    fn invariant_violation_found_at_right_depth() {
        let (sys, n) = counter(5);
        // G(n < 4) is violated first at step 4.
        let r = run_invariant_t(
            &sys,
            &Expr::var(n).lt(Expr::int(4)),
            &CheckOptions::default(),
        )
        .unwrap();
        let trace = r.trace().expect("violated");
        assert_eq!(trace.len(), 5);
        assert_eq!(trace.value(4, "n"), Some(&Value::Int(4)));
        assert_eq!(trace.value(0, "n"), Some(&Value::Int(0)));
    }

    #[test]
    fn invariant_that_holds_is_unknown_for_bmc() {
        let (sys, n) = counter(5);
        let r = run_invariant_t(
            &sys,
            &Expr::var(n).le(Expr::int(5)),
            &CheckOptions::with_depth(8),
        )
        .unwrap();
        assert!(matches!(r, CheckResult::Unknown(UnknownReason::DepthBound)));
    }

    #[test]
    fn parameters_are_solved_for() {
        // Counter increments by frozen step p in 1..=3; G(n != 6) should be
        // violated exactly when p ∈ {1, 2, 3} divides... reaches 6: p=1,2,3
        // all reach 6 (6 divisible by 1,2,3). Use target 5: only p=1 and 5
        // ... keep p in 1..=3, target 5: p=1 reaches 5, p=2: 0,2,4,6 skips,
        // p=3: 0,3,6 skips. The model checker must pick p=1.
        let mut sys = System::new("step-counter");
        let n = sys.int_var("n", 0, 10);
        let p = sys.int_param("p", 1, 3);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        sys.add_trans(Expr::next(n).eq(Expr::ite(
            Expr::var(n).le(Expr::int(7)),
            Expr::var(n).add(Expr::var(p)),
            Expr::var(n),
        )));
        let r = run_invariant_t(
            &sys,
            &Expr::var(n).ne(Expr::int(5)),
            &CheckOptions::default(),
        )
        .unwrap();
        let trace = r.trace().expect("violated for p=1");
        assert_eq!(trace.value(0, "p"), Some(&Value::Int(1)));
        assert_eq!(trace.value(trace.len() - 1, "n"), Some(&Value::Int(5)));
    }

    #[test]
    fn ltl_fg_violated_by_oscillator() {
        // x flips forever: F G x is false; counterexample is a lasso.
        let mut sys = System::new("flip");
        let x = sys.bool_var("x");
        sys.add_init(Expr::var(x));
        sys.add_trans(Expr::next(x).eq(Expr::var(x).not()));
        let phi = Ltl::atom(Expr::var(x)).always().eventually();
        let r = run_ltl_t(&sys, &phi, &CheckOptions::default()).unwrap();
        let trace = r.trace().expect("violated");
        assert!(trace.loop_back.is_some());
        // The loop must contain a ¬x state.
        let l = trace.loop_back.unwrap();
        let has_not_x = (l..trace.len()).any(|t| trace.value(t, "x") == Some(&Value::Bool(false)));
        assert!(has_not_x, "loop must visit !x:\n{trace}");
    }

    #[test]
    fn ltl_fg_holds_on_stabilizing_system() {
        // x flips until a latch sets, then stays true: F G x holds, so BMC
        // finds no lasso and reports DepthBound.
        let mut sys = System::new("stabilize");
        let x = sys.bool_var("x");
        let done = sys.bool_var("done");
        sys.add_init(Expr::var(x).and(Expr::var(done).not()));
        // done latches nondeterministically; once done, x stays true.
        sys.add_trans(Expr::var(done).implies(Expr::next(done)));
        sys.add_trans(Expr::next(done).implies(Expr::next(x)));
        sys.add_trans(
            Expr::next(done)
                .not()
                .implies(Expr::next(x).eq(Expr::var(x).not())),
        );
        // Fairness: done happens eventually (on fair paths).
        sys.add_fairness(Expr::var(done));
        let phi = Ltl::atom(Expr::var(x)).always().eventually();
        let r = run_ltl_t(&sys, &phi, &CheckOptions::with_depth(12)).unwrap();
        assert!(
            matches!(r, CheckResult::Unknown(UnknownReason::DepthBound)),
            "got {r}"
        );
    }

    #[test]
    fn ltl_until_witnessed() {
        // Counter: G(n=0 -> (n<=2 U n=3)) — false since n<=2 holds only
        // until 3 arrives... actually (n<=2 U n=3) holds on the increment
        // path. Check its negation is found for a *stuck* variant.
        let mut sys = System::new("stuck");
        let n = sys.int_var("n", 0, 3);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        // n stays put forever: never reaches 3.
        sys.add_trans(Expr::next(n).eq(Expr::var(n)));
        let phi = Ltl::atom(Expr::var(n).le(Expr::int(2)))
            .until(Ltl::atom(Expr::var(n).eq(Expr::int(3))));
        let r = run_ltl_t(&sys, &phi, &CheckOptions::default()).unwrap();
        assert!(r.violated(), "stuck counter never reaches 3: {r}");
    }

    #[test]
    fn timeout_respected() {
        let (sys, n) = counter(5);
        let opts = CheckOptions::with_depth(64).with_timeout(std::time::Duration::from_nanos(1));
        let r = run_invariant_t(&sys, &Expr::var(n).le(Expr::int(5)), &opts).unwrap();
        assert!(matches!(r, CheckResult::Unknown(UnknownReason::Timeout)));
    }

    /// Nine frozen 3-bit values in eight slots: "some pair collides" as
    /// the property makes the bad state all-different — an UNSAT
    /// pigeonhole instance that is exponentially hard for CDCL, so a
    /// single per-depth query blows any small deadline unless
    /// `Budget::limits()` interrupts the solver *mid-solve*.
    fn pigeonhole_system() -> (System, Expr) {
        let mut sys = System::new("php");
        let vs: Vec<_> = (0..9)
            .map(|i| sys.int_var(&format!("v{i}"), 0, 7))
            .collect();
        for &v in &vs {
            sys.add_trans(Expr::next(v).eq(Expr::var(v)));
        }
        let mut collision = Expr::ff();
        for i in 0..9 {
            for j in i + 1..9 {
                collision = collision.or(Expr::var(vs[i]).eq(Expr::var(vs[j])));
            }
        }
        (sys, collision)
    }

    #[test]
    fn deadline_bounds_a_hard_mid_depth_solve() {
        use std::time::{Duration, Instant};
        let (sys, collision) = pigeonhole_system();
        let opts = CheckOptions::with_depth(4).with_timeout(Duration::from_millis(20));
        let start = Instant::now();
        let r = run_invariant_t(&sys, &collision, &opts).unwrap();
        let elapsed = start.elapsed();
        assert!(
            matches!(r, CheckResult::Unknown(UnknownReason::Timeout)),
            "got {r}"
        );
        // Unchecked, the depth-0 query alone runs for minutes; the
        // in-solve deadline polls must stop it within a conflict batch.
        assert!(elapsed < Duration::from_secs(5), "overshot: {elapsed:?}");
    }
}
