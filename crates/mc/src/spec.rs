//! The unified job specification: one [`JobSpec`] shared by every
//! entry point.
//!
//! Historically the CLI's `check` and `synth`, the server's `submit`
//! path, and the bench harness each hand-rolled their own flag parsing
//! and options structs before reaching [`CheckOptions`], so the local
//! and remote execution paths could drift apart silently. This module
//! is the single parse / validate / build / execute path:
//!
//! * [`JobSpec`] — model source + property selection + engine + budgets,
//!   with the wire JSON shape the server journals and ships
//!   ([`JobSpec::to_json`] / [`JobSpec::from_json`]) and the CLI flag
//!   form ([`JobSpec::from_cli_args`]).
//! * [`JobSpec::validate`] — the one admission gate: the model must
//!   parse, the engine tag must resolve, named properties and
//!   parameters must exist. The CLI calls it before running; the server
//!   calls it before journaling.
//! * [`execute`] — runs a validated spec through the engine registry to
//!   [`VerdictRow`]s. The server's workers, the scenario sweep, and
//!   tests all execute jobs through this one function, which is what
//!   makes "local and remote verdicts agree" structural rather than
//!   aspirational.
//! * [`options_from_args`] — the shared `--depth/--timeout/--jobs/…` →
//!   [`CheckOptions`] flag parser.

use std::collections::BTreeMap;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use verdict_journal::json::Json;

use crate::engine::EngineKind;
use crate::result::{CheckOptions, CheckResult, Supervision, UnknownReason};
use crate::retry::RetryPolicy;
use crate::stats::{Stats, TraceSink};
use crate::verifier::Verifier;

/// Builds a JSON object from ordered pairs.
fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

/// What kind of work a job runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// Check every (or one named) property of the model.
    Check,
    /// Parameter synthesis sweep over the named frozen params.
    Synth,
}

impl JobKind {
    /// Stable lowercase tag used on the wire and in the WAL.
    pub fn tag(self) -> &'static str {
        match self {
            JobKind::Check => "check",
            JobKind::Synth => "synth",
        }
    }

    /// Parses a tag produced by [`JobKind::tag`].
    pub fn from_tag(s: &str) -> Option<JobKind> {
        match s {
            "check" => Some(JobKind::Check),
            "synth" => Some(JobKind::Synth),
            _ => None,
        }
    }
}

/// A job request: the model source travels inline so the daemon never
/// depends on the submitter's filesystem, and so the WAL's `submit`
/// record pins the exact model — recovery re-runs byte-identical input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Check or synth.
    pub kind: JobKind,
    /// The `.vd` model source text.
    pub source: String,
    /// Restrict to one named property (required for synth with several).
    pub prop: Option<String>,
    /// Engine tag (`auto`, `bmc`, `kind`, `bdd`, `explicit`, `smtbmc`,
    /// `portfolio`); parsed by [`EngineKind::from_tag`].
    pub engine: String,
    /// Unrolling depth bound; engine default when absent.
    pub depth: Option<usize>,
    /// Wall-clock budget for the whole job, in milliseconds. Counted
    /// from *admission*: time spent waiting in the queue is charged
    /// against it, so a client's deadline means what it says.
    pub deadline_ms: Option<u64>,
    /// Frozen parameter names (synth only).
    pub params: Vec<String>,
    /// Certify verdicts before reporting (trace replay + proof
    /// re-checking), exactly like the CLI's `--certify`.
    pub certify: bool,
    /// Client-chosen idempotency key: a resubmit carrying a key the
    /// daemon has already admitted returns the original job id instead
    /// of double-running — what makes reconnect-and-resubmit safe.
    pub idem: Option<String>,
}

/// Why a [`JobSpec`] failed validation — split so callers can map the
/// two classes to different wire rejections (`parse-error` vs
/// `bad-request`) or exit codes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The `.vd` source failed to parse.
    Parse(String),
    /// The source parsed but the spec is inconsistent with it (unknown
    /// engine, missing property, bad params, …).
    BadRequest(String),
}

impl SpecError {
    /// The human-readable detail, whichever class it is.
    pub fn message(&self) -> &str {
        match self {
            SpecError::Parse(m) | SpecError::BadRequest(m) => m,
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.message())
    }
}

impl JobSpec {
    /// A check job over `source` with defaults everywhere else.
    pub fn check(source: &str) -> JobSpec {
        JobSpec {
            kind: JobKind::Check,
            source: source.to_string(),
            prop: None,
            engine: "auto".to_string(),
            depth: None,
            deadline_ms: None,
            params: Vec::new(),
            certify: false,
            idem: None,
        }
    }

    /// A synth job over `source` sweeping `params`.
    pub fn synth(source: &str, params: &[&str]) -> JobSpec {
        JobSpec {
            kind: JobKind::Synth,
            source: source.to_string(),
            prop: None,
            engine: "auto".to_string(),
            depth: None,
            deadline_ms: None,
            params: params.iter().map(|p| p.to_string()).collect(),
            certify: false,
            idem: None,
        }
    }

    /// Builds a spec from CLI-style arguments: `--prop NAME`,
    /// `--engine E`, `--depth N`, `--deadline SECS`, `--params a,b`,
    /// `--certify`. This is the flag surface `verdict submit` and the
    /// scenario sweep share; a typo'd value is an error, not a silent
    /// fallback.
    pub fn from_cli_args(kind: JobKind, source: &str, args: &[String]) -> Result<JobSpec, String> {
        let mut spec = match kind {
            JobKind::Check => JobSpec::check(source),
            JobKind::Synth => JobSpec::synth(source, &[]),
        };
        spec.prop = flag_value(args, "--prop");
        if let Some(engine) = flag_value(args, "--engine") {
            if EngineKind::from_tag(&engine).is_none() {
                return Err(format!("unknown engine `{engine}`"));
            }
            spec.engine = engine;
        }
        if let Some(d) = flag_value(args, "--depth") {
            spec.depth = Some(
                d.parse()
                    .map_err(|_| format!("--depth expects a number, got `{d}`"))?,
            );
        }
        if let Some(t) = flag_value(args, "--deadline") {
            let secs: u64 = t
                .parse()
                .map_err(|_| format!("--deadline expects seconds, got `{t}`"))?;
            spec.deadline_ms = Some(secs * 1000);
        }
        if let Some(params) = flag_value(args, "--params") {
            spec.params = params
                .split(',')
                .map(|p| p.trim().to_string())
                .filter(|p| !p.is_empty())
                .collect();
        }
        spec.certify = args.iter().any(|a| a == "--certify");
        Ok(spec)
    }

    /// The spec's check fingerprint: a stable 64-bit hash over the
    /// fields that determine *what runs* (kind, source, prop, engine,
    /// depth, params) — deadlines and idempotency keys are excluded.
    /// The quarantine table and the hedge-latency sketch key on this.
    pub fn fingerprint(&self) -> u64 {
        let canon = format!(
            "{}\u{0}{}\u{0}{}\u{0}{}\u{0}{}\u{0}{}",
            self.kind.tag(),
            self.source,
            self.prop.as_deref().unwrap_or(""),
            self.engine,
            self.depth.map_or(-1i64, |d| d as i64),
            self.params.join(","),
        );
        verdict_journal::fnv1a64(canon.as_bytes())
    }

    /// JSON form (wire `submit` requests and WAL `submit` records).
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("kind", Json::Str(self.kind.tag().to_string())),
            ("source", Json::Str(self.source.clone())),
            (
                "prop",
                self.prop
                    .as_ref()
                    .map_or(Json::Null, |p| Json::Str(p.clone())),
            ),
            ("engine", Json::Str(self.engine.clone())),
            (
                "depth",
                self.depth.map_or(Json::Null, |d| Json::Int(d as i64)),
            ),
            (
                "deadline_ms",
                self.deadline_ms.map_or(Json::Null, |d| Json::Int(d as i64)),
            ),
            (
                "params",
                Json::Arr(self.params.iter().map(|p| Json::Str(p.clone())).collect()),
            ),
            ("certify", Json::Bool(self.certify)),
            (
                "idem",
                self.idem
                    .as_ref()
                    .map_or(Json::Null, |k| Json::Str(k.clone())),
            ),
        ])
    }

    /// Parses the JSON form.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .and_then(JobKind::from_tag)
            .ok_or("spec missing or bad `kind`")?;
        let source = v
            .get("source")
            .and_then(Json::as_str)
            .ok_or("spec missing `source`")?
            .to_string();
        let params = match v.get("params") {
            None | Some(Json::Null) => Vec::new(),
            Some(p) => p
                .as_arr()
                .ok_or("spec `params` must be an array")?
                .iter()
                .map(|x| {
                    x.as_str()
                        .map(str::to_string)
                        .ok_or("non-string param name")
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(JobSpec {
            kind,
            source,
            prop: v.get("prop").and_then(Json::as_str).map(str::to_string),
            engine: v
                .get("engine")
                .and_then(Json::as_str)
                .unwrap_or("auto")
                .to_string(),
            depth: v.get("depth").and_then(Json::as_int).map(|d| d as usize),
            deadline_ms: v
                .get("deadline_ms")
                .and_then(Json::as_int)
                .map(|d| d as u64),
            params,
            certify: matches!(v.get("certify"), Some(Json::Bool(true))),
            idem: v.get("idem").and_then(Json::as_str).map(str::to_string),
        })
    }

    /// The engine this spec asks for; [`EngineKind::Auto`] when the tag
    /// is unknown (validation rejects unknown tags before execution).
    pub fn engine_kind(&self) -> EngineKind {
        EngineKind::from_tag(&self.engine).unwrap_or(EngineKind::Auto)
    }

    /// The one validation gate, shared by the CLI (before running
    /// locally) and the daemon (at admission, before anything is
    /// journaled): the model must parse, the engine tag must exist,
    /// named properties and parameters must resolve, and the kind's
    /// arity rules must hold. Returns the compiled model so callers
    /// don't parse twice.
    pub fn validate(&self) -> Result<verdict_dsl::CompiledModel, SpecError> {
        let model =
            verdict_dsl::parse(&self.source).map_err(|e| SpecError::Parse(e.to_string()))?;
        if EngineKind::from_tag(&self.engine).is_none() {
            return Err(SpecError::BadRequest(format!(
                "unknown engine `{}`",
                self.engine
            )));
        }
        if let Some(prop) = &self.prop {
            if !model.properties.iter().any(|(n, _)| n == prop) {
                return Err(SpecError::BadRequest(format!(
                    "model has no property `{prop}`"
                )));
            }
        }
        match self.kind {
            JobKind::Check => {
                if model.properties.is_empty() {
                    return Err(SpecError::BadRequest("model has no properties".into()));
                }
            }
            JobKind::Synth => {
                if self.params.is_empty() {
                    return Err(SpecError::BadRequest("synth requires params".into()));
                }
                for p in &self.params {
                    if model.system.var_by_name(p).is_none() {
                        return Err(SpecError::BadRequest(format!("unknown parameter `{p}`")));
                    }
                }
                let selected = model
                    .properties
                    .iter()
                    .filter(|(n, _)| self.prop.as_deref().is_none_or(|p| p == n))
                    .count();
                if selected != 1 {
                    return Err(SpecError::BadRequest(
                        "synth needs exactly one property (use prop)".into(),
                    ));
                }
            }
        }
        Ok(model)
    }

    /// Overlays this spec's budgets onto `base` options: depth,
    /// deadline (as a wall-clock timeout), certification.
    pub fn check_options(&self, mut base: CheckOptions) -> CheckOptions {
        if let Some(d) = self.depth {
            base.max_depth = d;
        }
        if let Some(ms) = self.deadline_ms {
            base = base.with_timeout(Duration::from_millis(ms));
        }
        if self.certify {
            base = base.with_certify();
        }
        base
    }
}

/// One per-property (check) or per-assignment (synth) verdict row, as
/// carried in WAL `done` records, `status`/`wait` responses, and the
/// scenario matrix report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerdictRow {
    /// Property name (check) or `a=1,b=2`-style assignment (synth).
    pub name: String,
    /// Coarse tag: `safe`, `unsafe`, `unknown`, `cancelled`.
    pub verdict: String,
    /// `UnknownReason` tag when `verdict` is `unknown`/`cancelled`.
    pub reason: Option<String>,
    /// The engine that produced the verdict.
    pub engine: String,
    /// Human-readable detail (counterexample summary etc.).
    pub detail: String,
}

impl VerdictRow {
    /// JSON form.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("verdict", Json::Str(self.verdict.clone())),
            (
                "reason",
                self.reason
                    .as_ref()
                    .map_or(Json::Null, |r| Json::Str(r.clone())),
            ),
            ("engine", Json::Str(self.engine.clone())),
            ("detail", Json::Str(self.detail.clone())),
        ])
    }

    /// Parses the JSON form.
    pub fn from_json(v: &Json) -> Result<VerdictRow, String> {
        let field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("verdict row missing `{k}`"))
        };
        Ok(VerdictRow {
            name: field("name")?,
            verdict: field("verdict")?,
            reason: v.get("reason").and_then(Json::as_str).map(str::to_string),
            engine: field("engine")?,
            detail: field("detail")?,
        })
    }

    /// True for decided verdicts (safe/unsafe) — the re-gating policy
    /// trusts these across a restart; anything else re-runs.
    pub fn decided(&self) -> bool {
        self.verdict == "safe" || self.verdict == "unsafe"
    }
}

/// The coarse verdict bucket used in rows, JSON output, and exit
/// codes. Cooperatively-cancelled slots get their own tag: they are
/// skipped on purpose, not failed.
pub fn verdict_tag(r: &CheckResult) -> &'static str {
    match r {
        CheckResult::Holds => "safe",
        CheckResult::Violated(_) => "unsafe",
        CheckResult::Unknown(UnknownReason::Cancelled) => "cancelled",
        CheckResult::Unknown(_) => "unknown",
    }
}

/// Runtime context for [`execute`]: everything about *how* to run that
/// is not part of the job's identity (and so is excluded from the
/// fingerprint) — cancellation, tracing, supervision, the remaining
/// deadline budget, and hedged engine overrides.
#[derive(Clone, Default)]
pub struct ExecContext {
    /// Cooperative cancellation flag, polled by every engine budget.
    pub stop: Option<Arc<AtomicBool>>,
    /// JSONL trace sink for span/depth/mark events.
    pub sink: Option<Arc<TraceSink>>,
    /// Watchdog heartbeat / solver-poisoning handle.
    pub supervision: Option<Arc<Supervision>>,
    /// Remaining wall-clock budget; takes precedence over the spec's
    /// `deadline_ms` (the daemon charges queue time against it).
    pub timeout: Option<Duration>,
    /// Replaces the spec's engine tag (hedged re-execution).
    pub engine_override: Option<String>,
    /// Worker threads for the engines themselves; defaults to 1 (the
    /// daemon parallelizes across jobs, not within them).
    pub jobs: usize,
}

/// Runs a spec to a verdict-row list through the engine registry. This
/// is the single execution path behind the server's workers, the
/// scenario sweep's local mode, and the agreement tests — a spec
/// executed here and a spec shipped over the socket run byte-identical
/// input through identical code.
pub fn execute(spec: &JobSpec, ctx: &ExecContext) -> (Vec<VerdictRow>, Option<Stats>) {
    let model = match verdict_dsl::parse(&spec.source) {
        Ok(m) => m,
        Err(e) => {
            // Validated at admission; reaching this means the model was
            // corrupted in flight — surface as an engine failure.
            return (
                vec![VerdictRow {
                    name: "(model)".into(),
                    verdict: "unknown".into(),
                    reason: Some(UnknownReason::EngineFailure.tag().into()),
                    engine: spec.engine.clone(),
                    detail: e.to_string(),
                }],
                None,
            );
        }
    };
    let engine_tag = ctx.engine_override.as_deref().unwrap_or(&spec.engine);
    let engine = EngineKind::from_tag(engine_tag).unwrap_or(EngineKind::Auto);
    let mut opts = CheckOptions::default().with_jobs(ctx.jobs.max(1));
    if let Some(stop) = &ctx.stop {
        opts = opts.with_stop(Arc::clone(stop));
    }
    if let Some(d) = spec.depth {
        opts.max_depth = d;
    }
    if let Some(t) = ctx.timeout.or(spec.deadline_ms.map(Duration::from_millis)) {
        opts = opts.with_timeout(t);
    }
    if spec.certify {
        opts = opts.with_certify();
    }
    if let Some(sup) = &ctx.supervision {
        opts = opts.with_supervision(Arc::clone(sup));
    }
    if let Some(sink) = &ctx.sink {
        opts = opts.with_trace(Arc::clone(sink));
    }
    match spec.kind {
        JobKind::Check => {
            let mut rows = Vec::new();
            let mut agg = Stats::default();
            for (name, property) in model
                .properties
                .iter()
                .filter(|(n, _)| spec.prop.as_deref().is_none_or(|p| p == n))
            {
                let verifier = Verifier::new(&model.system)
                    .engine(engine)
                    .options(opts.clone());
                let report = match property {
                    verdict_dsl::CompiledProperty::Invariant(p) => {
                        verifier.check_invariant_report(p)
                    }
                    verdict_dsl::CompiledProperty::Ltl(f) => verifier.check_ltl_report(f),
                    verdict_dsl::CompiledProperty::Ctl(f) => verifier.check_ctl_report(f),
                };
                match report {
                    Ok(r) => {
                        agg.merge(&r.stats);
                        rows.push(VerdictRow {
                            name: name.clone(),
                            verdict: verdict_tag(&r.result).to_string(),
                            reason: match &r.result {
                                CheckResult::Unknown(reason) => Some(reason.tag().to_string()),
                                _ => None,
                            },
                            engine: r.winner.to_string(),
                            detail: r.result.to_string(),
                        });
                    }
                    Err(e) => rows.push(VerdictRow {
                        name: name.clone(),
                        verdict: "unknown".into(),
                        reason: Some(UnknownReason::EngineFailure.tag().into()),
                        engine: engine_tag.to_string(),
                        detail: e.to_string(),
                    }),
                }
            }
            (rows, Some(agg))
        }
        JobKind::Synth => {
            let params: Vec<_> = spec
                .params
                .iter()
                .filter_map(|p| model.system.var_by_name(p))
                .collect();
            let (name, property) = match model
                .properties
                .iter()
                .find(|(n, _)| spec.prop.as_deref().is_none_or(|p| p == n))
            {
                Some(pair) => pair,
                None => return (Vec::new(), None),
            };
            let prop = match property {
                verdict_dsl::CompiledProperty::Invariant(p) => {
                    crate::params::Property::Invariant(p.clone())
                }
                verdict_dsl::CompiledProperty::Ltl(f) => crate::params::Property::Ltl(f.clone()),
                verdict_dsl::CompiledProperty::Ctl(_) => {
                    return (
                        vec![VerdictRow {
                            name: name.clone(),
                            verdict: "unknown".into(),
                            reason: Some(UnknownReason::EngineFailure.tag().into()),
                            engine: engine_tag.to_string(),
                            detail: "synth supports invariant and ltl properties".into(),
                        }],
                        None,
                    );
                }
            };
            let verifier = Verifier::new(&model.system).engine(engine).options(opts);
            let synth_engine = verifier.synthesis_engine(&prop);
            match verifier.synthesize_params_durable(&params, &prop, &crate::Durability::none()) {
                Ok(result) => {
                    let rows = result
                        .verdicts
                        .iter()
                        .map(|v| {
                            let assignment: Vec<String> = result
                                .param_names
                                .iter()
                                .zip(&v.values)
                                .map(|(n, x)| format!("{n}={x}"))
                                .collect();
                            VerdictRow {
                                name: assignment.join(","),
                                verdict: verdict_tag(&v.result).to_string(),
                                reason: match &v.result {
                                    CheckResult::Unknown(r) => Some(r.tag().to_string()),
                                    _ => None,
                                },
                                engine: format!("{synth_engine:?}").to_lowercase(),
                                detail: v.result.to_string(),
                            }
                        })
                        .collect();
                    (rows, None)
                }
                Err(e) => (
                    vec![VerdictRow {
                        name: name.clone(),
                        verdict: "unknown".into(),
                        reason: Some(UnknownReason::EngineFailure.tag().into()),
                        engine: engine_tag.to_string(),
                        detail: e.to_string(),
                    }],
                    None,
                ),
            }
        }
    }
}

/// Pulls `--flag value` out of an argument list.
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses the shared engine-budget flags (`--depth`, `--timeout`,
/// `--jobs`, `--certify`, `--incremental`/`--no-incremental`,
/// `--no-sharing`, the `--bdd-*` family, `--max-bdd-nodes`,
/// `--retries`/`--retry-factor`/`--retry-backoff-ms`) into
/// [`CheckOptions`] with validation — a typo'd value is an error, not a
/// silent fallback to the default. Every subcommand that runs engines
/// locally parses through this one function.
pub fn options_from_args(args: &[String]) -> Result<CheckOptions, String> {
    let mut opts = CheckOptions::default();
    if let Some(d) = flag_value(args, "--depth") {
        opts.max_depth = d
            .parse()
            .map_err(|_| format!("--depth expects a number, got `{d}`"))?;
    }
    if let Some(t) = flag_value(args, "--timeout") {
        let secs: u64 = t
            .parse()
            .map_err(|_| format!("--timeout expects seconds, got `{t}`"))?;
        opts = opts.with_timeout(Duration::from_secs(secs));
    }
    if let Some(j) = flag_value(args, "--jobs") {
        let jobs: usize = j
            .parse()
            .map_err(|_| format!("--jobs expects a number, got `{j}`"))?;
        if jobs == 0 {
            return Err("--jobs must be at least 1".to_string());
        }
        opts = opts.with_jobs(jobs);
    }
    if args.iter().any(|a| a == "--certify") {
        opts = opts.with_certify();
    }
    let incremental = args.iter().any(|a| a == "--incremental");
    let no_incremental = args.iter().any(|a| a == "--no-incremental");
    if incremental && no_incremental {
        return Err("--incremental and --no-incremental are mutually exclusive".to_string());
    }
    if incremental {
        opts = opts.with_incremental(true);
    } else if no_incremental {
        opts = opts.with_incremental(false);
    }
    if args.iter().any(|a| a == "--no-sharing") {
        opts = opts.with_sharing(false);
    }
    let bdd_part = args.iter().any(|a| a == "--bdd-partitioned");
    let bdd_mono = args.iter().any(|a| a == "--bdd-monolithic");
    if bdd_part && bdd_mono {
        return Err("--bdd-partitioned and --bdd-monolithic are mutually exclusive".to_string());
    }
    if bdd_mono {
        opts = opts.with_bdd_partitioned(false);
    }
    if args.iter().any(|a| a == "--bdd-no-sift") {
        opts = opts.with_bdd_sift(false);
    }
    if let Some(t) = flag_value(args, "--bdd-sift-threshold") {
        let nodes: usize = t
            .parse()
            .map_err(|_| format!("--bdd-sift-threshold expects a node count, got `{t}`"))?;
        opts = opts.with_bdd_sift_threshold(nodes);
    }
    if let Some(m) = flag_value(args, "--max-bdd-nodes") {
        let max: usize = m
            .parse()
            .map_err(|_| format!("--max-bdd-nodes expects a node count, got `{m}`"))?;
        opts = opts.with_max_bdd_nodes(max);
    }
    if let Some(r) = flag_value(args, "--retries") {
        let retries: u32 = r
            .parse()
            .map_err(|_| format!("--retries expects a number, got `{r}`"))?;
        if retries > 0 {
            let mut policy = RetryPolicy::with_retries(retries);
            if let Some(f) = flag_value(args, "--retry-factor") {
                policy = policy.with_factor(
                    f.parse()
                        .map_err(|_| format!("--retry-factor expects a number, got `{f}`"))?,
                );
            }
            if let Some(b) = flag_value(args, "--retry-backoff-ms") {
                policy = policy
                    .with_backoff(Duration::from_millis(b.parse().map_err(|_| {
                        format!("--retry-backoff-ms expects millis, got `{b}`")
                    })?));
            }
            opts = opts.with_retry(policy);
        }
    }
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_journal::json::parse;

    const COUNTER: &str = "system s {
        var n : 0..7;
        param p : 1..3;
        init n = 0;
        trans next(n) = if n < 7 then n + p else n;
        invariant in_range: n <= 7;
        invariant miss5: n != 5;
    }";

    #[test]
    fn spec_round_trip() {
        let spec = JobSpec {
            kind: JobKind::Synth,
            source: "system s { var n : 0..3; init n = 0; trans next(n) = n; }".into(),
            prop: Some("miss".into()),
            engine: "kind".into(),
            depth: Some(32),
            deadline_ms: Some(5000),
            params: vec!["a".into(), "b".into()],
            certify: true,
            idem: Some("client-7-42".into()),
        };
        assert_eq!(
            JobSpec::from_json(&parse(&spec.to_json().to_string()).unwrap()).unwrap(),
            spec
        );
        let bare = JobSpec::check("system s {}");
        assert_eq!(
            JobSpec::from_json(&parse(&bare.to_json().to_string()).unwrap()).unwrap(),
            bare
        );
    }

    #[test]
    fn fingerprint_ignores_deadline_and_idem() {
        let mut a = JobSpec::check("system s {}");
        let mut b = a.clone();
        b.deadline_ms = Some(100);
        b.idem = Some("k".into());
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.engine = "bdd".into();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn validate_catches_each_failure_class() {
        let mut spec = JobSpec::check("system s {");
        assert!(matches!(spec.validate(), Err(SpecError::Parse(_))));
        spec = JobSpec::check(COUNTER);
        assert!(spec.validate().is_ok());
        spec.engine = "nuxmv".into();
        assert!(matches!(spec.validate(), Err(SpecError::BadRequest(_))));
        spec.engine = "auto".into();
        spec.prop = Some("nope".into());
        assert!(matches!(spec.validate(), Err(SpecError::BadRequest(_))));
        let mut synth = JobSpec::synth(COUNTER, &["p"]);
        assert!(matches!(synth.validate(), Err(SpecError::BadRequest(_)))); // two properties
        synth.prop = Some("miss5".into());
        assert!(synth.validate().is_ok());
        synth.params = vec!["q".into()];
        assert!(matches!(synth.validate(), Err(SpecError::BadRequest(_))));
        synth.params = Vec::new();
        assert!(matches!(synth.validate(), Err(SpecError::BadRequest(_))));
    }

    #[test]
    fn from_cli_args_builds_the_spec() {
        let args: Vec<String> = [
            "--prop",
            "miss5",
            "--engine",
            "kind",
            "--depth",
            "12",
            "--deadline",
            "3",
            "--certify",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let spec = JobSpec::from_cli_args(JobKind::Check, COUNTER, &args).unwrap();
        assert_eq!(spec.prop.as_deref(), Some("miss5"));
        assert_eq!(spec.engine, "kind");
        assert_eq!(spec.depth, Some(12));
        assert_eq!(spec.deadline_ms, Some(3000));
        assert!(spec.certify);
        let bad: Vec<String> = ["--engine", "nuxmv"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(JobSpec::from_cli_args(JobKind::Check, COUNTER, &bad).is_err());
    }

    #[test]
    fn check_options_overlays_budgets() {
        let mut spec = JobSpec::check(COUNTER);
        spec.depth = Some(9);
        spec.deadline_ms = Some(1500);
        spec.certify = true;
        let opts = spec.check_options(CheckOptions::default());
        assert_eq!(opts.max_depth, 9);
        assert_eq!(opts.timeout, Some(Duration::from_millis(1500)));
        assert!(opts.certify);
    }

    #[test]
    fn execute_checks_and_synthesizes() {
        let spec = JobSpec::check(COUNTER);
        // p is frozen and unconstrained, so `miss5` is violated for p=1
        // (0,1,2,3,4,5) and `in_range` holds.
        let (rows, stats) = execute(&spec, &ExecContext::default());
        assert_eq!(rows.len(), 2);
        assert!(stats.is_some());
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        assert_eq!(by_name("in_range").verdict, "safe");
        assert_eq!(by_name("miss5").verdict, "unsafe");

        let mut synth = JobSpec::synth(COUNTER, &["p"]);
        synth.prop = Some("miss5".into());
        let (rows, _) = execute(&synth, &ExecContext::default());
        assert_eq!(rows.len(), 3, "{rows:?}");
        let unsafe_rows: Vec<_> = rows.iter().filter(|r| r.verdict == "unsafe").collect();
        assert_eq!(unsafe_rows.len(), 1);
        assert_eq!(unsafe_rows[0].name, "p=1");
    }

    #[test]
    fn options_from_args_validates() {
        let ok: Vec<String> = ["--depth", "32", "--jobs", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = options_from_args(&ok).unwrap();
        assert_eq!(opts.max_depth, 32);
        assert_eq!(opts.jobs, Some(2));
        let bad: Vec<String> = ["--depth", "many"].iter().map(|s| s.to_string()).collect();
        assert!(options_from_args(&bad).is_err());
    }
}
