//! Blast-radius risk assessment (paper §5, "Beyond traditional
//! verification": *"We could also help with risk assessment by examining
//! the blast radius of an operational event."*).
//!
//! Given an *event* (a state predicate — a link failing, a rollout
//! starting, an autoscaler decision) and an integer *metric* (available
//! replicas, capacity, queue depth), [`worst_case_after`] computes the
//! worst (lowest) metric value reachable at or after an occurrence of the
//! event, within a bounded horizon — plus the execution that realizes it.
//!
//! Implementation: the system is instrumented with a latched `event_seen`
//! flag, then the minimal reachable metric under `event_seen` is found by
//! binary search over the metric's static range, each probe a bounded
//! model-checking query.

//!
//! ```
//! use verdict_mc::{blast, CheckOptions};
//! use verdict_ts::{Expr, System};
//!
//! // A counter that may be reset by an operator action at any time.
//! let mut sys = System::new("resettable");
//! let n = sys.int_var("n", 0, 7);
//! let reset = sys.bool_var("reset");
//! sys.add_init(Expr::var(n).eq(Expr::int(5)));
//! sys.add_trans(Expr::next(n).eq(Expr::ite(
//!     Expr::next(reset), Expr::int(0), Expr::var(n))));
//! // Blast radius of the reset event on n: worst value is 0.
//! let r = blast::worst_case_after(&sys, &Expr::var(reset), &Expr::var(n),
//!                                 &CheckOptions::with_depth(6)).unwrap().unwrap();
//! assert_eq!(r.worst, 0);
//! ```
use verdict_ts::{Expr, Sort, System, Trace, VarKind};

use crate::result::{CheckOptions, CheckResult, McError};
use crate::tableau::shift_to_next;

/// The outcome of a blast-radius analysis.
#[derive(Clone, Debug)]
pub struct BlastRadius {
    /// The worst (minimal) metric value reachable at or after the event
    /// within the horizon.
    pub worst: i64,
    /// Metric value range that was searched (the metric's static range).
    pub range: (i64, i64),
    /// A witness execution ending in a state with `metric = worst` after
    /// the event (projected to the original variables).
    pub witness: Trace,
}

/// Computes the worst reachable value of `metric` at-or-after a state
/// satisfying `event`, over executions of length ≤ `opts.max_depth`.
///
/// Returns `Ok(None)` if no execution within the horizon contains the
/// event at all. The result is a *bounded* worst case: deeper executions
/// could in principle be worse; increase `opts.max_depth` to tighten.
pub fn worst_case_after(
    sys: &System,
    event: &Expr,
    metric: &Expr,
    opts: &CheckOptions,
) -> Result<Option<BlastRadius>, McError> {
    if event.mentions_next() || metric.mentions_next() {
        return Err(McError(
            "blast-radius event and metric must be current-state expressions \
             (no next())"
                .into(),
        ));
    }
    let Sort::Int { lo, hi } = metric.sort(sys)? else {
        return Err(McError("blast-radius metric must be integer-sorted".into()));
    };
    // Instrument: seen latches once the event holds (checked on both the
    // initial state and every successor state).
    let mut inst = sys.clone();
    let seen = inst.add_var("__event_seen", Sort::Bool, VarKind::State);
    inst.add_init(Expr::var(seen).iff(event.clone()));
    inst.add_trans(Expr::next(seen).iff(Expr::var(seen).or(shift_to_next(event))));

    let probe = |bound: i64| -> Result<CheckResult, McError> {
        // Violation of G(seen -> metric > bound) ⇔ metric ≤ bound is
        // reachable after the event.
        let p = Expr::var(seen).implies(metric.clone().gt(Expr::int(bound)));
        crate::bmc::run_invariant(&inst, &p, opts, &mut crate::stats::Stats::default())
    };

    // Is the event itself reachable (metric ≤ hi always holds, so this
    // probe is exactly "event reachable within the horizon")?
    let at_all = probe(hi)?;
    let CheckResult::Violated(_) = at_all else {
        // Holds (proved unreachable) and depth exhaustion both mean "no
        // event within the horizon" — the bounded-analysis answer.
        return match at_all {
            CheckResult::Unknown(crate::result::UnknownReason::Timeout) => {
                Err(McError("blast-radius probe timed out".to_string()))
            }
            _ => Ok(None),
        };
    };

    // Binary search the minimal reachable bound.
    let (mut lo_b, mut hi_b) = (lo, hi); // invariant: reachable(≤ hi_b)
    let mut witness = at_all;
    while lo_b < hi_b {
        let mid = lo_b + (hi_b - lo_b) / 2;
        match probe(mid)? {
            CheckResult::Violated(t) => {
                witness = CheckResult::Violated(t);
                hi_b = mid;
            }
            CheckResult::Holds | CheckResult::Unknown(_) => {
                // Not reachable within the horizon: worst is above mid.
                lo_b = mid + 1;
            }
        }
    }
    let trace = witness.trace().expect("witness kept").clone();
    // Project the instrumentation variable away.
    let mut projected = trace;
    projected.var_names.truncate(sys.num_vars());
    for s in &mut projected.states {
        s.truncate(sys.num_vars());
    }
    Ok(Some(BlastRadius {
        worst: lo_b,
        range: (lo, hi),
        witness: projected,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Saturating step counter: n += step while n ≤ 7, step ∈ {1, 2}.
    fn counter() -> (System, verdict_ts::VarId) {
        let mut sys = System::new("blast-counter");
        let n = sys.int_var("n", 0, 9);
        let step = sys.int_param("step", 1, 2);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        sys.add_trans(Expr::next(n).eq(Expr::ite(
            Expr::var(n).le(Expr::int(7)),
            Expr::var(n).add(Expr::var(step)),
            Expr::var(n),
        )));
        (sys, n)
    }

    #[test]
    fn next_state_expressions_rejected() {
        let (sys, n) = counter();
        let e = worst_case_after(
            &sys,
            &Expr::next(n).eq(Expr::int(3)),
            &Expr::var(n),
            &CheckOptions::with_depth(4),
        );
        assert!(e.is_err(), "next() in the event must be a clean error");
    }

    #[test]
    fn unreachable_event_returns_none() {
        let (sys, n) = counter();
        let r = worst_case_after(
            &sys,
            &Expr::var(n)
                .gt(Expr::int(20))
                .and(Expr::var(n).lt(Expr::int(0))),
            &Expr::var(n),
            &CheckOptions::with_depth(6),
        )
        .unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn worst_metric_after_event() {
        // Event: n reaches 4 (needs step=2 at depth small). Metric: n.
        // After n ≥ 4, n never decreases, so the worst value *at* the
        // event is 4 (step=2) or 5 (overshoot); minimal over runs is 4.
        let (sys, n) = counter();
        let r = worst_case_after(
            &sys,
            &Expr::var(n).ge(Expr::int(4)),
            &Expr::var(n),
            &CheckOptions::with_depth(10),
        )
        .unwrap()
        .expect("event reachable");
        assert_eq!(r.worst, 4, "witness:\n{}", r.witness);
        // The witness ends at the worst state and hides instrumentation.
        assert!(!r.witness.var_names.iter().any(|n| n.starts_with("__")));
        let last = r.witness.states.last().unwrap();
        assert_eq!(last[0], verdict_ts::Value::Int(4));
    }

    #[test]
    fn rollout_blast_radius_of_link_failure() {
        use verdict_models_shim::*;
        // Test topology, p = 1, k = 1, m = 0: after any link failure the
        // worst true availability is 2 (failure isolates one node and an
        // update takes another down).
        let model = rollout_test_model();
        let sys = model.0.pinned(1, 1, 0);
        let any_failure = Expr::or_all(model.0.failed.iter().map(|&f| Expr::var(f)));
        let r = worst_case_after(
            &sys,
            &any_failure,
            &model.0.true_available,
            &CheckOptions::with_depth(6),
        )
        .unwrap()
        .expect("failures reachable");
        assert_eq!(r.worst, 2, "witness:\n{}", r.witness);
    }

    /// Tiny shim so mc's tests can build the rollout model without a
    /// circular dev-dependency on verdict-models: replicate the topology
    /// and reuse the public builder through a local copy.
    mod verdict_models_shim {
        pub struct ModelBox(pub verdict_models_like::Model);

        pub fn rollout_test_model() -> ModelBox {
            ModelBox(verdict_models_like::build())
        }

        /// Minimal inline re-derivation of the test-topology rollout
        /// model (5 nodes, 5 links) for this test only.
        pub mod verdict_models_like {
            use verdict_ts::{Expr, System, VarId};

            pub struct Model {
                pub system: System,
                pub failed: Vec<VarId>,
                pub true_available: Expr,
                p: VarId,
                k: VarId,
                m: VarId,
            }

            impl Model {
                pub fn pinned(&self, p: i64, k: i64, m: i64) -> System {
                    let mut sys = self.system.clone();
                    sys.add_invar(Expr::var(self.p).eq(Expr::int(p)));
                    sys.add_invar(Expr::var(self.k).eq(Expr::int(k)));
                    sys.add_invar(Expr::var(self.m).eq(Expr::int(m)));
                    sys
                }
            }

            pub fn build() -> Model {
                // Topology: fe=0; links 0-1, 0-2, 0-3, 1-2, 1-4.
                let links = [(0usize, 1usize), (0, 2), (0, 3), (1, 2), (1, 4)];
                let n_nodes = 5;
                let service = [1usize, 2, 3, 4];
                let mut sys = System::new("blast-rollout");
                let p = sys.int_param("p", 0, 3);
                let k = sys.int_param("k", 0, 3);
                let m = sys.int_param("m", 0, 3);
                let down: Vec<VarId> = service
                    .iter()
                    .map(|i| sys.bool_var(&format!("down{i}")))
                    .collect();
                let failed: Vec<VarId> = links
                    .iter()
                    .map(|(a, b)| sys.bool_var(&format!("fail{a}{b}")))
                    .collect();
                for &d in &down {
                    sys.add_init(Expr::var(d).not());
                }
                for &f in &failed {
                    sys.add_init(Expr::var(f).not());
                    sys.add_trans(Expr::var(f).implies(Expr::next(f)));
                }
                let downs = Expr::count_true(down.iter().map(|&d| Expr::var(d)));
                sys.add_invar(downs.le(Expr::var(p)));
                let fails = Expr::count_true(failed.iter().map(|&f| Expr::var(f)));
                sys.add_invar(fails.le(Expr::var(k)));
                // Layered reachability over 5 nodes.
                let mut layer: Vec<Expr> = (0..n_nodes).map(|i| Expr::bool(i == 0)).collect();
                for _ in 0..n_nodes - 1 {
                    let mut next = Vec::new();
                    for i in 0..n_nodes {
                        let mut grow = Expr::ff();
                        for (li, &(a, b)) in links.iter().enumerate() {
                            if a == i || b == i {
                                let j = if a == i { b } else { a };
                                grow = Expr::or_pair(
                                    grow,
                                    Expr::and_pair(Expr::var(failed[li]).not(), layer[j].clone()),
                                );
                            }
                        }
                        next.push(Expr::or_pair(layer[i].clone(), grow));
                    }
                    layer = next;
                }
                let true_available = Expr::count_true(
                    service
                        .iter()
                        .zip(&down)
                        .map(|(&node, &d)| Expr::var(d).not().and(layer[node].clone())),
                );
                Model {
                    system: sys,
                    failed,
                    true_available,
                    p,
                    k,
                    m,
                }
            }
        }
    }
}
