//! The [`Verifier`] façade — the paper's Fig. 4 workflow as an API.
//!
//! Inputs: a control-component/environment model (a `verdict-ts`
//! [`System`]), a property (invariant, LTL, or CTL), optional parameter
//! constraints. Outputs: verification results, counterexamples, or
//! suggested safe parameters.
//!
//! ```
//! use verdict_mc::{Engine, Verifier};
//! use verdict_ts::{Expr, System};
//!
//! let mut sys = System::new("counter");
//! let n = sys.int_var("n", 0, 7);
//! sys.add_init(Expr::var(n).eq(Expr::int(0)));
//! sys.add_trans(Expr::next(n).eq(Expr::ite(
//!     Expr::var(n).lt(Expr::int(7)),
//!     Expr::var(n).add(Expr::int(1)),
//!     Expr::var(n),
//! )));
//! let verifier = Verifier::new(&sys);
//! let ok = verifier.check_invariant(&Expr::var(n).le(Expr::int(7))).unwrap();
//! assert!(ok.holds());
//! let bad = verifier.check_invariant(&Expr::var(n).lt(Expr::int(7))).unwrap();
//! assert!(bad.violated());
//! ```

use verdict_ts::{Ctl, Expr, Ltl, System, VarId};

use crate::durable::Durability;
use crate::params::{self, Property, SynthesisEngine, SynthesisResult};
use crate::result::{CheckOptions, CheckResult, McError, UnknownReason};

/// Runs a solo engine with panic containment: an engine crash becomes
/// `Unknown(EngineFailure)` instead of unwinding into the caller, so a
/// CLI run survives a dying solver the same way portfolio contenders and
/// synthesis workers do.
fn contained(
    engine: Engine,
    f: impl FnOnce() -> Result<CheckResult, McError>,
) -> Result<CheckResult, McError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).unwrap_or_else(|payload| {
        let msg: &str = if let Some(s) = payload.downcast_ref::<&str>() {
            s
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s
        } else {
            "non-string panic payload"
        };
        eprintln!("verdict-mc: {engine} engine panicked: {msg}");
        Ok(CheckResult::Unknown(UnknownReason::EngineFailure))
    })
}

/// Engine selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Engine {
    /// Choose automatically: SMT-BMC for real-sorted systems; otherwise
    /// k-induction for invariants (falsify + prove) and BDD for LTL/CTL.
    #[default]
    Auto,
    /// SAT bounded model checking (falsification only).
    Bmc,
    /// k-induction (invariants; proves and falsifies).
    KInduction,
    /// BDD fixpoint engine (complete on finite systems).
    Bdd,
    /// Explicit-state reference engine (tiny finite systems).
    Explicit,
    /// SMT bounded model checking (real-valued systems; falsification).
    SmtBmc,
    /// Race a falsifier against the provers in parallel threads and keep
    /// the first definitive verdict (see [`crate::portfolio`]).
    Portfolio,
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Engine::Auto => "auto",
            Engine::Bmc => "bmc",
            Engine::KInduction => "k-induction",
            Engine::Bdd => "bdd",
            Engine::Explicit => "explicit",
            Engine::SmtBmc => "smt-bmc",
            Engine::Portfolio => "portfolio",
        })
    }
}

/// The verification façade. Borrowing the system keeps the API cheap to
/// use in parameter sweeps; all state lives in the engines per call.
pub struct Verifier<'s> {
    sys: &'s System,
    engine: Engine,
    opts: CheckOptions,
}

impl<'s> Verifier<'s> {
    /// A verifier with default options and automatic engine choice.
    pub fn new(sys: &'s System) -> Verifier<'s> {
        Verifier {
            sys,
            engine: Engine::Auto,
            opts: CheckOptions::default(),
        }
    }

    /// Selects a specific engine.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets resource options.
    pub fn options(mut self, opts: CheckOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The engine a check will actually use once `Auto` is resolved
    /// against the system's sorts (reported in CLI/JSON output).
    pub fn effective_engine(&self) -> Engine {
        match self.engine {
            Engine::Auto => {
                if self.sys.has_real_vars() {
                    Engine::SmtBmc
                } else {
                    Engine::KInduction
                }
            }
            e => e,
        }
    }

    /// Checks the safety property `G p`.
    pub fn check_invariant(&self, p: &Expr) -> Result<CheckResult, McError> {
        let engine = self.effective_engine();
        contained(engine, || match engine {
            Engine::Bmc => crate::bmc::check_invariant(self.sys, p, &self.opts),
            Engine::KInduction => crate::kind::prove_invariant(self.sys, p, &self.opts),
            Engine::Bdd => crate::bdd::check_invariant(self.sys, p, &self.opts),
            Engine::Explicit => crate::explicit_engine::check_invariant(self.sys, p, &self.opts),
            Engine::SmtBmc => crate::smtbmc::check_invariant(self.sys, p, &self.opts),
            Engine::Portfolio => {
                crate::portfolio::check_invariant(self.sys, p, &self.opts).map(|r| r.result)
            }
            Engine::Auto => unreachable!("resolved above"),
        })
    }

    /// Like [`Verifier::check_invariant`] but always returns the racing
    /// metadata ([`crate::portfolio::CheckReport`]): winning engine and
    /// wall-clock time. Non-portfolio engines run solo and report
    /// themselves as the winner.
    pub fn check_invariant_report(
        &self,
        p: &Expr,
    ) -> Result<crate::portfolio::CheckReport, McError> {
        use std::time::Instant;
        match self.effective_engine() {
            Engine::Portfolio => crate::portfolio::check_invariant(self.sys, p, &self.opts),
            engine => {
                let start = Instant::now();
                let result = self.check_invariant(p)?;
                Ok(crate::portfolio::CheckReport {
                    winner: engine,
                    wall: start.elapsed(),
                    outcomes: vec![(engine, result.clone())],
                    result,
                })
            }
        }
    }

    /// Checks an LTL property.
    pub fn check_ltl(&self, phi: &Ltl) -> Result<CheckResult, McError> {
        let engine = self.effective_engine();
        contained(engine, || match engine {
            Engine::Bmc => crate::bmc::check_ltl(self.sys, phi, &self.opts),
            Engine::Bdd => crate::bdd::check_ltl(self.sys, phi, &self.opts),
            Engine::Explicit => crate::explicit_engine::check_ltl(self.sys, phi, &self.opts),
            Engine::SmtBmc => crate::smtbmc::check_ltl(self.sys, phi, &self.opts),
            // k-induction does not handle liveness; fall back to the
            // complete finite engine.
            Engine::KInduction => crate::bdd::check_ltl(self.sys, phi, &self.opts),
            Engine::Portfolio => {
                crate::portfolio::check_ltl(self.sys, phi, &self.opts).map(|r| r.result)
            }
            Engine::Auto => unreachable!("resolved above"),
        })
    }

    /// Checks a CTL property (finite engines only).
    pub fn check_ctl(&self, phi: &Ctl) -> Result<CheckResult, McError> {
        let engine = self.effective_engine();
        contained(engine, || match engine {
            Engine::Explicit => crate::explicit_engine::check_ctl(self.sys, phi, &self.opts),
            Engine::SmtBmc | Engine::Bmc => Err(McError(
                "CTL requires a complete engine (BDD or explicit)".to_string(),
            )),
            Engine::Portfolio => {
                crate::portfolio::check_ctl(self.sys, phi, &self.opts).map(|r| r.result)
            }
            _ => crate::bdd::check_ctl(self.sys, phi, &self.opts),
        })
    }

    /// Synthesizes safe values for the given frozen parameters against an
    /// invariant (paper case study 1's `p ∈ {1, 2}` workflow).
    pub fn synthesize_params(
        &self,
        params: &[VarId],
        property: &Property,
    ) -> Result<SynthesisResult, McError> {
        params::synthesize(
            self.sys,
            params,
            property,
            self.synthesis_engine(property),
            &self.opts,
        )
    }

    /// Like [`Verifier::synthesize_params`] but stops at the first SAFE
    /// assignment, cancelling outstanding workers (assignments not fully
    /// checked report `Unknown(Cancelled)`).
    pub fn synthesize_params_first_safe(
        &self,
        params: &[VarId],
        property: &Property,
    ) -> Result<SynthesisResult, McError> {
        params::synthesize_first_safe(
            self.sys,
            params,
            property,
            self.synthesis_engine(property),
            &self.opts,
        )
    }

    /// Like [`Verifier::synthesize_params`] but records every verdict in a
    /// journal and/or skips assignments already decided by a resumed run
    /// (see [`crate::durable`]).
    pub fn synthesize_params_durable(
        &self,
        params: &[VarId],
        property: &Property,
        durability: &Durability<'_>,
    ) -> Result<SynthesisResult, McError> {
        params::synthesize_durable(
            self.sys,
            params,
            property,
            self.synthesis_engine(property),
            &self.opts,
            durability,
        )
    }

    /// Durable variant of [`Verifier::synthesize_params_first_safe`].
    pub fn synthesize_params_first_safe_durable(
        &self,
        params: &[VarId],
        property: &Property,
        durability: &Durability<'_>,
    ) -> Result<SynthesisResult, McError> {
        params::synthesize_first_safe_durable(
            self.sys,
            params,
            property,
            self.synthesis_engine(property),
            &self.opts,
            durability,
        )
    }

    /// The synthesis engine a parameter sweep will use for `property`
    /// (needed by callers to fingerprint a journal before the sweep runs).
    pub fn synthesis_engine(&self, property: &Property) -> SynthesisEngine {
        match self.effective_engine() {
            Engine::Bdd => SynthesisEngine::Bdd,
            Engine::Explicit => SynthesisEngine::Explicit,
            _ => match property {
                Property::Invariant(_) => SynthesisEngine::KInduction,
                Property::Ltl(_) => SynthesisEngine::Bdd,
            },
        }
    }

    /// Finds violating parameter values symbolically (they appear in the
    /// returned counterexample trace).
    pub fn find_violating_params(&self, property: &Property) -> Result<CheckResult, McError> {
        params::find_violating_params(self.sys, property, &self.opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_ts::Value;

    fn counter() -> (System, VarId) {
        let mut sys = System::new("counter");
        let n = sys.int_var("n", 0, 7);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        sys.add_trans(Expr::next(n).eq(Expr::ite(
            Expr::var(n).lt(Expr::int(7)),
            Expr::var(n).add(Expr::int(1)),
            Expr::var(n),
        )));
        (sys, n)
    }

    #[test]
    fn auto_engine_proves_and_falsifies() {
        let (sys, n) = counter();
        let v = Verifier::new(&sys);
        assert!(v
            .check_invariant(&Expr::var(n).le(Expr::int(7)))
            .unwrap()
            .holds());
        assert!(v
            .check_invariant(&Expr::var(n).lt(Expr::int(5)))
            .unwrap()
            .violated());
    }

    #[test]
    fn engine_selection_respected() {
        let (sys, n) = counter();
        let bmc = Verifier::new(&sys).engine(Engine::Bmc);
        // BMC can only falsify; a holding invariant gives Unknown.
        let r = bmc
            .options(CheckOptions::with_depth(10))
            .check_invariant(&Expr::var(n).le(Expr::int(7)))
            .unwrap();
        assert!(matches!(r, CheckResult::Unknown(_)));
    }

    #[test]
    fn auto_routes_real_systems_to_smt() {
        let mut sys = System::new("real");
        let x = sys.real_var("x");
        sys.add_init(Expr::var(x).eq(Expr::real(verdict_logic::Rational::ZERO)));
        sys.add_trans(Expr::next(x).eq(Expr::var(x).add(Expr::real(verdict_logic::Rational::ONE))));
        let v = Verifier::new(&sys).options(CheckOptions::with_depth(6));
        let r = v
            .check_invariant(&Expr::var(x).lt(Expr::real(verdict_logic::Rational::integer(3))))
            .unwrap();
        assert!(r.violated(), "{r}");
    }

    #[test]
    fn ctl_requires_complete_engine() {
        let (sys, n) = counter();
        let v = Verifier::new(&sys).engine(Engine::Bmc);
        assert!(v
            .check_ctl(&Ctl::atom(Expr::var(n).eq(Expr::int(7))).ef())
            .is_err());
        let v = Verifier::new(&sys);
        assert!(v
            .check_ctl(&Ctl::atom(Expr::var(n).eq(Expr::int(7))).ef())
            .unwrap()
            .holds());
    }

    #[test]
    fn synthesis_through_facade() {
        let mut sys = System::new("step");
        let n = sys.int_var("n", 0, 10);
        let p = sys.int_param("p", 1, 3);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        sys.add_trans(Expr::next(n).eq(Expr::ite(
            Expr::var(n).le(Expr::int(7)),
            Expr::var(n).add(Expr::var(p)),
            Expr::var(n),
        )));
        let v = Verifier::new(&sys);
        let prop = Property::Invariant(Expr::var(n).ne(Expr::int(5)));
        let r = v.synthesize_params(&[p], &prop).unwrap();
        assert_eq!(r.safe().len(), 2);
        let viol = v.find_violating_params(&prop).unwrap();
        assert_eq!(viol.trace().unwrap().value(0, "p"), Some(&Value::Int(1)));
    }
}
