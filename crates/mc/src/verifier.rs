//! The [`Verifier`] façade — the paper's Fig. 4 workflow as an API.
//!
//! Inputs: a control-component/environment model (a `verdict-ts`
//! [`System`]), a property (invariant, LTL, or CTL), optional parameter
//! constraints. Outputs: verification results, counterexamples, or
//! suggested safe parameters.
//!
//! ```
//! use verdict_mc::{EngineKind, Verifier};
//! use verdict_ts::{Expr, System};
//!
//! let mut sys = System::new("counter");
//! let n = sys.int_var("n", 0, 7);
//! sys.add_init(Expr::var(n).eq(Expr::int(0)));
//! sys.add_trans(Expr::next(n).eq(Expr::ite(
//!     Expr::var(n).lt(Expr::int(7)),
//!     Expr::var(n).add(Expr::int(1)),
//!     Expr::var(n),
//! )));
//! let verifier = Verifier::new(&sys);
//! let ok = verifier.check_invariant(&Expr::var(n).le(Expr::int(7))).unwrap();
//! assert!(ok.holds());
//! let bad = verifier.check_invariant(&Expr::var(n).lt(Expr::int(7))).unwrap();
//! assert!(bad.violated());
//! ```

use verdict_ts::{Ctl, Expr, Ltl, System, VarId};

use crate::durable::Durability;
use crate::engine::{engine, EngineKind};
use crate::params::{self, Property, SynthesisEngine, SynthesisResult};
use crate::result::{CheckOptions, CheckResult, McError, UnknownReason};
use crate::stats::Stats;

/// Runs a solo engine with panic containment: an engine crash becomes
/// `Unknown(EngineFailure)` instead of unwinding into the caller, so a
/// CLI run survives a dying solver the same way portfolio contenders and
/// synthesis workers do.
fn contained(
    engine: EngineKind,
    f: impl FnOnce() -> Result<CheckResult, McError>,
) -> Result<CheckResult, McError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).unwrap_or_else(|payload| {
        let msg: &str = if let Some(s) = payload.downcast_ref::<&str>() {
            s
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s
        } else {
            "non-string panic payload"
        };
        eprintln!("verdict-mc: {engine} engine panicked: {msg}");
        Ok(CheckResult::Unknown(UnknownReason::EngineFailure))
    })
}

/// The verification façade. Borrowing the system keeps the API cheap to
/// use in parameter sweeps; all state lives in the engines per call.
pub struct Verifier<'s> {
    sys: &'s System,
    engine: EngineKind,
    opts: CheckOptions,
}

impl<'s> Verifier<'s> {
    /// A verifier with default options and automatic engine choice.
    pub fn new(sys: &'s System) -> Verifier<'s> {
        Verifier {
            sys,
            engine: EngineKind::Auto,
            opts: CheckOptions::default(),
        }
    }

    /// Selects a specific engine.
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Sets resource options.
    pub fn options(mut self, opts: CheckOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The engine a check will actually use once `Auto` is resolved
    /// against the system's sorts (reported in CLI/JSON output).
    pub fn effective_engine(&self) -> EngineKind {
        match self.engine {
            EngineKind::Auto => crate::engine::resolve_auto(self.sys),
            e => e,
        }
    }

    /// Hands back `stats` with the options' trace sink attached when the
    /// caller didn't bring one of their own.
    fn wire_trace(&self, stats: &mut Stats) {
        if stats.trace().is_none() {
            if let Some(sink) = &self.opts.trace {
                *stats = std::mem::take(stats).with_trace(Some(sink.clone()));
            }
        }
    }

    /// Checks the safety property `G p`.
    pub fn check_invariant(&self, p: &Expr) -> Result<CheckResult, McError> {
        self.check_invariant_stats(p, &mut Stats::default())
    }

    /// Like [`Verifier::check_invariant`], recording engine counters and
    /// phase timings into `stats`.
    pub fn check_invariant_stats(
        &self,
        p: &Expr,
        stats: &mut Stats,
    ) -> Result<CheckResult, McError> {
        let kind = self.effective_engine();
        self.wire_trace(stats);
        contained(kind, || {
            engine(kind).check_invariant(self.sys, p, &self.opts, stats)
        })
    }

    /// Like [`Verifier::check_invariant`] but always returns the racing
    /// metadata ([`crate::portfolio::CheckReport`]): winning engine, stats,
    /// and wall-clock time. Non-portfolio engines run solo and report
    /// themselves as the winner.
    pub fn check_invariant_report(
        &self,
        p: &Expr,
    ) -> Result<crate::portfolio::CheckReport, McError> {
        use std::time::Instant;
        match self.effective_engine() {
            EngineKind::Portfolio => {
                let mut stats = Stats::default();
                self.wire_trace(&mut stats);
                crate::portfolio::run_invariant(self.sys, p, &self.opts, &mut stats)
            }
            kind => {
                let start = Instant::now();
                let mut stats = Stats::for_engine(kind);
                let result = self.check_invariant_stats(p, &mut stats)?;
                Ok(crate::portfolio::CheckReport {
                    winner: kind,
                    wall: start.elapsed(),
                    outcomes: vec![(kind, result.clone())],
                    contender_stats: vec![(kind, stats.clone())],
                    stats,
                    result,
                })
            }
        }
    }

    /// Checks an LTL property.
    pub fn check_ltl(&self, phi: &Ltl) -> Result<CheckResult, McError> {
        self.check_ltl_stats(phi, &mut Stats::default())
    }

    /// Like [`Verifier::check_ltl`], recording engine counters and phase
    /// timings into `stats`.
    pub fn check_ltl_stats(&self, phi: &Ltl, stats: &mut Stats) -> Result<CheckResult, McError> {
        let kind = self.effective_engine();
        self.wire_trace(stats);
        contained(kind, || {
            engine(kind).check_ltl(self.sys, phi, &self.opts, stats)
        })
    }

    /// Like [`Verifier::check_ltl`] but always returns the racing
    /// metadata ([`crate::portfolio::CheckReport`]). Non-portfolio
    /// engines run solo and report themselves as the winner.
    pub fn check_ltl_report(&self, phi: &Ltl) -> Result<crate::portfolio::CheckReport, McError> {
        use std::time::Instant;
        match self.effective_engine() {
            EngineKind::Portfolio => {
                let mut stats = Stats::default();
                self.wire_trace(&mut stats);
                crate::portfolio::run_ltl(self.sys, phi, &self.opts, &mut stats)
            }
            kind => {
                let start = Instant::now();
                let mut stats = Stats::for_engine(kind);
                let result = self.check_ltl_stats(phi, &mut stats)?;
                Ok(crate::portfolio::CheckReport {
                    winner: kind,
                    wall: start.elapsed(),
                    outcomes: vec![(kind, result.clone())],
                    contender_stats: vec![(kind, stats.clone())],
                    stats,
                    result,
                })
            }
        }
    }

    /// Checks a CTL property (finite engines only).
    pub fn check_ctl(&self, phi: &Ctl) -> Result<CheckResult, McError> {
        self.check_ctl_stats(phi, &mut Stats::default())
    }

    /// Like [`Verifier::check_ctl`], recording engine counters and phase
    /// timings into `stats`.
    pub fn check_ctl_stats(&self, phi: &Ctl, stats: &mut Stats) -> Result<CheckResult, McError> {
        let kind = self.effective_engine();
        self.wire_trace(stats);
        contained(kind, || {
            engine(kind).check_ctl(self.sys, phi, &self.opts, stats)
        })
    }

    /// Like [`Verifier::check_ctl`] but always returns the racing
    /// metadata ([`crate::portfolio::CheckReport`]). Non-portfolio
    /// engines run solo and report themselves as the winner.
    pub fn check_ctl_report(&self, phi: &Ctl) -> Result<crate::portfolio::CheckReport, McError> {
        use std::time::Instant;
        match self.effective_engine() {
            EngineKind::Portfolio => {
                let mut stats = Stats::default();
                self.wire_trace(&mut stats);
                crate::portfolio::run_ctl(self.sys, phi, &self.opts, &mut stats)
            }
            kind => {
                let start = Instant::now();
                let mut stats = Stats::for_engine(kind);
                let result = self.check_ctl_stats(phi, &mut stats)?;
                Ok(crate::portfolio::CheckReport {
                    winner: kind,
                    wall: start.elapsed(),
                    outcomes: vec![(kind, result.clone())],
                    contender_stats: vec![(kind, stats.clone())],
                    stats,
                    result,
                })
            }
        }
    }

    /// Synthesizes safe values for the given frozen parameters against an
    /// invariant (paper case study 1's `p ∈ {1, 2}` workflow).
    pub fn synthesize_params(
        &self,
        params: &[VarId],
        property: &Property,
    ) -> Result<SynthesisResult, McError> {
        params::synthesize(
            self.sys,
            params,
            property,
            self.synthesis_engine(property),
            &self.opts,
        )
    }

    /// Like [`Verifier::synthesize_params`] but stops at the first SAFE
    /// assignment, cancelling outstanding workers (assignments not fully
    /// checked report `Unknown(Cancelled)`).
    pub fn synthesize_params_first_safe(
        &self,
        params: &[VarId],
        property: &Property,
    ) -> Result<SynthesisResult, McError> {
        params::synthesize_first_safe(
            self.sys,
            params,
            property,
            self.synthesis_engine(property),
            &self.opts,
        )
    }

    /// Like [`Verifier::synthesize_params`] but records every verdict in a
    /// journal and/or skips assignments already decided by a resumed run
    /// (see [`crate::durable`]).
    pub fn synthesize_params_durable(
        &self,
        params: &[VarId],
        property: &Property,
        durability: &Durability<'_>,
    ) -> Result<SynthesisResult, McError> {
        params::synthesize_durable(
            self.sys,
            params,
            property,
            self.synthesis_engine(property),
            &self.opts,
            durability,
        )
    }

    /// Durable variant of [`Verifier::synthesize_params_first_safe`].
    pub fn synthesize_params_first_safe_durable(
        &self,
        params: &[VarId],
        property: &Property,
        durability: &Durability<'_>,
    ) -> Result<SynthesisResult, McError> {
        params::synthesize_first_safe_durable(
            self.sys,
            params,
            property,
            self.synthesis_engine(property),
            &self.opts,
            durability,
        )
    }

    /// The synthesis engine a parameter sweep will use for `property`
    /// (needed by callers to fingerprint a journal before the sweep runs).
    pub fn synthesis_engine(&self, property: &Property) -> SynthesisEngine {
        match self.effective_engine() {
            EngineKind::Bdd => SynthesisEngine::Bdd,
            EngineKind::Explicit => SynthesisEngine::Explicit,
            _ => match property {
                Property::Invariant(_) => SynthesisEngine::KInduction,
                Property::Ltl(_) => SynthesisEngine::Bdd,
            },
        }
    }

    /// Finds violating parameter values symbolically (they appear in the
    /// returned counterexample trace).
    pub fn find_violating_params(&self, property: &Property) -> Result<CheckResult, McError> {
        params::find_violating_params(self.sys, property, &self.opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_ts::Value;

    fn counter() -> (System, VarId) {
        let mut sys = System::new("counter");
        let n = sys.int_var("n", 0, 7);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        sys.add_trans(Expr::next(n).eq(Expr::ite(
            Expr::var(n).lt(Expr::int(7)),
            Expr::var(n).add(Expr::int(1)),
            Expr::var(n),
        )));
        (sys, n)
    }

    #[test]
    fn auto_engine_proves_and_falsifies() {
        let (sys, n) = counter();
        let v = Verifier::new(&sys);
        assert!(v
            .check_invariant(&Expr::var(n).le(Expr::int(7)))
            .unwrap()
            .holds());
        assert!(v
            .check_invariant(&Expr::var(n).lt(Expr::int(5)))
            .unwrap()
            .violated());
    }

    #[test]
    fn engine_selection_respected() {
        let (sys, n) = counter();
        let bmc = Verifier::new(&sys).engine(EngineKind::Bmc);
        // BMC can only falsify; a holding invariant gives Unknown.
        let r = bmc
            .options(CheckOptions::with_depth(10))
            .check_invariant(&Expr::var(n).le(Expr::int(7)))
            .unwrap();
        assert!(matches!(r, CheckResult::Unknown(_)));
    }

    #[test]
    fn auto_routes_real_systems_to_smt() {
        let mut sys = System::new("real");
        let x = sys.real_var("x");
        sys.add_init(Expr::var(x).eq(Expr::real(verdict_logic::Rational::ZERO)));
        sys.add_trans(Expr::next(x).eq(Expr::var(x).add(Expr::real(verdict_logic::Rational::ONE))));
        let v = Verifier::new(&sys).options(CheckOptions::with_depth(6));
        let r = v
            .check_invariant(&Expr::var(x).lt(Expr::real(verdict_logic::Rational::integer(3))))
            .unwrap();
        assert!(r.violated(), "{r}");
    }

    #[test]
    fn ctl_requires_complete_engine() {
        let (sys, n) = counter();
        let v = Verifier::new(&sys).engine(EngineKind::Bmc);
        assert!(v
            .check_ctl(&Ctl::atom(Expr::var(n).eq(Expr::int(7))).ef())
            .is_err());
        let v = Verifier::new(&sys);
        assert!(v
            .check_ctl(&Ctl::atom(Expr::var(n).eq(Expr::int(7))).ef())
            .unwrap()
            .holds());
    }

    #[test]
    fn stats_variants_record_counters() {
        let (sys, n) = counter();
        let v = Verifier::new(&sys);
        let mut stats = Stats::default();
        let r = v
            .check_invariant_stats(&Expr::var(n).le(Expr::int(7)), &mut stats)
            .unwrap();
        assert!(r.holds());
        assert_eq!(stats.engine, Some(EngineKind::KInduction));
        assert!(!stats.counters_are_zero());
        assert!(!stats.depths.is_empty());

        let report = v
            .check_invariant_report(&Expr::var(n).le(Expr::int(7)))
            .unwrap();
        assert_eq!(report.stats.engine, Some(report.winner));
        assert!(!report.stats.counters_are_zero());
    }

    #[test]
    fn synthesis_through_facade() {
        let mut sys = System::new("step");
        let n = sys.int_var("n", 0, 10);
        let p = sys.int_param("p", 1, 3);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        sys.add_trans(Expr::next(n).eq(Expr::ite(
            Expr::var(n).le(Expr::int(7)),
            Expr::var(n).add(Expr::var(p)),
            Expr::var(n),
        )));
        let v = Verifier::new(&sys);
        let prop = Property::Invariant(Expr::var(n).ne(Expr::int(5)));
        let r = v.synthesize_params(&[p], &prop).unwrap();
        assert_eq!(r.safe().len(), 2);
        let viol = v.find_violating_params(&prop).unwrap();
        assert_eq!(viol.trace().unwrap().value(0, "p"), Some(&Value::Int(1)));
    }
}
