//! Symbolic model-checking engines for infrastructure control models.
//!
//! This crate is the reproduction of the paper's §4 proof of concept: it
//! takes a parametric transition system (`verdict-ts`), a safety or
//! liveness property (LTL or CTL), and answers with a verdict — `Holds`,
//! `Violated` with a concrete counterexample trace (finite for safety,
//! lasso-shaped for liveness), or `Unknown` when a resource limit is hit —
//! and can synthesize safe configuration-parameter values.
//!
//! Engines:
//!
//! * [`bmc`] — SAT-based bounded model checking: invariant falsification
//!   by unrolling, and full LTL falsification by fair-lasso search on the
//!   tableau product.
//! * [`kind`] — k-induction with simple-path strengthening: *proves*
//!   invariants on finite systems.
//! * [`bdd`] — BDD fixpoint engine: forward reachability for invariants,
//!   full CTL (with fairness), and LTL via tableau + Emerson–Lei fair-cycle
//!   detection. Complete for finite systems.
//! * [`smtbmc`] — SMT-based BMC for systems with real-valued variables and
//!   parameters (case study 2): safety and lasso liveness over QF_LRA.
//! * [`explicit_engine`] — explicit-state reference engine (BFS safety,
//!   SCC-based fair-cycle liveness); exponential, used as the differential
//!   oracle in tests and fine for tiny models.
//! * [`tableau`] — the LTL → symbolic-tableau translation shared by the
//!   BMC, BDD, and SMT engines.
//! * [`blast`] — §5's risk-assessment extension: the worst reachable
//!   value of a metric after an operational event ("blast radius"),
//!   found by binary search over bounded reachability queries.
//! * [`params`] — parameter synthesis: enumerate assignments of the frozen
//!   variables and classify each as safe/unsafe (paper: "suggest safe
//!   configuration parameters", e.g. p ∈ {1, 2} in case study 1). The
//!   assignment sweep shards over a worker pool (`CheckOptions::jobs`).
//! * [`incremental`] — assumption-pinned k-induction for the synthesis
//!   sweep: one shared unrolling and one solver pair per worker survive
//!   the whole sweep (learned clauses and heuristic state transfer), with
//!   unsat-core pruning of parameters that don't participate in a proof.
//! * [`portfolio`] — engine racing: run a falsifier (BMC) and the provers
//!   (k-induction, BDD) in parallel threads on the same system, keep the
//!   first definitive verdict, and cancel the losers via a shared stop
//!   flag ([`result::Budget`]).
//! * [`certify`] — verdict certification ([`CheckOptions::certify`]):
//!   counterexample traces replayed through the independent reference
//!   interpreter, k-induction and BDD proofs re-checked by fresh
//!   proof-logged SAT queries; failures demote the verdict to
//!   [`UnknownReason::CertificateRejected`].
//! * [`verifier`] — the [`Verifier`] façade implementing the Fig. 4
//!   workflow: model + property + constraints in, verdict + trace or
//!   suggested parameters out.
//! * [`engine`](mod@engine) — the unified [`Engine`] trait implemented by every
//!   engine above, plus the [`engine()`](engine::engine) registry that the
//!   façade, portfolio, and synthesis layers dispatch through.
//! * [`stats`] — the structured observability sink ([`Stats`]): SAT /
//!   simplex / BDD counters, per-depth timings, phase spans, and an
//!   optional JSONL trace ([`stats::TraceSink`]).
//!
//! Most programs only need the [`prelude`]:
//!
//! ```
//! use verdict_mc::prelude::*;
//! use verdict_ts::{Expr, System};
//!
//! let mut sys = System::new("counter");
//! let n = sys.int_var("n", 0, 7);
//! sys.add_init(Expr::var(n).eq(Expr::int(0)));
//! sys.add_trans(Expr::next(n).eq(Expr::ite(
//!     Expr::var(n).lt(Expr::int(7)),
//!     Expr::var(n).add(Expr::int(1)),
//!     Expr::var(n),
//! )));
//! let mut stats = Stats::default();
//! let verdict = engine(EngineKind::KInduction)
//!     .check_invariant(&sys, &Expr::var(n).le(Expr::int(7)),
//!                      &CheckOptions::default(), &mut stats)
//!     .unwrap();
//! assert!(verdict.holds());
//! assert!(stats.sat.decisions > 0);
//! ```

pub mod bdd;
pub mod blast;
pub mod bmc;
pub mod certify;
pub mod durable;
pub mod engine;
pub mod explicit_engine;
pub mod incremental;
pub mod kind;
pub mod params;
pub mod portfolio;
pub mod result;
pub mod retry;
pub mod smtbmc;
pub mod spec;
pub mod stats;
pub mod tableau;
pub mod verifier;

pub use certify::{CertificateKind, CertificateStatus, PropertyKind};
pub use durable::{Durability, ResumeState, SweepRecorder};
pub use engine::{engine, Engine, EngineKind};
pub use portfolio::CheckReport;
pub use result::{
    CheckOptions, CheckOptionsBuilder, CheckResult, McError, Supervision, UnknownReason,
};
pub use retry::RetryPolicy;
pub use spec::{ExecContext, JobKind, JobSpec, SpecError, VerdictRow};
pub use stats::{ServerCounters, Stats, SupervisionCounters, TraceSink, STATS_SCHEMA_VERSION};
pub use verifier::Verifier;

/// One-stop imports for the unified engine API.
///
/// Brings in the [`Engine`] trait, the [`engine()`](engine::engine)
/// registry function, [`EngineKind`], and the types every check touches:
/// [`CheckOptions`], [`CheckResult`], [`CheckReport`], [`Stats`], and
/// [`UnknownReason`].
pub mod prelude {
    pub use crate::engine::{engine, Engine, EngineKind};
    pub use crate::portfolio::CheckReport;
    pub use crate::result::{CheckOptions, CheckResult, UnknownReason};
    pub use crate::stats::Stats;
    pub use crate::verifier::Verifier;
}
