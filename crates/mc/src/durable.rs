//! Crash-safe synthesis sweeps: journal recording and resume.
//!
//! A long parameter sweep (hours at fat-tree scale) must survive process
//! death. This module bridges [`crate::params`] to the `verdict-journal`
//! crate: a [`SweepRecorder`] durably appends one record per decided
//! assignment as workers complete, and [`start_sweep_journal`] rebuilds a
//! [`ResumeState`] from an interrupted journal so the next run skips
//! every assignment that already has a trustworthy verdict.
//!
//! Trust on resume is deliberately asymmetric:
//!
//! * `Unsafe` records are only believed if their stored counterexample
//!   still parses against the current system; under
//!   [`CheckOptions::certify`] the trace is additionally replayed through
//!   the independent reference interpreter (the PR-2 gate).
//! * `Safe` records are believed as-is without certification; with
//!   certification they are only believed when the journal recorded the
//!   induction depth, and the proof is then re-run at that depth with
//!   fresh solvers ([`crate::certify::recheck_induction`]). No depth, or
//!   a failed re-proof, means the assignment is simply re-solved.
//! * `Unknown` and cancelled records are never reused — a resumed run
//!   gets a fresh chance (possibly with bigger budgets) at them.
//!
//! A journal write failure mid-sweep must not kill a healthy run: the
//! recorder warns on stderr once, stops journaling, and the sweep
//! completes normally (it is merely no longer resumable).

use std::collections::HashMap;
use std::path::Path;
use std::sync::Mutex;

use verdict_journal::{fnv1a64, Journal, Record, TraceRec, VerdictTag};
use verdict_logic::Rational;
use verdict_ts::{Sort, System, Trace, Value, VarId};

use crate::params::{pin_system, validate_and_enumerate, Property, SynthesisEngine};
use crate::result::{Budget, CheckOptions, CheckResult, McError, UnknownReason};

/// Fingerprint of a synthesis run: system name and variables, parameter
/// domains, property, engine. A resumed journal must match, so verdicts
/// from a different model or property are never silently mixed in.
pub fn sweep_fingerprint(
    sys: &System,
    params: &[VarId],
    property: &Property,
    engine: SynthesisEngine,
) -> u64 {
    let mut canon = String::new();
    canon.push_str(sys.name());
    for v in sys.var_ids() {
        canon.push_str(&format!(";{}:{}", sys.name_of(v), sys.sort_of(v)));
    }
    canon.push('|');
    for &p in params {
        canon.push_str(&format!("{},", sys.name_of(p)));
    }
    canon.push('|');
    canon.push_str(&format!("{property:?}"));
    canon.push('|');
    canon.push_str(engine.tag());
    fnv1a64(canon.as_bytes())
}

/// Parses one `Display`-formatted value back against its sort.
fn parse_value(sort: &Sort, s: &str) -> Option<Value> {
    match sort {
        Sort::Bool => match s {
            "true" => Some(Value::Bool(true)),
            "false" => Some(Value::Bool(false)),
            _ => None,
        },
        Sort::Int { lo, hi } => {
            let n: i64 = s.parse().ok()?;
            (*lo..=*hi).contains(&n).then_some(Value::Int(n))
        }
        Sort::Real => s.parse::<Rational>().ok().map(Value::Real),
        Sort::Enum(e) => e.variant(s).map(|i| Value::Enum(e.clone(), i)),
    }
}

/// Rebuilds a [`Trace`] from its journal form, checking every variable
/// name and value against the current system. Any mismatch returns
/// `None` — a stale trace must not be trusted.
fn parse_trace(sys: &System, rec: &TraceRec) -> Option<Trace> {
    let vars: Vec<VarId> = rec
        .vars
        .iter()
        .map(|n| sys.var_by_name(n))
        .collect::<Option<Vec<_>>>()?;
    let states = rec
        .states
        .iter()
        .map(|st| {
            if st.len() != vars.len() {
                return None;
            }
            st.iter()
                .zip(&vars)
                .map(|(s, &v)| parse_value(sys.sort_of(v), s))
                .collect::<Option<Vec<_>>>()
        })
        .collect::<Option<Vec<_>>>()?;
    if rec.loop_back.is_some_and(|l| l >= states.len()) {
        return None;
    }
    Some(Trace {
        var_names: rec.vars.clone(),
        states,
        loop_back: rec.loop_back,
    })
}

/// Thread-safe durable recorder shared by sweep workers.
///
/// Appends are serialized through a mutex (fsync dominates anyway). On
/// the first write failure the recorder warns on stderr, drops the
/// journal, and every later call becomes a no-op: losing resumability
/// must not fail the sweep itself.
pub struct SweepRecorder {
    journal: Mutex<Option<Journal>>,
}

impl SweepRecorder {
    /// Wraps an open journal.
    pub fn new(journal: Journal) -> SweepRecorder {
        SweepRecorder {
            journal: Mutex::new(Some(journal)),
        }
    }

    fn append(&self, rec: &Record) {
        let mut guard = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        let Some(journal) = guard.as_mut() else {
            return;
        };
        if let Err(e) = journal.append(rec) {
            eprintln!(
                "warning: journal {}: write failed ({e}); journaling disabled, \
                 this run will not be resumable past this point",
                journal.path().display()
            );
            *guard = None;
        }
    }

    /// Records a failed attempt that is about to be retried.
    pub fn record_attempt(&self, idx: usize, attempt: u32, reason: UnknownReason) {
        self.append(&Record::Attempt {
            idx: idx as u64,
            attempt,
            reason: reason.tag().to_string(),
        });
    }

    /// Records a final per-assignment verdict. Cancelled slots are not
    /// persisted: they carry nothing a resumed run could reuse.
    pub fn record_verdict(
        &self,
        idx: usize,
        values: &[Value],
        result: &CheckResult,
        attempts: u32,
        depth: Option<usize>,
    ) {
        let (verdict, reason, trace) = match result {
            CheckResult::Holds => (VerdictTag::Safe, None, None),
            CheckResult::Violated(t) => (
                VerdictTag::Unsafe,
                None,
                Some(TraceRec {
                    vars: t.var_names.clone(),
                    states: t
                        .states
                        .iter()
                        .map(|st| st.iter().map(Value::to_string).collect())
                        .collect(),
                    loop_back: t.loop_back,
                }),
            ),
            CheckResult::Unknown(UnknownReason::Cancelled) => return,
            CheckResult::Unknown(r) => (VerdictTag::Unknown, Some(r.tag().to_string()), None),
        };
        self.append(&Record::Verdict {
            idx: idx as u64,
            values: values.iter().map(Value::to_string).collect(),
            verdict,
            reason,
            attempts,
            depth: depth.map(|d| d as u64),
            trace,
        });
    }

    /// Records a per-property verdict from a `check` run.
    pub fn record_property(&self, name: &str, result: &CheckResult, engine: &str) {
        let (verdict, reason) = match result {
            CheckResult::Holds => (VerdictTag::Safe, None),
            CheckResult::Violated(_) => (VerdictTag::Unsafe, None),
            CheckResult::Unknown(UnknownReason::Cancelled) => return,
            CheckResult::Unknown(r) => (VerdictTag::Unknown, Some(r.tag().to_string())),
        };
        self.append(&Record::Property {
            name: name.to_string(),
            verdict,
            reason,
            engine: engine.to_string(),
        });
    }
}

/// Verdicts recovered from a journal: assignment index → trusted result
/// plus the attempts already spent on it.
#[derive(Default)]
pub struct ResumeState {
    decided: HashMap<usize, (CheckResult, u32)>,
}

impl ResumeState {
    /// A state with nothing decided (fresh run).
    pub fn empty() -> ResumeState {
        ResumeState::default()
    }

    /// The trusted verdict for an assignment, if resumed.
    pub fn get(&self, idx: usize) -> Option<&(CheckResult, u32)> {
        self.decided.get(&idx)
    }

    /// Number of assignments that will be skipped.
    pub fn len(&self) -> usize {
        self.decided.len()
    }

    /// True iff nothing was resumed.
    pub fn is_empty(&self) -> bool {
        self.decided.is_empty()
    }
}

/// Journal hooks for one sweep: both ends optional, so the same
/// `run_assignments` code path serves plain, journaled, and resumed runs.
#[derive(Clone, Copy, Default)]
pub struct Durability<'a> {
    /// Where completed verdicts are durably recorded.
    pub recorder: Option<&'a SweepRecorder>,
    /// Verdicts recovered from a previous run, to be skipped.
    pub resume: Option<&'a ResumeState>,
}

impl Durability<'_> {
    /// No journaling, no resume.
    pub fn none() -> Durability<'static> {
        Durability {
            recorder: None,
            resume: None,
        }
    }

    pub(crate) fn resumed(&self, idx: usize) -> Option<(CheckResult, u32)> {
        self.resume.and_then(|r| r.get(idx)).cloned()
    }

    pub(crate) fn record_attempt(&self, idx: usize, attempt: u32, reason: UnknownReason) {
        if let Some(rec) = self.recorder {
            rec.record_attempt(idx, attempt, reason);
        }
    }

    pub(crate) fn record_verdict(
        &self,
        idx: usize,
        values: &[Value],
        result: &CheckResult,
        attempts: u32,
        depth: Option<usize>,
    ) {
        if let Some(rec) = self.recorder {
            rec.record_verdict(idx, values, result, attempts, depth);
        }
    }
}

/// Decides whether one journaled verdict is trustworthy for this run;
/// returns the reconstructed result to skip with, or `None` to re-solve.
#[allow(clippy::too_many_arguments)]
fn trust_verdict(
    sys: &System,
    params: &[VarId],
    property: &Property,
    engine: SynthesisEngine,
    opts: &CheckOptions,
    assignment: &[Value],
    verdict: VerdictTag,
    depth: Option<u64>,
    trace: Option<&TraceRec>,
) -> Option<CheckResult> {
    match verdict {
        VerdictTag::Safe => {
            if !opts.certify {
                return Some(CheckResult::Holds);
            }
            // Certified resume: only believe a Safe verdict we can
            // re-prove — k-induction at the recorded depth with fresh
            // solvers. Anything else (no depth on record, BDD/explicit
            // proof, LTL property) is re-solved from scratch.
            let depth = depth? as usize;
            let (Property::Invariant(p), SynthesisEngine::KInduction) = (property, engine) else {
                return None;
            };
            let pinned = pin_system(sys, params, assignment);
            let budget = Budget::new(opts);
            crate::certify::recheck_induction(&pinned, p, depth, &budget)
                .ok()
                .map(|_| CheckResult::Holds)
        }
        VerdictTag::Unsafe => {
            let trace = parse_trace(sys, trace?)?;
            if !opts.certify {
                return Some(CheckResult::Violated(trace));
            }
            let pinned = pin_system(sys, params, assignment);
            let gated = match property {
                Property::Invariant(p) => crate::certify::gate_invariant_cex(&pinned, p, trace),
                Property::Ltl(phi) => crate::certify::gate_ltl_cex(&pinned, phi, trace),
            };
            gated.violated().then_some(gated)
        }
        // Unknown/cancelled slots get a fresh chance on resume.
        VerdictTag::Unknown | VerdictTag::Cancelled => None,
    }
}

/// Opens (or creates) the journal for a synthesis sweep.
///
/// With `resume` and an existing file at `path`, the journal is verified
/// (torn tail truncated), its header fingerprint checked against this
/// run, and every trustworthy verdict loaded into the returned
/// [`ResumeState`]; recording continues by appending to the same file.
/// Otherwise a fresh journal with a header record is created.
pub fn start_sweep_journal(
    path: &Path,
    resume: bool,
    sys: &System,
    params: &[VarId],
    property: &Property,
    engine: SynthesisEngine,
    opts: &CheckOptions,
) -> Result<(SweepRecorder, ResumeState), McError> {
    let fp = sweep_fingerprint(sys, params, property, engine);
    let (names, space) = validate_and_enumerate(sys, params)?;
    let header = Record::Header {
        version: verdict_journal::FORMAT_VERSION,
        fingerprint: fp,
        space: space.len() as u64,
        params: names,
        property: format!("{property:?}"),
        engine: engine.tag().to_string(),
    };
    if resume && path.exists() {
        let (journal, records) = Journal::open_resume(path, Some(fp))
            .map_err(|e| McError(format!("cannot resume journal {}: {e}", path.display())))?;
        let mut state = ResumeState::empty();
        for rec in &records {
            let Record::Verdict {
                idx,
                verdict,
                attempts,
                depth,
                trace,
                ..
            } = rec
            else {
                continue;
            };
            let idx = *idx as usize;
            if idx >= space.len() {
                continue;
            }
            let assignment = space.get(idx);
            if let Some(result) = trust_verdict(
                sys,
                params,
                property,
                engine,
                opts,
                &assignment,
                *verdict,
                *depth,
                trace.as_ref(),
            ) {
                state.decided.insert(idx, (result, *attempts));
            }
        }
        Ok((SweepRecorder::new(journal), state))
    } else {
        let journal = Journal::create(path, &header)
            .map_err(|e| McError(format!("cannot create journal {}: {e}", path.display())))?;
        Ok((SweepRecorder::new(journal), ResumeState::empty()))
    }
}

/// A per-property verdict recovered from a `check` journal. Only
/// decided outcomes (`Safe`/`Unsafe`) are ever returned — see
/// [`start_check_journal`].
pub struct ResumedProperty {
    /// The recorded outcome.
    pub verdict: VerdictTag,
    /// Engine that produced it.
    pub engine: String,
}

/// Fingerprint of a `check` run over named properties. Hashes the same
/// canonical material as [`sweep_fingerprint`] — the system's name and
/// every variable's `name:sort`, plus each selected property's name
/// *and formula rendering*, plus the engine — so editing the model or a
/// property body between runs (names unchanged) invalidates the journal
/// instead of silently resuming stale verdicts.
pub fn check_fingerprint(sys: &System, properties: &[(String, String)], engine: &str) -> u64 {
    let mut canon = String::from("check:");
    canon.push_str(sys.name());
    for v in sys.var_ids() {
        canon.push_str(&format!(";{}:{}", sys.name_of(v), sys.sort_of(v)));
    }
    canon.push('|');
    for (name, formula) in properties {
        canon.push_str(&format!("{name}={formula};"));
    }
    canon.push('|');
    canon.push_str(engine);
    fnv1a64(canon.as_bytes())
}

/// Opens (or creates) the journal for a `check` run over `properties`,
/// given as `(name, formula rendering)` pairs. On resume, returns the
/// recorded *decided* per-property verdicts: `Unknown` and cancelled
/// records are filtered out here so a resumed run always re-solves them
/// (possibly with bigger budgets), matching the sweep trust policy.
/// Whether to reuse the decided ones is the caller's business (the CLI
/// skips them only when certification is off — with `--certify` every
/// property is re-verified, which is trivially sound).
pub fn start_check_journal(
    path: &Path,
    resume: bool,
    sys: &System,
    properties: &[(String, String)],
    engine: &str,
) -> Result<(SweepRecorder, HashMap<String, ResumedProperty>), McError> {
    let fp = check_fingerprint(sys, properties, engine);
    let property_names: Vec<String> = properties.iter().map(|(n, _)| n.clone()).collect();
    let header = Record::Header {
        version: verdict_journal::FORMAT_VERSION,
        fingerprint: fp,
        space: 0,
        params: Vec::new(),
        property: property_names.join(","),
        engine: engine.to_string(),
    };
    if resume && path.exists() {
        let (journal, records) = Journal::open_resume(path, Some(fp))
            .map_err(|e| McError(format!("cannot resume journal {}: {e}", path.display())))?;
        let mut props = HashMap::new();
        for rec in records {
            if let Record::Property {
                name,
                verdict: verdict @ (VerdictTag::Safe | VerdictTag::Unsafe),
                engine,
                ..
            } = rec
            {
                props.insert(name, ResumedProperty { verdict, engine });
            }
        }
        Ok((SweepRecorder::new(journal), props))
    } else {
        let journal = Journal::create(path, &header)
            .map_err(|e| McError(format!("cannot create journal {}: {e}", path.display())))?;
        Ok((SweepRecorder::new(journal), HashMap::new()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_ts::{EnumSort, Expr};

    #[test]
    fn value_round_trip_via_display() {
        let cases = vec![
            (Sort::Bool, Value::Bool(true)),
            (Sort::Int { lo: -5, hi: 9 }, Value::Int(-3)),
            (Sort::Real, Value::Real(Rational::new(7, 4))),
        ];
        for (sort, v) in cases {
            assert_eq!(parse_value(&sort, &v.to_string()), Some(v));
        }
        let e = EnumSort::new("mode", &["off", "on"]);
        let v = Value::Enum(e.clone(), 1);
        assert_eq!(parse_value(&Sort::Enum(e), &v.to_string()), Some(v));
        // Out-of-range / malformed inputs are rejected.
        assert_eq!(parse_value(&Sort::Int { lo: 0, hi: 3 }, "7"), None);
        assert_eq!(parse_value(&Sort::Bool, "maybe"), None);
    }

    #[test]
    fn trace_round_trip() {
        let mut sys = System::new("t");
        let _x = sys.int_var("x", 0, 10);
        let _b = sys.bool_var("b");
        let trace = Trace {
            var_names: vec!["x".into(), "b".into()],
            states: vec![
                vec![Value::Int(0), Value::Bool(false)],
                vec![Value::Int(3), Value::Bool(true)],
            ],
            loop_back: Some(0),
        };
        let rec = TraceRec {
            vars: trace.var_names.clone(),
            states: trace
                .states
                .iter()
                .map(|s| s.iter().map(Value::to_string).collect())
                .collect(),
            loop_back: trace.loop_back,
        };
        assert_eq!(parse_trace(&sys, &rec), Some(trace));
        // Unknown variable names or bad loop indices are rejected.
        let mut bad = rec.clone();
        bad.vars[0] = "nope".into();
        assert_eq!(parse_trace(&sys, &bad), None);
        let mut bad = rec.clone();
        bad.loop_back = Some(9);
        assert_eq!(parse_trace(&sys, &bad), None);
    }

    #[test]
    fn check_fingerprint_tracks_model_and_formulas() {
        let mut sys = System::new("s");
        let _n = sys.int_var("n", 0, 5);
        let props = vec![("p".to_string(), "n != 5".to_string())];
        let a = check_fingerprint(&sys, &props, "kind");
        assert_eq!(a, check_fingerprint(&sys, &props, "kind"));
        // Same property name, edited body → different fingerprint.
        let edited = vec![("p".to_string(), "n != 4".to_string())];
        assert_ne!(a, check_fingerprint(&sys, &edited, "kind"));
        // Same property names, edited model → different fingerprint.
        let mut sys2 = System::new("s");
        let _n = sys2.int_var("n", 0, 5);
        let _m = sys2.bool_var("m");
        assert_ne!(a, check_fingerprint(&sys2, &props, "kind"));
        assert_ne!(a, check_fingerprint(&sys, &props, "bdd"));
    }

    #[test]
    fn check_resume_skips_unknown_records() {
        let mut sys = System::new("cj");
        let _n = sys.int_var("n", 0, 3);
        let props = vec![
            ("good".to_string(), "n != 3".to_string()),
            ("flaky".to_string(), "n != 2".to_string()),
        ];
        let path = std::env::temp_dir().join(format!(
            "verdict-durable-check-unknown-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let (rec, resumed) = start_check_journal(&path, false, &sys, &props, "kind").unwrap();
            assert!(resumed.is_empty());
            rec.record_property("good", &CheckResult::Holds, "kind");
            rec.record_property(
                "flaky",
                &CheckResult::Unknown(UnknownReason::EngineFailure),
                "kind",
            );
        }
        let (_rec, resumed) = start_check_journal(&path, true, &sys, &props, "kind").unwrap();
        assert_eq!(resumed.len(), 1);
        assert_eq!(
            resumed.get("good").map(|p| p.verdict),
            Some(VerdictTag::Safe)
        );
        // The infra-unknown property gets a fresh chance on resume.
        assert!(!resumed.contains_key("flaky"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fingerprint_separates_runs() {
        let mut sys = System::new("s");
        let n = sys.int_var("n", 0, 5);
        let p = sys.int_param("p", 0, 2);
        let prop_a = Property::Invariant(Expr::var(n).ne(Expr::int(5)));
        let prop_b = Property::Invariant(Expr::var(n).ne(Expr::int(4)));
        let a = sweep_fingerprint(&sys, &[p], &prop_a, SynthesisEngine::KInduction);
        assert_eq!(
            a,
            sweep_fingerprint(&sys, &[p], &prop_a, SynthesisEngine::KInduction)
        );
        assert_ne!(
            a,
            sweep_fingerprint(&sys, &[p], &prop_b, SynthesisEngine::KInduction)
        );
        assert_ne!(
            a,
            sweep_fingerprint(&sys, &[p], &prop_a, SynthesisEngine::Bdd)
        );
    }
}
