//! The unified engine API: one [`Engine`] trait implemented by all six
//! engines, dispatched through the [`engine`] registry.
//!
//! Historically each engine grew a parallel family of free functions
//! (`bmc::check_invariant`, `bdd::check_ctl`, …). Those could not each
//! grow an observability channel, so the trait is the single seam now:
//! every check takes a `&mut` [`Stats`] sink, and the portfolio,
//! synthesis, durable, and retry layers all dispatch through it.
//!
//! ```
//! use verdict_mc::prelude::*;
//! use verdict_ts::{Expr, System};
//!
//! let mut sys = System::new("counter");
//! let n = sys.int_var("n", 0, 7);
//! sys.add_init(Expr::var(n).eq(Expr::int(0)));
//! sys.add_trans(Expr::next(n).eq(Expr::ite(
//!     Expr::var(n).lt(Expr::int(7)),
//!     Expr::var(n).add(Expr::int(1)),
//!     Expr::var(n),
//! )));
//! let mut stats = Stats::default();
//! let r = engine(EngineKind::KInduction)
//!     .check_invariant(&sys, &Expr::var(n).le(Expr::int(7)), &CheckOptions::default(), &mut stats)
//!     .unwrap();
//! assert!(r.holds());
//! assert!(stats.sat.decisions > 0);
//! ```

use verdict_journal::fault;
use verdict_ts::{Ctl, Expr, Ltl, System};

use crate::result::{CheckOptions, CheckResult, McError};
use crate::stats::Stats;

/// Engine selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Choose automatically: SMT-BMC for real-sorted systems; otherwise
    /// k-induction for invariants (falsify + prove) and BDD for LTL/CTL.
    #[default]
    Auto,
    /// SAT bounded model checking (falsification only).
    Bmc,
    /// k-induction (invariants; proves and falsifies).
    KInduction,
    /// BDD fixpoint engine (complete on finite systems).
    Bdd,
    /// Explicit-state reference engine (tiny finite systems).
    Explicit,
    /// SMT bounded model checking (real-valued systems; falsification).
    SmtBmc,
    /// Race a falsifier against the provers in parallel threads and keep
    /// the first definitive verdict (see [`crate::portfolio`]).
    Portfolio,
}

impl EngineKind {
    /// Stable lowercase tag used in CLI flags, JSON output, and stats.
    pub fn tag(self) -> &'static str {
        match self {
            EngineKind::Auto => "auto",
            EngineKind::Bmc => "bmc",
            EngineKind::KInduction => "k-induction",
            EngineKind::Bdd => "bdd",
            EngineKind::Explicit => "explicit",
            EngineKind::SmtBmc => "smt-bmc",
            EngineKind::Portfolio => "portfolio",
        }
    }

    /// Parses an engine tag. Accepts both the canonical [`tag`] spelling
    /// and the historical CLI/wire aliases (`kind`, `smtbmc`), so every
    /// surface — CLI flags, job specs on the wire, WAL records — parses
    /// through this one function.
    ///
    /// [`tag`]: EngineKind::tag
    pub fn from_tag(s: &str) -> Option<EngineKind> {
        match s {
            "auto" => Some(EngineKind::Auto),
            "bmc" => Some(EngineKind::Bmc),
            "kind" | "k-induction" => Some(EngineKind::KInduction),
            "bdd" => Some(EngineKind::Bdd),
            "explicit" => Some(EngineKind::Explicit),
            "smtbmc" | "smt-bmc" => Some(EngineKind::SmtBmc),
            "portfolio" => Some(EngineKind::Portfolio),
            _ => None,
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// A model-checking engine. All six engines implement this; obtain one
/// from the [`engine`] registry and dispatch through it.
///
/// Engines are stateless (all run state lives per call), so the trait
/// objects are `'static` zero-sized singletons. Checks record their
/// counters, per-depth timings, and phase spans into `stats`; the sink is
/// written even when the verdict is `Unknown` or the call errors early.
///
/// Panic containment is the *caller's* job (the [`crate::Verifier`]
/// façade, portfolio workers, and synthesis workers all catch unwinds);
/// the raw trait methods propagate engine panics.
pub trait Engine: Sync {
    /// Which engine this is.
    fn kind(&self) -> EngineKind;

    /// Checks the safety property `G p`.
    fn check_invariant(
        &self,
        sys: &System,
        p: &Expr,
        opts: &CheckOptions,
        stats: &mut Stats,
    ) -> Result<CheckResult, McError>;

    /// Checks an LTL property.
    fn check_ltl(
        &self,
        sys: &System,
        phi: &Ltl,
        opts: &CheckOptions,
        stats: &mut Stats,
    ) -> Result<CheckResult, McError>;

    /// Checks a CTL property (complete engines only; bounded engines
    /// return an error).
    fn check_ctl(
        &self,
        sys: &System,
        phi: &Ctl,
        opts: &CheckOptions,
        stats: &mut Stats,
    ) -> Result<CheckResult, McError>;
}

/// Labels `stats` with the engine, runs `f`, and charges any
/// fault-injection probes that fired during the run to the sink.
fn instrumented<R>(kind: EngineKind, stats: &mut Stats, f: impl FnOnce(&mut Stats) -> R) -> R {
    if stats.engine.is_none() {
        stats.engine = Some(kind);
    }
    let fired_before = fault::fired_count();
    let r = f(stats);
    stats.faults_injected += fault::fired_count() - fired_before;
    r
}

struct BmcEngine;

impl Engine for BmcEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Bmc
    }

    fn check_invariant(
        &self,
        sys: &System,
        p: &Expr,
        opts: &CheckOptions,
        stats: &mut Stats,
    ) -> Result<CheckResult, McError> {
        instrumented(EngineKind::Bmc, stats, |s| {
            crate::bmc::run_invariant(sys, p, opts, s)
        })
    }

    fn check_ltl(
        &self,
        sys: &System,
        phi: &Ltl,
        opts: &CheckOptions,
        stats: &mut Stats,
    ) -> Result<CheckResult, McError> {
        instrumented(EngineKind::Bmc, stats, |s| {
            crate::bmc::run_ltl(sys, phi, opts, s)
        })
    }

    fn check_ctl(
        &self,
        _sys: &System,
        _phi: &Ctl,
        _opts: &CheckOptions,
        _stats: &mut Stats,
    ) -> Result<CheckResult, McError> {
        Err(McError(
            "CTL requires a complete engine (BDD or explicit)".to_string(),
        ))
    }
}

struct KInductionEngine;

impl Engine for KInductionEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::KInduction
    }

    fn check_invariant(
        &self,
        sys: &System,
        p: &Expr,
        opts: &CheckOptions,
        stats: &mut Stats,
    ) -> Result<CheckResult, McError> {
        instrumented(EngineKind::KInduction, stats, |s| {
            crate::kind::run_invariant(sys, p, opts, s)
        })
    }

    fn check_ltl(
        &self,
        sys: &System,
        phi: &Ltl,
        opts: &CheckOptions,
        stats: &mut Stats,
    ) -> Result<CheckResult, McError> {
        // k-induction does not handle liveness; fall back to the complete
        // finite engine (matches the historical Verifier behavior).
        instrumented(EngineKind::Bdd, stats, |s| {
            crate::bdd::run_ltl(sys, phi, opts, s)
        })
    }

    fn check_ctl(
        &self,
        sys: &System,
        phi: &Ctl,
        opts: &CheckOptions,
        stats: &mut Stats,
    ) -> Result<CheckResult, McError> {
        instrumented(EngineKind::Bdd, stats, |s| {
            crate::bdd::run_ctl(sys, phi, opts, s)
        })
    }
}

struct BddEngine;

impl Engine for BddEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Bdd
    }

    fn check_invariant(
        &self,
        sys: &System,
        p: &Expr,
        opts: &CheckOptions,
        stats: &mut Stats,
    ) -> Result<CheckResult, McError> {
        instrumented(EngineKind::Bdd, stats, |s| {
            crate::bdd::run_invariant(sys, p, opts, s)
        })
    }

    fn check_ltl(
        &self,
        sys: &System,
        phi: &Ltl,
        opts: &CheckOptions,
        stats: &mut Stats,
    ) -> Result<CheckResult, McError> {
        instrumented(EngineKind::Bdd, stats, |s| {
            crate::bdd::run_ltl(sys, phi, opts, s)
        })
    }

    fn check_ctl(
        &self,
        sys: &System,
        phi: &Ctl,
        opts: &CheckOptions,
        stats: &mut Stats,
    ) -> Result<CheckResult, McError> {
        instrumented(EngineKind::Bdd, stats, |s| {
            crate::bdd::run_ctl(sys, phi, opts, s)
        })
    }
}

struct ExplicitEngine;

impl Engine for ExplicitEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Explicit
    }

    fn check_invariant(
        &self,
        sys: &System,
        p: &Expr,
        opts: &CheckOptions,
        stats: &mut Stats,
    ) -> Result<CheckResult, McError> {
        instrumented(EngineKind::Explicit, stats, |s| {
            crate::explicit_engine::run_invariant(sys, p, opts, s)
        })
    }

    fn check_ltl(
        &self,
        sys: &System,
        phi: &Ltl,
        opts: &CheckOptions,
        stats: &mut Stats,
    ) -> Result<CheckResult, McError> {
        instrumented(EngineKind::Explicit, stats, |s| {
            crate::explicit_engine::run_ltl(sys, phi, opts, s)
        })
    }

    fn check_ctl(
        &self,
        sys: &System,
        phi: &Ctl,
        opts: &CheckOptions,
        stats: &mut Stats,
    ) -> Result<CheckResult, McError> {
        instrumented(EngineKind::Explicit, stats, |s| {
            crate::explicit_engine::run_ctl(sys, phi, opts, s)
        })
    }
}

struct SmtBmcEngine;

impl Engine for SmtBmcEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::SmtBmc
    }

    fn check_invariant(
        &self,
        sys: &System,
        p: &Expr,
        opts: &CheckOptions,
        stats: &mut Stats,
    ) -> Result<CheckResult, McError> {
        instrumented(EngineKind::SmtBmc, stats, |s| {
            crate::smtbmc::run_invariant(sys, p, opts, s)
        })
    }

    fn check_ltl(
        &self,
        sys: &System,
        phi: &Ltl,
        opts: &CheckOptions,
        stats: &mut Stats,
    ) -> Result<CheckResult, McError> {
        instrumented(EngineKind::SmtBmc, stats, |s| {
            crate::smtbmc::run_ltl(sys, phi, opts, s)
        })
    }

    fn check_ctl(
        &self,
        _sys: &System,
        _phi: &Ctl,
        _opts: &CheckOptions,
        _stats: &mut Stats,
    ) -> Result<CheckResult, McError> {
        Err(McError(
            "CTL requires a complete engine (BDD or explicit)".to_string(),
        ))
    }
}

struct PortfolioEngine;

impl Engine for PortfolioEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Portfolio
    }

    fn check_invariant(
        &self,
        sys: &System,
        p: &Expr,
        opts: &CheckOptions,
        stats: &mut Stats,
    ) -> Result<CheckResult, McError> {
        instrumented(EngineKind::Portfolio, stats, |s| {
            crate::portfolio::run_invariant(sys, p, opts, s).map(|r| r.result)
        })
    }

    fn check_ltl(
        &self,
        sys: &System,
        phi: &Ltl,
        opts: &CheckOptions,
        stats: &mut Stats,
    ) -> Result<CheckResult, McError> {
        instrumented(EngineKind::Portfolio, stats, |s| {
            crate::portfolio::run_ltl(sys, phi, opts, s).map(|r| r.result)
        })
    }

    fn check_ctl(
        &self,
        sys: &System,
        phi: &Ctl,
        opts: &CheckOptions,
        stats: &mut Stats,
    ) -> Result<CheckResult, McError> {
        instrumented(EngineKind::Portfolio, stats, |s| {
            crate::portfolio::run_ctl(sys, phi, opts, s).map(|r| r.result)
        })
    }
}

struct AutoEngine;

/// The engine `Auto` resolves to for `sys` (reported in CLI/JSON output):
/// SMT-BMC for real-sorted systems, k-induction otherwise.
pub fn resolve_auto(sys: &System) -> EngineKind {
    if sys.has_real_vars() {
        EngineKind::SmtBmc
    } else {
        EngineKind::KInduction
    }
}

impl Engine for AutoEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Auto
    }

    fn check_invariant(
        &self,
        sys: &System,
        p: &Expr,
        opts: &CheckOptions,
        stats: &mut Stats,
    ) -> Result<CheckResult, McError> {
        engine(resolve_auto(sys)).check_invariant(sys, p, opts, stats)
    }

    fn check_ltl(
        &self,
        sys: &System,
        phi: &Ltl,
        opts: &CheckOptions,
        stats: &mut Stats,
    ) -> Result<CheckResult, McError> {
        engine(resolve_auto(sys)).check_ltl(sys, phi, opts, stats)
    }

    fn check_ctl(
        &self,
        sys: &System,
        phi: &Ctl,
        opts: &CheckOptions,
        stats: &mut Stats,
    ) -> Result<CheckResult, McError> {
        engine(resolve_auto(sys)).check_ctl(sys, phi, opts, stats)
    }
}

/// The engine registry: the singleton [`Engine`] implementation for a
/// given [`EngineKind`]. This is the only place the per-engine entry
/// points are wired up; everything else dispatches through the trait.
pub fn engine(kind: EngineKind) -> &'static dyn Engine {
    match kind {
        EngineKind::Auto => &AutoEngine,
        EngineKind::Bmc => &BmcEngine,
        EngineKind::KInduction => &KInductionEngine,
        EngineKind::Bdd => &BddEngine,
        EngineKind::Explicit => &ExplicitEngine,
        EngineKind::SmtBmc => &SmtBmcEngine,
        EngineKind::Portfolio => &PortfolioEngine,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_kinds_line_up() {
        for kind in [
            EngineKind::Auto,
            EngineKind::Bmc,
            EngineKind::KInduction,
            EngineKind::Bdd,
            EngineKind::Explicit,
            EngineKind::SmtBmc,
            EngineKind::Portfolio,
        ] {
            assert_eq!(engine(kind).kind(), kind);
        }
    }

    #[test]
    fn from_tag_round_trips_and_accepts_aliases() {
        for kind in [
            EngineKind::Auto,
            EngineKind::Bmc,
            EngineKind::KInduction,
            EngineKind::Bdd,
            EngineKind::Explicit,
            EngineKind::SmtBmc,
            EngineKind::Portfolio,
        ] {
            assert_eq!(EngineKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(EngineKind::from_tag("kind"), Some(EngineKind::KInduction));
        assert_eq!(EngineKind::from_tag("smtbmc"), Some(EngineKind::SmtBmc));
        assert_eq!(EngineKind::from_tag("nuxmv"), None);
    }

    #[test]
    fn bounded_engines_reject_ctl() {
        let sys = System::new("empty");
        let phi = Ctl::atom(Expr::bool(true));
        let mut stats = Stats::default();
        for kind in [EngineKind::Bmc, EngineKind::SmtBmc] {
            assert!(engine(kind)
                .check_ctl(&sys, &phi, &CheckOptions::default(), &mut stats)
                .is_err());
        }
    }
}
