//! Explicit-state reference engine.
//!
//! Enumerates the reachable state graph outright, then answers:
//!
//! * invariants by BFS,
//! * LTL by SCC analysis on the tableau product — a reachable SCC with a
//!   cycle that intersects every justice set is exactly a fair lasso,
//! * CTL by direct fixpoint evaluation over explicit state sets,
//!
//! all behind the [`crate::engine::Engine`] trait
//! (`engine(EngineKind::Explicit)`).
//!
//! Everything here is exponential in the number of state bits; its role is
//! to be *obviously correct* — the differential oracle the symbolic
//! engines are tested against — and to handle tiny models exactly.

use std::collections::HashMap;

use verdict_ts::explicit::{holds, initial_states, successors, State};
use verdict_ts::{Ctl, Expr, Ltl, System, Trace};

use crate::result::{Budget, CheckOptions, CheckResult, McError};
use crate::stats::{Phase, SpanTimer, Stats};
use crate::tableau::violation_product;

/// The explored reachable graph of a finite system.
struct Graph {
    states: Vec<State>,
    index: HashMap<String, usize>,
    init: Vec<usize>,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

fn state_key(s: &State) -> String {
    format!("{s:?}")
}

/// Explores the reachable graph; `None` on timeout or cancellation.
fn explore(sys: &System, budget: &Budget) -> Option<Graph> {
    let mut g = Graph {
        states: Vec::new(),
        index: HashMap::new(),
        init: Vec::new(),
        succs: Vec::new(),
        preds: Vec::new(),
    };
    let mut queue = Vec::new();
    for s in initial_states(sys) {
        let k = state_key(&s);
        if !g.index.contains_key(&k) {
            let id = g.states.len();
            g.index.insert(k, id);
            g.states.push(s);
            g.succs.push(Vec::new());
            g.preds.push(Vec::new());
            g.init.push(id);
            queue.push(id);
        }
    }
    while let Some(id) = queue.pop() {
        if budget.exceeded().is_some() {
            return None;
        }
        let succs = successors(sys, &g.states[id].clone());
        for n in succs {
            let k = state_key(&n);
            let nid = match g.index.get(&k) {
                Some(&nid) => nid,
                None => {
                    let nid = g.states.len();
                    g.index.insert(k, nid);
                    g.states.push(n);
                    g.succs.push(Vec::new());
                    g.preds.push(Vec::new());
                    queue.push(nid);
                    nid
                }
            };
            g.succs[id].push(nid);
            g.preds[nid].push(id);
        }
    }
    Some(g)
}

/// Trait-dispatch entry point for the complete invariant check by
/// explicit BFS (see [`crate::engine::engine`]).
pub(crate) fn run_invariant(
    sys: &System,
    p: &Expr,
    opts: &CheckOptions,
    stats: &mut Stats,
) -> Result<CheckResult, McError> {
    sys.check()?;
    let budget = Budget::new(opts);
    let bad = p.clone().not();
    let solve = SpanTimer::begin(Phase::Solve);
    // BFS keeping parents for trace reconstruction.
    let mut parent: HashMap<String, Option<State>> = HashMap::new();
    let mut queue = std::collections::VecDeque::new();
    for s in initial_states(sys) {
        if parent.insert(state_key(&s), None).is_none() {
            queue.push_back(s);
        }
    }
    while let Some(s) = queue.pop_front() {
        stats.states_visited += 1;
        if let Some(reason) = budget.exceeded() {
            stats.end_span(solve);
            return Ok(CheckResult::Unknown(reason));
        }
        if holds(&bad, &s) {
            let mut path = vec![s.clone()];
            let mut cur = s;
            while let Some(Some(p)) = parent.get(&state_key(&cur)) {
                path.push(p.clone());
                cur = p.clone();
            }
            path.reverse();
            let trace = Trace::new(sys, path, None);
            stats.end_span(solve);
            return Ok(if opts.certify {
                let replay = SpanTimer::begin(Phase::Replay);
                let gated = crate::certify::gate_invariant_cex(sys, p, trace);
                stats.end_span(replay);
                gated
            } else {
                CheckResult::Violated(trace)
            });
        }
        for n in successors(sys, &s) {
            let k = state_key(&n);
            if let std::collections::hash_map::Entry::Vacant(slot) = parent.entry(k) {
                slot.insert(Some(s.clone()));
                queue.push_back(n);
            }
        }
    }
    stats.end_span(solve);
    Ok(CheckResult::Holds)
}

/// Tarjan's strongly-connected components (iterative).
fn sccs(succs: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = succs.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut counter = 0usize;
    let mut out = Vec::new();

    // Iterative DFS with explicit frames: (node, child-iterator position).
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut frames = vec![(root, 0usize)];
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if *ci == 0 {
                index[v] = counter;
                low[v] = counter;
                counter += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < succs[v].len() {
                let w = succs[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("scc stack");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(comp);
                }
                frames.pop();
                if let Some(&mut (u, _)) = frames.last_mut() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }
    out
}

/// Trait-dispatch entry point for the complete LTL check by SCC analysis
/// on the tableau product (see [`crate::engine::engine`]).
pub(crate) fn run_ltl(
    sys: &System,
    phi: &Ltl,
    opts: &CheckOptions,
    stats: &mut Stats,
) -> Result<CheckResult, McError> {
    let budget = Budget::new(opts);
    let encode = SpanTimer::begin(Phase::Encode);
    let product = violation_product(sys, phi);
    product.system.check()?;
    stats.end_span(encode);
    let solve = SpanTimer::begin(Phase::Solve);
    let explored = explore(&product.system, &budget);
    if let Some(g) = &explored {
        stats.states_visited += g.states.len() as u64;
    }
    stats.end_span(solve);
    let Some(g) = explored else {
        return Ok(CheckResult::Unknown(budget.unknown_reason()));
    };
    // A fair SCC: has at least one internal edge (or self-loop) and
    // intersects every justice constraint.
    let fair_scc = sccs(&g.succs).into_iter().find(|comp| {
        let has_cycle = comp.len() > 1 || g.succs[comp[0]].contains(&comp[0]);
        if !has_cycle {
            return false;
        }
        product
            .justice
            .iter()
            .all(|j| comp.iter().any(|&s| holds(j, &g.states[s])))
    });
    let Some(comp) = fair_scc else {
        return Ok(CheckResult::Holds);
    };
    // Build a concrete lasso: shortest path from init to the SCC, then a
    // cycle inside the SCC hitting every justice constraint.
    let in_comp: std::collections::HashSet<usize> = comp.iter().copied().collect();
    // BFS from init to any SCC member.
    let mut parent: HashMap<usize, Option<usize>> = HashMap::new();
    let mut queue = std::collections::VecDeque::new();
    for &i in &g.init {
        parent.entry(i).or_insert(None);
        queue.push_back(i);
    }
    let mut entry = None;
    while let Some(v) = queue.pop_front() {
        if in_comp.contains(&v) {
            entry = Some(v);
            break;
        }
        for &w in &g.succs[v] {
            parent.entry(w).or_insert_with(|| {
                queue.push_back(w);
                Some(v)
            });
        }
    }
    let entry = entry.expect("SCC reachable by exploration construction");
    let mut prefix = vec![entry];
    let mut cur = entry;
    while let Some(Some(p)) = parent.get(&cur) {
        prefix.push(*p);
        cur = *p;
    }
    prefix.reverse();
    // Cycle: from entry, visit a witness of each justice constraint within
    // the SCC, then return to entry (BFS restricted to the SCC each hop).
    let mut cycle = vec![entry];
    let mut pos = entry;
    let mut targets: Vec<usize> = Vec::new();
    for j in &product.justice {
        let w = comp
            .iter()
            .copied()
            .find(|&s| holds(j, &g.states[s]))
            .expect("fair SCC");
        targets.push(w);
    }
    targets.push(entry); // close the loop
    for target in targets {
        if pos == target && cycle.len() > 1 {
            continue;
        }
        let hop = bfs_within(&g, &in_comp, pos, target);
        cycle.extend(hop.into_iter().skip(1));
        pos = target;
    }
    // If the cycle never moved (entry satisfies everything and self-loops).
    if cycle.len() == 1 {
        if g.succs[entry].contains(&entry) {
            cycle.push(entry);
        } else {
            // Walk any internal cycle through a successor.
            let next = *g.succs[entry]
                .iter()
                .find(|s| in_comp.contains(s))
                .expect("cycle exists");
            cycle.extend(bfs_within(&g, &in_comp, next, entry));
        }
    }
    // Assemble the trace: prefix + cycle (entry repeated at the end);
    // loop-back index is the entry position.
    let loop_back = prefix.len() - 1;
    let mut ids = prefix;
    ids.extend(cycle.into_iter().skip(1));
    let states: Vec<State> = ids
        .iter()
        .map(|&i| g.states[i][..product.original_vars].to_vec())
        .collect();
    let mut trace = Trace::new(&product.system, states, Some(loop_back));
    trace.var_names.truncate(product.original_vars);
    Ok(if opts.certify {
        let replay = SpanTimer::begin(Phase::Replay);
        let gated = crate::certify::gate_ltl_cex(sys, phi, trace);
        stats.end_span(replay);
        gated
    } else {
        CheckResult::Violated(trace)
    })
}

/// Shortest path from `from` to `to` staying inside `allowed`.
fn bfs_within(
    g: &Graph,
    allowed: &std::collections::HashSet<usize>,
    from: usize,
    to: usize,
) -> Vec<usize> {
    let mut parent: HashMap<usize, usize> = HashMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    while let Some(v) = queue.pop_front() {
        for &w in &g.succs[v] {
            if !allowed.contains(&w) || parent.contains_key(&w) {
                continue;
            }
            parent.insert(w, v);
            if w == to {
                let mut path = vec![to];
                let mut cur = to;
                while cur != from {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                return path;
            }
            queue.push_back(w);
        }
    }
    // target == from with no progress possible; return the trivial path.
    vec![from]
}

/// Trait-dispatch entry point for the complete CTL check by explicit
/// fixpoints — fairness honored like the BDD engine: quantifiers
/// restricted to states opening a fair path (see
/// [`crate::engine::engine`]).
pub(crate) fn run_ctl(
    sys: &System,
    phi: &Ctl,
    opts: &CheckOptions,
    stats: &mut Stats,
) -> Result<CheckResult, McError> {
    sys.check()?;
    let budget = Budget::new(opts);
    // CTL must be evaluated over the whole (invar-legal) state graph, not
    // just reachable states, to keep subformula semantics standard; for
    // the tiny models this engine targets that is fine.
    let solve = SpanTimer::begin(Phase::Solve);
    let states = verdict_ts::explicit::all_states(sys);
    stats.states_visited += states.len() as u64;
    let index: HashMap<String, usize> = states
        .iter()
        .enumerate()
        .map(|(i, s)| (state_key(s), i))
        .collect();
    let n = states.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, s) in states.iter().enumerate() {
        if let Some(reason) = budget.exceeded() {
            stats.end_span(solve);
            return Ok(CheckResult::Unknown(reason));
        }
        for nx in successors(sys, s) {
            if let Some(&j) = index.get(&state_key(&nx)) {
                succs[i].push(j);
                preds[j].push(i);
            }
        }
    }
    let justice: Vec<Vec<bool>> = sys
        .fairness()
        .iter()
        .map(|f| states.iter().map(|s| holds(f, s)).collect())
        .collect();

    let fair = fair_set(&succs, &preds, &justice, &vec![true; n]);
    let sat = eval_ctl(&states, &succs, &preds, &justice, &fair, &phi.to_base());
    let bad_init = initial_states(sys)
        .into_iter()
        .find(|s| !sat[index[&state_key(s)]]);
    stats.end_span(solve);
    match bad_init {
        None => Ok(CheckResult::Holds),
        Some(s) => Ok(CheckResult::Violated(Trace::new(sys, vec![s], None))),
    }
}

/// Explicit fair-EG: gfp Z ⊆ base with justice-visiting cycles.
fn fair_set(
    succs: &[Vec<usize>],
    preds: &[Vec<usize>],
    justice: &[Vec<bool>],
    base: &[bool],
) -> Vec<bool> {
    let n = succs.len();
    let mut z = base.to_vec();
    loop {
        let mut znew = z.clone();
        if justice.is_empty() {
            // z ∧ pre(z)
            for v in 0..n {
                if znew[v] && !succs[v].iter().any(|&w| z[w]) {
                    znew[v] = false;
                }
            }
        } else {
            for j in justice {
                // target = z ∧ j; eu = E[z U target]; znew ∧= pre(eu)
                let target: Vec<bool> = (0..n).map(|v| z[v] && j[v]).collect();
                let eu = eu_explicit(succs, preds, &z, &target);
                for v in 0..n {
                    if znew[v] && !succs[v].iter().any(|&w| eu[w]) {
                        znew[v] = false;
                    }
                }
            }
        }
        if znew == z {
            return z;
        }
        z = znew;
    }
}

fn eu_explicit(_succs: &[Vec<usize>], preds: &[Vec<usize>], p: &[bool], q: &[bool]) -> Vec<bool> {
    let mut y = q.to_vec();
    let mut queue: Vec<usize> = (0..y.len()).filter(|&v| y[v]).collect();
    while let Some(v) = queue.pop() {
        for &u in &preds[v] {
            if p[u] && !y[u] {
                y[u] = true;
                queue.push(u);
            }
        }
    }
    y
}

#[allow(clippy::too_many_arguments)]
fn eval_ctl(
    states: &[State],
    succs: &[Vec<usize>],
    preds: &[Vec<usize>],
    justice: &[Vec<bool>],
    fair: &[bool],
    phi: &Ctl,
) -> Vec<bool> {
    let n = states.len();
    match phi {
        Ctl::Atom(e) => states.iter().map(|s| holds(e, s)).collect(),
        Ctl::Not(a) => eval_ctl(states, succs, preds, justice, fair, a)
            .into_iter()
            .map(|b| !b)
            .collect(),
        Ctl::And(a, b) => {
            let a = eval_ctl(states, succs, preds, justice, fair, a);
            let b = eval_ctl(states, succs, preds, justice, fair, b);
            (0..n).map(|i| a[i] && b[i]).collect()
        }
        Ctl::Or(a, b) => {
            let a = eval_ctl(states, succs, preds, justice, fair, a);
            let b = eval_ctl(states, succs, preds, justice, fair, b);
            (0..n).map(|i| a[i] || b[i]).collect()
        }
        Ctl::EX(a) => {
            let a = eval_ctl(states, succs, preds, justice, fair, a);
            (0..n)
                .map(|i| succs[i].iter().any(|&w| a[w] && fair[w]))
                .collect()
        }
        Ctl::EU(a, b) => {
            let a = eval_ctl(states, succs, preds, justice, fair, a);
            let b = eval_ctl(states, succs, preds, justice, fair, b);
            let bf: Vec<bool> = (0..n).map(|i| b[i] && fair[i]).collect();
            eu_explicit(succs, preds, &a, &bf)
        }
        Ctl::EG(a) => {
            let a = eval_ctl(states, succs, preds, justice, fair, a);
            fair_set(succs, preds, justice, &a)
        }
        other => unreachable!("non-base CTL {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_ts::Value;

    fn check_invariant_t(
        sys: &System,
        p: &Expr,
        opts: &CheckOptions,
    ) -> Result<CheckResult, McError> {
        run_invariant(sys, p, opts, &mut Stats::default())
    }

    fn check_ltl_t(sys: &System, phi: &Ltl, opts: &CheckOptions) -> Result<CheckResult, McError> {
        run_ltl(sys, phi, opts, &mut Stats::default())
    }

    fn check_ctl_t(sys: &System, phi: &Ctl, opts: &CheckOptions) -> Result<CheckResult, McError> {
        run_ctl(sys, phi, opts, &mut Stats::default())
    }

    fn counter(limit: i64) -> (System, verdict_ts::VarId) {
        let mut sys = System::new("counter");
        let n = sys.int_var("n", 0, limit);
        sys.add_init(Expr::var(n).eq(Expr::int(0)));
        sys.add_trans(Expr::next(n).eq(Expr::ite(
            Expr::var(n).lt(Expr::int(limit)),
            Expr::var(n).add(Expr::int(1)),
            Expr::var(n),
        )));
        (sys, n)
    }

    #[test]
    fn invariant_agreement_with_expectations() {
        let (sys, n) = counter(4);
        let r = check_invariant_t(
            &sys,
            &Expr::var(n).le(Expr::int(4)),
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(r.holds());
        let r = check_invariant_t(
            &sys,
            &Expr::var(n).lt(Expr::int(2)),
            &CheckOptions::default(),
        )
        .unwrap();
        let t = r.trace().unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.value(2, "n"), Some(&Value::Int(2)));
    }

    #[test]
    fn ltl_oscillator() {
        let mut sys = System::new("flip");
        let x = sys.bool_var("x");
        sys.add_init(Expr::var(x));
        sys.add_trans(Expr::next(x).eq(Expr::var(x).not()));
        let fgx = Ltl::atom(Expr::var(x)).always().eventually();
        let r = check_ltl_t(&sys, &fgx, &CheckOptions::default()).unwrap();
        let t = r.trace().expect("violated");
        assert!(t.loop_back.is_some());
        let gfx = Ltl::atom(Expr::var(x)).eventually().always();
        let r = check_ltl_t(&sys, &gfx, &CheckOptions::default()).unwrap();
        assert!(r.holds(), "{r}");
    }

    #[test]
    fn ctl_matches_bdd_engine_on_counter() {
        let (sys, n) = counter(3);
        for phi in [
            Ctl::atom(Expr::var(n).eq(Expr::int(3))).ef(),
            Ctl::atom(Expr::var(n).le(Expr::int(3))).ag(),
            Ctl::atom(Expr::var(n).eq(Expr::int(1))).ax(),
            Ctl::atom(Expr::var(n).eq(Expr::int(2))).ef().not(),
        ] {
            let explicit = check_ctl_t(&sys, &phi, &CheckOptions::default()).unwrap();
            let symbolic =
                crate::bdd::run_ctl(&sys, &phi, &CheckOptions::default(), &mut Stats::default())
                    .unwrap();
            assert_eq!(explicit.holds(), symbolic.holds(), "disagreement on {phi}");
        }
    }

    #[test]
    fn scc_detects_self_loop_fairness() {
        // done latches; fairness done: the only fair cycle is done-states.
        let mut sys = System::new("latch");
        let done = sys.bool_var("done");
        sys.add_init(Expr::var(done).not());
        sys.add_trans(Expr::var(done).implies(Expr::next(done)));
        sys.add_fairness(Expr::var(done));
        // F done holds on fair paths.
        let r = check_ltl_t(
            &sys,
            &Ltl::atom(Expr::var(done)).eventually(),
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(r.holds(), "{r}");
        // G !done is violated on fair paths (they must reach done).
        let r = check_ltl_t(
            &sys,
            &Ltl::atom(Expr::var(done).not()).always(),
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(r.violated(), "{r}");
    }
}
