//! LTL → symbolic tableau translation (Clarke–Grumberg–Hamaguchi style).
//!
//! To check `φ` we search for a *witness of `¬φ`*: the negation is put in
//! negation normal form, every temporal subformula gets a fresh boolean
//! state variable with its expansion law as a `TRANS` constraint, and every
//! until-subformula contributes a justice (fairness) constraint ruling out
//! paths that promise `g U h` forever without delivering `h`:
//!
//! * `X g`   : `v ↔ next(sat(g))`
//! * `g U h` : `v ↔ h ∨ (g ∧ next(v))`, justice `¬v ∨ h`
//! * `g R h` : `v ↔ h ∧ (g ∨ next(v))`
//!
//! (`F`/`G` are desugared to `U`/`R` first.) The product system is the
//! original system plus the tableau variables, with `sat(¬φ)` added as an
//! `INIT` constraint. `φ` fails on the original system **iff** the product
//! has a fair infinite path — which the BDD engine decides by fair-cycle
//! detection and the BMC/SMT engines by fair-lasso search.

use std::collections::HashMap;

use verdict_ts::{Expr, Ltl, System, VarId, VarKind};

/// The tableau product: the instrumented system and its justice set.
pub struct TableauProduct {
    /// Original system + tableau variables + expansion constraints +
    /// `sat(¬φ)` as an additional INIT constraint.
    pub system: System,
    /// Justice constraints: every fair path satisfies each infinitely often.
    /// Includes the original system's own fairness constraints.
    pub justice: Vec<Expr>,
    /// Number of variables in the original system (prefix of the product's
    /// variable list) — used to project traces back.
    pub original_vars: usize,
}

/// Builds the tableau product for a *violation search* of `φ` on `sys`:
/// the product has a fair path iff `sys` has a path satisfying `¬φ`.
pub fn violation_product(sys: &System, phi: &Ltl) -> TableauProduct {
    build_product(sys, &phi.clone().not().nnf())
}

/// Builds the tableau product for a *witness search* of `ψ` (already the
/// formula whose satisfying path we want).
pub fn witness_product(sys: &System, psi: &Ltl) -> TableauProduct {
    build_product(sys, &psi.nnf())
}

fn build_product(sys: &System, nnf: &Ltl) -> TableauProduct {
    let mut product = sys.clone();
    let original_vars = sys.num_vars();
    let mut builder = Builder {
        sys: &mut product,
        justice: sys.fairness().to_vec(),
        cache: HashMap::new(),
        counter: 0,
    };
    let root = builder.sat(nnf);
    let justice = std::mem::take(&mut builder.justice);
    product.add_init(root);
    TableauProduct {
        system: product,
        justice,
        original_vars,
    }
}

struct Builder<'a> {
    sys: &'a mut System,
    justice: Vec<Expr>,
    /// Structural cache so repeated subformulas share tableau variables.
    cache: HashMap<String, VarId>,
    counter: usize,
}

impl Builder<'_> {
    /// Returns an expression over product state variables that holds in a
    /// state iff the path from that state satisfies `f` (on fair paths of
    /// the tableau).
    fn sat(&mut self, f: &Ltl) -> Expr {
        match f {
            Ltl::Atom(e) => e.clone(),
            Ltl::Not(inner) => {
                // NNF: negation only on atoms.
                match inner.as_ref() {
                    Ltl::Atom(e) => e.clone().not(),
                    other => panic!("tableau input not in NNF: !({other})"),
                }
            }
            Ltl::And(a, b) => {
                let (a, b) = (self.sat(a), self.sat(b));
                a.and(b)
            }
            Ltl::Or(a, b) => {
                let (a, b) = (self.sat(a), self.sat(b));
                a.or(b)
            }
            Ltl::X(g) => {
                let key = format!("X({g})");
                if let Some(&v) = self.cache.get(&key) {
                    return Expr::var(v);
                }
                let v = self.fresh(&key);
                self.cache.insert(key, v);
                let g_expr = self.sat(g);
                // v ↔ next(sat(g)): sat(g) may itself mention tableau vars;
                // shift it to the next state.
                let shifted = shift_to_next(&g_expr);
                self.sys.add_trans(Expr::var(v).iff(shifted));
                Expr::var(v)
            }
            Ltl::F(g) => self.sat(&Ltl::atom(Expr::tt()).until((**g).clone())),
            Ltl::G(g) => self.sat(&Ltl::atom(Expr::ff()).release((**g).clone())),
            Ltl::U(g, h) => {
                let key = format!("({g})U({h})");
                if let Some(&v) = self.cache.get(&key) {
                    return Expr::var(v);
                }
                let v = self.fresh(&key);
                self.cache.insert(key, v);
                let ge = self.sat(g);
                let he = self.sat(h);
                // v ↔ h ∨ (g ∧ X v)
                let expansion = he.clone().or(ge.and(Expr::next(v)));
                self.sys.add_trans(Expr::var(v).iff(expansion));
                // Justice: infinitely often (¬v ∨ h) — h cannot be promised
                // forever.
                self.justice.push(Expr::var(v).not().or(he));
                Expr::var(v)
            }
            Ltl::R(g, h) => {
                let key = format!("({g})R({h})");
                if let Some(&v) = self.cache.get(&key) {
                    return Expr::var(v);
                }
                let v = self.fresh(&key);
                self.cache.insert(key, v);
                let ge = self.sat(g);
                let he = self.sat(h);
                // v ↔ h ∧ (g ∨ X v)
                let expansion = he.and(ge.or(Expr::next(v)));
                self.sys.add_trans(Expr::var(v).iff(expansion));
                Expr::var(v)
            }
        }
    }

    fn fresh(&mut self, purpose: &str) -> VarId {
        let name = format!("__ltl{}_{}", self.counter, sanitize(purpose));
        self.counter += 1;
        self.sys
            .add_var(&name, verdict_ts::Sort::Bool, VarKind::State)
    }
}

/// Replaces every `Var(v)` by `Next(v)` (the expression must not already
/// mention `next()` — tableau sat() expressions never do).
pub(crate) fn shift_to_next(e: &Expr) -> Expr {
    match e {
        Expr::Const(_) => e.clone(),
        Expr::Var(v) => Expr::next(*v),
        Expr::Next(_) => panic!("shift_to_next on expression already using next()"),
        Expr::Not(a) => shift_to_next(a).not(),
        Expr::And(xs) => Expr::and_all(xs.iter().map(shift_to_next)),
        Expr::Or(xs) => Expr::or_all(xs.iter().map(shift_to_next)),
        Expr::Implies(a, b) => shift_to_next(a).implies(shift_to_next(b)),
        Expr::Iff(a, b) => shift_to_next(a).iff(shift_to_next(b)),
        Expr::Ite(c, t, f) => Expr::ite(shift_to_next(c), shift_to_next(t), shift_to_next(f)),
        Expr::Eq(a, b) => shift_to_next(a).eq(shift_to_next(b)),
        Expr::Le(a, b) => shift_to_next(a).le(shift_to_next(b)),
        Expr::Lt(a, b) => shift_to_next(a).lt(shift_to_next(b)),
        Expr::Add(xs) => Expr::sum(xs.iter().map(shift_to_next)),
        Expr::Sub(a, b) => shift_to_next(a).sub(shift_to_next(b)),
        Expr::Neg(a) => shift_to_next(a).neg(),
        Expr::MulConst(k, a) => shift_to_next(a).scale(*k),
        Expr::CountTrue(xs) => Expr::count_true(xs.iter().map(shift_to_next)),
    }
}

fn sanitize(s: &str) -> String {
    s.chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .take(16)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flip_system() -> (System, VarId) {
        let mut sys = System::new("flip");
        let x = sys.bool_var("x");
        sys.add_init(Expr::var(x));
        sys.add_trans(Expr::next(x).eq(Expr::var(x).not()));
        (sys, x)
    }

    #[test]
    fn safety_product_adds_no_tableau_vars_for_pure_g() {
        // ¬G(p) = F(¬p) = true U ¬p: one tableau var, one justice.
        let (sys, x) = flip_system();
        let phi = Ltl::atom(Expr::var(x)).always();
        let prod = violation_product(&sys, &phi);
        assert_eq!(prod.system.num_vars(), sys.num_vars() + 1);
        assert_eq!(prod.justice.len(), 1);
        assert_eq!(prod.original_vars, 1);
    }

    #[test]
    fn fg_product_has_two_temporal_vars() {
        // ¬F(G p) = G(F ¬p) = false R (true U ¬p): R-var + U-var, 1 justice.
        let (sys, x) = flip_system();
        let phi = Ltl::atom(Expr::var(x)).always().eventually();
        let prod = violation_product(&sys, &phi);
        assert_eq!(prod.system.num_vars(), sys.num_vars() + 2);
        assert_eq!(prod.justice.len(), 1);
    }

    #[test]
    fn shared_subformulas_cached() {
        let (sys, x) = flip_system();
        let fx = Ltl::atom(Expr::var(x)).eventually();
        // F x ∧ F x should introduce the U variable once.
        let phi = fx.clone().and(fx).not(); // witness search of ¬φ below
        let prod = witness_product(&sys, &phi.not().nnf());
        assert_eq!(prod.system.num_vars(), sys.num_vars() + 1);
    }

    #[test]
    fn product_type_checks() {
        let (sys, x) = flip_system();
        let phi = Ltl::atom(Expr::var(x))
            .until(Ltl::atom(Expr::var(x).not()))
            .next();
        let prod = violation_product(&sys, &phi);
        assert!(prod.system.check().is_ok());
        for j in &prod.justice {
            assert!(!j.mentions_next());
        }
    }

    #[test]
    fn x_operator_shifts() {
        let (sys, x) = flip_system();
        let phi = Ltl::atom(Expr::var(x)).next(); // X x
        let prod = violation_product(&sys, &phi);
        // ¬X x = X ¬x: one tableau var whose TRANS mentions next().
        assert_eq!(prod.system.num_vars(), 2);
        let added_trans = &prod.system.trans()[sys.trans().len()..];
        assert!(added_trans.iter().any(Expr::mentions_next));
    }
}
