//! Differential testing: all engines must agree on random small systems.
//!
//! The explicit-state engine is the semantics oracle; k-induction, BDD,
//! and (for falsification) BMC must match it on invariants, and BDD must
//! match it on LTL verdicts.

use verdict_mc::prelude::*;
use verdict_mc::{certify, Stats, UnknownReason};
use verdict_prng::Prng;
use verdict_ts::{Expr, Ltl, System, Value, VarId};

/// Dispatches an invariant check through the engine registry with a
/// scratch stats sink.
fn inv(kind: EngineKind, sys: &System, p: &Expr, opts: &CheckOptions) -> CheckResult {
    engine(kind)
        .check_invariant(sys, p, opts, &mut Stats::default())
        .unwrap()
}

/// Dispatches an LTL check through the engine registry with a scratch
/// stats sink.
fn ltl(kind: EngineKind, sys: &System, phi: &Ltl, opts: &CheckOptions) -> CheckResult {
    engine(kind)
        .check_ltl(sys, phi, opts, &mut Stats::default())
        .unwrap()
}

/// A random small finite system over a few booleans and one bounded int.
/// Transitions are built from random guarded assignments so the system is
/// total (unconstrained variables evolve nondeterministically).
fn random_system(seed: u64) -> (System, Vec<VarId>, VarId) {
    let mut rng = Prng::seed_from_u64(seed);
    let mut sys = System::new("random");
    let nbools = 1 + rng.gen_index(3);
    let bools: Vec<VarId> = (0..nbools)
        .map(|i| sys.bool_var(&format!("b{i}")))
        .collect();
    let hi = rng.gen_range_i64(2, 5);
    let n = sys.int_var("n", 0, hi);

    // Random INIT: fix each bool with probability 1/2; n starts at 0.
    for &b in &bools {
        if rng.gen_bool() {
            let positive = rng.gen_bool();
            sys.add_init(if positive {
                Expr::var(b)
            } else {
                Expr::var(b).not()
            });
        }
    }
    sys.add_init(Expr::var(n).eq(Expr::int(0)));

    // Random TRANS: n evolves by a guarded increment; bools may latch,
    // flip, or stay free.
    let guard_bool = bools[rng.gen_index(nbools)];
    sys.add_trans(Expr::next(n).eq(Expr::ite(
        Expr::var(guard_bool).and(Expr::var(n).lt(Expr::int(hi))),
        Expr::var(n).add(Expr::int(1)),
        Expr::var(n),
    )));
    for &b in &bools {
        match rng.gen_index(3) {
            0 => sys.add_trans(Expr::var(b).implies(Expr::next(b))), // latch
            1 => sys.add_trans(Expr::next(b).eq(Expr::var(b).not())), // flip
            _ => {}                                                  // free
        }
    }
    (sys, bools, n)
}

#[test]
fn invariant_verdicts_agree_across_engines() {
    let opts = CheckOptions::with_depth(32);
    for seed in 0..40u64 {
        let (sys, _bools, n) = random_system(seed);
        let mut rng = Prng::seed_from_u64(seed ^ 0xabcd);
        let bound = rng.gen_range_i64(1, 4);
        let p = Expr::var(n).lt(Expr::int(bound));

        let oracle = inv(EngineKind::Explicit, &sys, &p, &opts);
        let by_kind = inv(EngineKind::KInduction, &sys, &p, &opts);
        let by_bdd = inv(EngineKind::Bdd, &sys, &p, &opts);
        let by_bmc = inv(EngineKind::Bmc, &sys, &p, &opts);

        assert_eq!(
            oracle.holds(),
            by_kind.holds(),
            "seed {seed}: explicit vs k-induction\n{sys}"
        );
        assert_eq!(
            oracle.holds(),
            by_bdd.holds(),
            "seed {seed}: explicit vs BDD\n{sys}"
        );
        if oracle.violated() {
            assert!(by_bmc.violated(), "seed {seed}: BMC must find violation");
            // Traces from BDD and explicit are shortest; compare lengths.
            assert_eq!(
                oracle.trace().unwrap().len(),
                by_bdd.trace().unwrap().len(),
                "seed {seed}: shortest-counterexample lengths differ"
            );
            assert_eq!(
                oracle.trace().unwrap().len(),
                by_bmc.trace().unwrap().len(),
                "seed {seed}: BMC counterexample not minimal"
            );
        } else {
            assert!(
                !by_bmc.violated(),
                "seed {seed}: BMC found phantom violation"
            );
        }
    }
}

#[test]
fn ltl_verdicts_agree_between_bdd_and_explicit() {
    let opts = CheckOptions::with_depth(24);
    for seed in 0..30u64 {
        let (sys, bools, n) = random_system(seed.wrapping_mul(7919));
        let mut rng = Prng::seed_from_u64(seed ^ 0x5555);
        // Random property from a small grammar.
        let atom_n = Expr::var(n).ge(Expr::int(rng.gen_range_i64(1, 3)));
        let atom_b = Expr::var(bools[rng.gen_index(bools.len())]);
        let phi = match rng.gen_index(5) {
            0 => Ltl::atom(atom_n).eventually(),
            1 => Ltl::atom(atom_b.clone()).always(),
            2 => Ltl::atom(atom_b.clone()).always().eventually(), // F G
            3 => Ltl::atom(atom_n).eventually().always(),         // G F
            _ => Ltl::atom(atom_b).until(Ltl::atom(atom_n)),
        };
        let oracle = ltl(EngineKind::Explicit, &sys, &phi, &opts);
        let by_bdd = ltl(EngineKind::Bdd, &sys, &phi, &opts);
        assert_eq!(
            oracle.holds(),
            by_bdd.holds(),
            "seed {seed} property {phi}\n{sys}"
        );
        // BMC lasso search must agree whenever it returns a verdict.
        let by_bmc = ltl(EngineKind::Bmc, &sys, &phi, &opts);
        if by_bmc.violated() {
            assert!(oracle.violated(), "seed {seed}: BMC phantom lasso {phi}");
        }
        if oracle.violated() {
            // The lasso is within reach of the bound for these tiny models.
            assert!(
                matches!(by_bmc, CheckResult::Violated(_)),
                "seed {seed}: BMC missed lasso for {phi}"
            );
        }
    }
}

#[test]
fn lasso_counterexamples_replay_under_semantics() {
    // Liveness counterexamples must be genuine lassos: legal transitions
    // throughout, a loop that actually closes (the final state equals the
    // loop-back state), and — for F G p violations — a ¬p state inside
    // the loop.
    let opts = CheckOptions::with_depth(24);
    for seed in 0..25u64 {
        let (sys, bools, _n) = random_system(seed.wrapping_mul(131));
        let p = Expr::var(bools[0]);
        let phi = Ltl::atom(p.clone()).always().eventually(); // F G p
        let r = ltl(EngineKind::Bmc, &sys, &phi, &opts);
        let Some(trace) = r.trace() else { continue };
        let l = trace.loop_back.expect("liveness trace is a lasso");
        // Legal transitions.
        for w in trace.states.windows(2) {
            for tr in sys.trans() {
                assert!(
                    verdict_ts::explicit::eval_trans(tr, &w[0], &w[1]),
                    "seed {seed}: illegal transition"
                );
            }
        }
        // Loop closes: last state equals the loop-back state.
        assert_eq!(
            trace.states.last().unwrap(),
            &trace.states[l],
            "seed {seed}: lasso does not close\n{trace}"
        );
        // The loop contains a ¬p state (otherwise F G p would hold on it).
        let has_not_p =
            (l..trace.len() - 1).any(|t| !verdict_ts::explicit::holds(&p, &trace.states[t]));
        assert!(has_not_p, "seed {seed}: loop satisfies G p\n{trace}");
    }
}

#[test]
fn certify_mode_agrees_with_plain_verdicts_across_engines() {
    // With certification on, every engine's verdict on random systems must
    // be identical to its plain verdict: genuine counterexamples survive
    // replay, genuine proofs survive the re-check — no spurious
    // `CertificateRejected` demotions.
    let plain = CheckOptions::with_depth(32);
    let certified = CheckOptions::with_depth(32).with_certify();
    for seed in 0..25u64 {
        let (sys, _bools, n) = random_system(seed.wrapping_mul(577));
        let mut rng = Prng::seed_from_u64(seed ^ 0x77aa);
        let p = Expr::var(n).lt(Expr::int(rng.gen_range_i64(1, 4)));
        let engines = [
            ("bmc", EngineKind::Bmc),
            ("kind", EngineKind::KInduction),
            ("bdd", EngineKind::Bdd),
            ("explicit", EngineKind::Explicit),
        ];
        for (name, kind) in engines {
            let a = inv(kind, &sys, &p, &plain);
            let b = inv(kind, &sys, &p, &certified);
            assert_eq!(a.holds(), b.holds(), "seed {seed} {name}\n{sys}");
            assert_eq!(a.violated(), b.violated(), "seed {seed} {name}\n{sys}");
            assert!(
                !matches!(b, CheckResult::Unknown(UnknownReason::CertificateRejected)),
                "seed {seed} {name}: spurious certificate rejection"
            );
        }
    }
}

#[test]
fn certified_ltl_verdicts_survive_replay() {
    // LTL: BMC and BDD lasso counterexamples pass the replay interpreter
    // (certify keeps Violated); BDD proofs of liveness have no certificate
    // format and must stay Holds untouched.
    let plain = CheckOptions::with_depth(24);
    let certified = CheckOptions::with_depth(24).with_certify();
    for seed in 0..15u64 {
        let (sys, bools, _n) = random_system(seed.wrapping_mul(8121));
        let phi = Ltl::atom(Expr::var(bools[0])).always().eventually();
        let a = ltl(EngineKind::Bmc, &sys, &phi, &plain);
        let b = ltl(EngineKind::Bmc, &sys, &phi, &certified);
        assert_eq!(a.violated(), b.violated(), "seed {seed} bmc\n{sys}");
        let a = ltl(EngineKind::Bdd, &sys, &phi, &plain);
        let b = ltl(EngineKind::Bdd, &sys, &phi, &certified);
        assert_eq!(a.holds(), b.holds(), "seed {seed} bdd\n{sys}");
        assert_eq!(a.violated(), b.violated(), "seed {seed} bdd\n{sys}");
    }
}

/// A deterministic saturating counter: `n` increments to `limit`, stays.
fn det_counter(limit: i64) -> (System, VarId) {
    let mut sys = System::new("det");
    let n = sys.int_var("n", 0, limit);
    sys.add_init(Expr::var(n).eq(Expr::int(0)));
    sys.add_trans(Expr::next(n).eq(Expr::ite(
        Expr::var(n).lt(Expr::int(limit)),
        Expr::var(n).add(Expr::int(1)),
        Expr::var(n),
    )));
    (sys, n)
}

#[test]
fn mutated_invariant_trace_is_rejected() {
    // Corrupting one step of a genuine counterexample must demote the
    // verdict to Unknown(CertificateRejected): the mutated step is not a
    // legal transition of the deterministic counter.
    let (sys, n) = det_counter(5);
    let p = Expr::var(n).lt(Expr::int(3));
    let r = inv(EngineKind::Bmc, &sys, &p, &CheckOptions::with_depth(8));
    let CheckResult::Violated(mut trace) = r else {
        panic!("n reaches 3")
    };
    assert_eq!(trace.len(), 4); // 0, 1, 2, 3
    certify::validate_invariant_cex(&sys, &p, &trace).expect("pristine trace replays");
    trace.states[2][n.index()] = Value::Int(0); // 1 → 0 is not a step
    let gated = certify::gate_invariant_cex(&sys, &p, trace);
    assert!(
        matches!(
            gated,
            CheckResult::Unknown(UnknownReason::CertificateRejected)
        ),
        "got {gated}"
    );
}

#[test]
fn mutated_lasso_trace_is_rejected() {
    // An oscillator violates F G x with a lasso; breaking the loop
    // closure must be caught by the replayer.
    let mut sys = System::new("flip");
    let x = sys.bool_var("x");
    sys.add_init(Expr::var(x));
    sys.add_trans(Expr::next(x).eq(Expr::var(x).not()));
    let phi = Ltl::atom(Expr::var(x)).always().eventually();
    let r = ltl(EngineKind::Bmc, &sys, &phi, &CheckOptions::with_depth(8));
    let CheckResult::Violated(mut trace) = r else {
        panic!("oscillator violates F G x")
    };
    certify::validate_ltl_cex(&sys, &phi, &trace).expect("pristine lasso replays");
    let last = trace.len() - 1;
    let Value::Bool(b) = trace.states[last][x.index()] else {
        panic!()
    };
    trace.states[last][x.index()] = Value::Bool(!b); // loop no longer closes
    let gated = certify::gate_ltl_cex(&sys, &phi, trace);
    assert!(
        matches!(
            gated,
            CheckResult::Unknown(UnknownReason::CertificateRejected)
        ),
        "got {gated}"
    );
}

#[test]
fn counterexample_traces_replay_under_semantics() {
    // Every violated-invariant trace must be a genuine execution: init
    // holds, each step is a legal transition, and the last state breaks p.
    let opts = CheckOptions::with_depth(32);
    for seed in 0..25u64 {
        let (sys, _b, n) = random_system(seed.wrapping_mul(31));
        let p = Expr::var(n).lt(Expr::int(2));
        let r = inv(EngineKind::Bmc, &sys, &p, &opts);
        let Some(trace) = r.trace() else { continue };
        // Initial state satisfies INIT and INVAR.
        let first = &trace.states[0];
        for init in sys.init() {
            assert!(
                verdict_ts::explicit::holds(init, first),
                "seed {seed}: INIT violated by trace head"
            );
        }
        // Transitions are legal.
        for w in trace.states.windows(2) {
            for tr in sys.trans() {
                assert!(
                    verdict_ts::explicit::eval_trans(tr, &w[0], &w[1]),
                    "seed {seed}: illegal transition in counterexample"
                );
            }
        }
        // Final state violates p.
        let last = trace.states.last().unwrap();
        assert!(
            !verdict_ts::explicit::holds(&p, last),
            "seed {seed}: final state satisfies the invariant"
        );
    }
}
