//! Integration tests for portfolio racing: losers must observe the stop
//! flag and exit promptly, and the portfolio verdict must agree with each
//! sequential engine.

use std::time::{Duration, Instant};

use verdict_mc::portfolio;
use verdict_mc::prelude::*;
use verdict_mc::{McError, Stats, UnknownReason};
use verdict_ts::{Expr, System, VarId};

/// A counter with a huge range: k-induction proves `c <= top` instantly
/// (the step case is 1-inductive) while BDD forward reachability would
/// need ~`top` iterations to exhaust the state space.
fn slow_for_bdd(top: i64) -> (System, VarId) {
    let mut sys = System::new("bigcounter");
    let c = sys.int_var("c", 0, top);
    sys.add_init(Expr::var(c).eq(Expr::int(0)));
    sys.add_trans(Expr::next(c).eq(Expr::ite(
        Expr::var(c).lt(Expr::int(top)),
        Expr::var(c).add(Expr::int(1)),
        Expr::var(c),
    )));
    (sys, c)
}

#[test]
fn loser_observes_stop_flag_and_exits_promptly() {
    // k-induction wins in milliseconds; BDD reachability on ~2^20 states
    // would take far longer than the asserted wall bound, so the test
    // passing at all means the loser honoured the cancellation flag.
    let (sys, c) = slow_for_bdd(1 << 20);
    let p = Expr::var(c).le(Expr::int(1 << 20));
    let started = Instant::now();
    let report = Verifier::new(&sys)
        .engine(EngineKind::Portfolio)
        .check_invariant_report(&p)
        .unwrap();
    let wall = started.elapsed();
    assert!(report.result.holds(), "{}", report.result);
    assert_eq!(report.winner, EngineKind::KInduction);
    assert!(
        wall < Duration::from_secs(20),
        "portfolio took {wall:?}; loser did not cancel"
    );
    // The BDD contender must have been cut short, not run to completion.
    let bdd_outcome = report
        .outcomes
        .iter()
        .find(|(e, _)| *e == EngineKind::Bdd)
        .map(|(_, r)| r.clone());
    assert!(
        matches!(
            bdd_outcome,
            Some(CheckResult::Unknown(UnknownReason::Cancelled))
        ),
        "expected the BDD loser to report Cancelled, got {bdd_outcome:?}"
    );
}

#[test]
fn portfolio_agrees_with_every_sequential_engine() {
    let (sys, c) = slow_for_bdd(7);
    let opts = CheckOptions::default();
    for prop in [
        Expr::var(c).le(Expr::int(7)), // holds
        Expr::var(c).lt(Expr::int(4)), // violated at depth 4
        Expr::var(c).ne(Expr::int(7)), // violated at the fixpoint
    ] {
        let report = Verifier::new(&sys)
            .engine(EngineKind::Portfolio)
            .options(opts.clone())
            .check_invariant_report(&prop)
            .unwrap();
        let b = engine(EngineKind::Bdd)
            .check_invariant(&sys, &prop, &opts, &mut Stats::default())
            .unwrap();
        let k = engine(EngineKind::KInduction)
            .check_invariant(&sys, &prop, &opts, &mut Stats::default())
            .unwrap();
        assert_eq!(report.result.holds(), b.holds(), "vs bdd: {prop:?}");
        assert_eq!(report.result.violated(), b.violated(), "vs bdd: {prop:?}");
        assert_eq!(report.result.holds(), k.holds(), "vs kind: {prop:?}");
        assert_eq!(report.result.violated(), k.violated(), "vs kind: {prop:?}");
        // BMC is a falsifier: on violated properties it must agree too.
        let m = engine(EngineKind::Bmc)
            .check_invariant(&sys, &prop, &opts, &mut Stats::default())
            .unwrap();
        if report.result.violated() {
            assert!(m.violated(), "vs bmc: {prop:?}");
        }
    }
}

#[test]
fn injected_panicking_contender_is_contained() {
    // A contender that panics mid-race must be contained by its worker
    // thread and recorded as Unknown(EngineFailure); the sound survivor
    // still delivers the verdict.
    let (sys, c) = slow_for_bdd(7);
    let p = Expr::var(c).le(Expr::int(7));
    let contenders: Vec<(EngineKind, portfolio::Contender)> = vec![
        (
            EngineKind::Bmc,
            Box::new(
                |_o: &CheckOptions, _st: &mut Stats| -> Result<CheckResult, McError> {
                    panic!("injected engine failure")
                },
            ),
        ),
        (
            EngineKind::KInduction,
            Box::new(|o: &CheckOptions, st: &mut Stats| {
                engine(EngineKind::KInduction).check_invariant(&sys, &p, o, st)
            }),
        ),
    ];
    let report = portfolio::race(&CheckOptions::default(), contenders).unwrap();
    assert!(report.result.holds(), "survivor verdict: {}", report.result);
    assert_eq!(report.winner, EngineKind::KInduction);
    let crashed = report
        .outcomes
        .iter()
        .find(|(e, _)| *e == EngineKind::Bmc)
        .map(|(_, r)| r.clone());
    assert!(
        matches!(
            crashed,
            Some(CheckResult::Unknown(UnknownReason::EngineFailure))
        ),
        "expected EngineFailure for the crashed contender, got {crashed:?}"
    );
}

#[test]
fn all_contenders_panicking_degrades_to_engine_failure() {
    // With every contender down the race must still return (no hang, no
    // propagated panic), reporting the failure as an Unknown verdict.
    let contenders: Vec<(EngineKind, portfolio::Contender)> = vec![(
        EngineKind::Bmc,
        Box::new(
            |_o: &CheckOptions, _st: &mut Stats| -> Result<CheckResult, McError> {
                panic!("injected engine failure")
            },
        ),
    )];
    let report = portfolio::race(&CheckOptions::default(), contenders).unwrap();
    assert!(
        matches!(
            report.result,
            CheckResult::Unknown(UnknownReason::EngineFailure)
        ),
        "{}",
        report.result
    );
}

#[test]
fn deadline_still_bounds_a_portfolio_without_winner() {
    // An invariant that holds but is not k-inductive within the depth
    // bound, on a state space too big for BDD within the timeout: no
    // contender is definitive, and the race must end at the deadline
    // with an Unknown rather than hang.
    let (sys, c) = slow_for_bdd(1 << 20);
    // Violated only ~2^19 steps in: BMC/kind see nothing in 4 unrollings
    // and BDD cannot cross half a million frontier iterations in 300 ms.
    let p = Expr::var(c).lt(Expr::int(1 << 19));
    let opts = CheckOptions {
        max_depth: 4,
        ..CheckOptions::default()
    }
    .with_timeout(Duration::from_millis(300));
    let started = Instant::now();
    let report = Verifier::new(&sys)
        .engine(EngineKind::Portfolio)
        .options(opts)
        .check_invariant_report(&p)
        .unwrap();
    assert!(
        matches!(report.result, CheckResult::Unknown(_)),
        "{}",
        report.result
    );
    assert!(started.elapsed() < Duration::from_secs(20));
}
