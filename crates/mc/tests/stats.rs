//! The observability contract: counters are deterministic for a fixed
//! seed and a single worker, every engine actually reports work, and
//! portfolio reports carry the winner's stats plus per-contender
//! summaries.

use verdict_mc::prelude::*;
use verdict_mc::Stats;
use verdict_ts::{Expr, System};

/// A finite saturating counter with a violated bound at depth 4.
fn finite_system() -> (System, Expr) {
    let mut sys = System::new("sat-counter");
    let n = sys.int_var("n", 0, 8);
    sys.add_init(Expr::var(n).eq(Expr::int(0)));
    sys.add_trans(Expr::next(n).eq(Expr::ite(
        Expr::var(n).lt(Expr::int(8)),
        Expr::var(n).add(Expr::int(1)),
        Expr::var(n),
    )));
    (sys, Expr::var(n).lt(Expr::int(4)))
}

/// A real-valued ramp for the SMT engine.
fn real_system() -> (System, Expr) {
    use verdict_logic::Rational;
    let mut sys = System::new("ramp");
    let x = sys.real_var("x");
    sys.add_init(Expr::var(x).eq(Expr::real(Rational::ZERO)));
    sys.add_trans(Expr::next(x).eq(Expr::var(x).add(Expr::real(Rational::ONE))));
    (sys, Expr::var(x).lt(Expr::real(Rational::integer(3))))
}

/// The sequential engines (portfolio excluded: its winner — and hence
/// its counters — depends on thread scheduling).
const SEQUENTIAL: [EngineKind; 5] = [
    EngineKind::Bmc,
    EngineKind::KInduction,
    EngineKind::Bdd,
    EngineKind::Explicit,
    EngineKind::SmtBmc,
];

fn run(kind: EngineKind, sys: &System, p: &Expr, opts: &CheckOptions) -> Stats {
    let mut stats = Stats::default();
    engine(kind)
        .check_invariant(sys, p, opts, &mut stats)
        .unwrap();
    stats
}

#[test]
fn counters_identical_across_runs_with_one_worker() {
    // Two identical single-threaded runs must produce byte-identical
    // counter JSON — timings may differ, counters may not. This is the
    // determinism half of the stats contract.
    let opts = CheckOptions::with_depth(12).with_jobs(1);
    for kind in SEQUENTIAL {
        let (sys, p) = if kind == EngineKind::SmtBmc {
            real_system()
        } else {
            finite_system()
        };
        let a = run(kind, &sys, &p, &opts);
        let b = run(kind, &sys, &p, &opts);
        assert_eq!(
            a.counters_json(),
            b.counters_json(),
            "{kind}: counters drifted between identical runs"
        );
    }
}

#[test]
fn every_engine_reports_nonzero_counters() {
    // A check that decides a verdict did work, and the stats must show
    // it: no engine may return with an all-zero counter block.
    let opts = CheckOptions::with_depth(12);
    for kind in SEQUENTIAL {
        let (sys, p) = if kind == EngineKind::SmtBmc {
            real_system()
        } else {
            finite_system()
        };
        let stats = run(kind, &sys, &p, &opts);
        assert_eq!(stats.engine, Some(kind), "{kind}: engine tag missing");
        assert!(
            !stats.counters_are_zero(),
            "{kind}: all counters zero after a decided check:\n{}",
            stats.counters_json()
        );
    }
}

#[test]
fn depth_oriented_engines_record_per_depth_timings() {
    // Unrolling engines must sample every depth they visited; the
    // violation above is at depth 4, so BMC sees depths 0..=4.
    let opts = CheckOptions::with_depth(12);
    let (sys, p) = finite_system();
    for kind in [EngineKind::Bmc, EngineKind::KInduction] {
        let stats = run(kind, &sys, &p, &opts);
        assert!(
            stats.depths.len() >= 4,
            "{kind}: expected >= 4 depth samples, got {}",
            stats.depths.len()
        );
        let depths: Vec<usize> = stats.depths.iter().map(|d| d.depth).collect();
        assert_eq!(depths[0], 0, "{kind}: first sample is depth 0");
        assert!(
            depths.windows(2).all(|w| w[0] < w[1]),
            "{kind}: depth samples not strictly increasing: {depths:?}"
        );
    }
    let (sys, p) = real_system();
    let stats = run(EngineKind::SmtBmc, &sys, &p, &opts);
    assert!(
        stats.depths.len() >= 3,
        "smt-bmc: expected >= 3 depth samples, got {}",
        stats.depths.len()
    );
}

#[test]
fn portfolio_report_carries_winner_and_contender_stats() {
    let (sys, p) = finite_system();
    let report = Verifier::new(&sys)
        .engine(EngineKind::Portfolio)
        .options(CheckOptions::with_depth(12))
        .check_invariant_report(&p)
        .unwrap();
    // The report's stats are the winner's.
    assert_eq!(report.stats.engine, Some(report.winner));
    assert!(
        !report.stats.counters_are_zero(),
        "winner produced no counters"
    );
    // Each contender contributes a per-engine summary aligned with the
    // outcome list, and the winner's summary matches the headline stats
    // modulo the runtime group, which the race collector folds into the
    // headline (ring batches, parks) on top of the winner's own counters.
    assert_eq!(report.contender_stats.len(), report.outcomes.len());
    let winner_summary = report
        .contender_stats
        .iter()
        .find(|(k, _)| *k == report.winner)
        .expect("winner has a contender summary");
    let strip_runtime = |s: &Stats| {
        let mut s = s.clone();
        s.runtime = Default::default();
        s
    };
    assert_eq!(
        strip_runtime(&winner_summary.1).counters_json(),
        strip_runtime(&report.stats).counters_json()
    );
    // The collector saw at least the winner's verdict cross a ring.
    assert!(
        report.stats.runtime.ring_messages >= 1,
        "race collector recorded no ring traffic:\n{}",
        report.stats.counters_json()
    );
}

#[test]
fn schema_and_shape_of_stats_json() {
    // The versioned-JSON contract: `"schema":2` leads both renderings,
    // and the full form carries depths and the four phase timers.
    let (sys, p) = finite_system();
    let stats = run(EngineKind::Bmc, &sys, &p, &CheckOptions::with_depth(12));
    let full = stats.to_json();
    let counters = stats.counters_json();
    for json in [&full, &counters] {
        assert!(
            json.starts_with("{\"schema\":2,"),
            "schema tag missing: {json}"
        );
    }
    for field in [
        "\"depths\":[",
        "\"encode_us\":",
        "\"solve_us\":",
        "\"certify_us\":",
    ] {
        assert!(full.contains(field), "missing {field} in {full}");
    }
    // Counter JSON is the deterministic subset: no timing fields.
    assert!(!counters.contains("_us\""), "timings leaked: {counters}");
}
