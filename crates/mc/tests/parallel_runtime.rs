//! The parallel-runtime contract: learned-clause sharing moves clauses
//! between solvers over the same CNF prefix, never changes verdicts,
//! survives `--certify`, and is perfectly silent — all-zero runtime
//! counters — in sequential runs without a hub, so the PR-5 stats
//! baseline is reproduced exactly.

use std::sync::Arc;

use verdict_mc::params::{synthesize, Property, SynthesisEngine};
use verdict_mc::prelude::*;
use verdict_mc::Stats;
use verdict_sat::ClauseHub;
use verdict_ts::{Expr, System};

/// Two walkers each stepping +1 or +2 nondeterministically. The
/// nondeterminism forces real search (conflicts, learnt clauses) instead
/// of pure unit propagation, which is what makes the workload worth
/// sharing — and it is fully deterministic for a fixed solver seed.
fn walker_system() -> System {
    let mut sys = System::new("walkers");
    let a = sys.int_var("a", 0, 40);
    let b = sys.int_var("b", 0, 40);
    sys.add_init(Expr::var(a).eq(Expr::int(0)));
    sys.add_init(Expr::var(b).eq(Expr::int(0)));
    for v in [a, b] {
        sys.add_trans(
            Expr::next(v)
                .eq(Expr::var(v).add(Expr::int(1)))
                .or(Expr::next(v).eq(Expr::var(v).add(Expr::int(2)))),
        );
    }
    sys
}

/// Holds at every depth: `b <= 2a` (each step grows `a` by at least 1
/// and `b` by at most 2). BMC grinds through an Unsat proof per depth —
/// a conflict-rich exporter.
fn holds_prop(sys: &System) -> Expr {
    let a = sys.var_by_name("a").unwrap();
    let b = sys.var_by_name("b").unwrap();
    Expr::var(b).le(Expr::var(a).add(Expr::var(a)))
}

/// Violated at depth 5 (five +2 steps on both walkers).
fn deep_violation_prop(sys: &System) -> Expr {
    let a = sys.var_by_name("a").unwrap();
    let b = sys.var_by_name("b").unwrap();
    Expr::var(a)
        .ne(Expr::int(10))
        .or(Expr::var(b).ne(Expr::int(10)))
}

fn run(kind: EngineKind, sys: &System, p: &Expr, opts: &CheckOptions) -> (CheckResult, Stats) {
    let mut stats = Stats::default();
    let result = engine(kind)
        .check_invariant(sys, p, opts, &mut stats)
        .unwrap();
    (result, stats)
}

#[test]
fn sharing_moves_clauses_between_sequential_runs() {
    // Two sequential BMC runs over the same system claim the two
    // endpoints of one hub: the first run's exports sit in the second
    // endpoint's ring, and the second run imports them at solve entry.
    // Sequential runs make the exchange deterministic — no thread
    // timing decides whether clauses arrive in time to be used.
    let sys = walker_system();
    let p = holds_prop(&sys);
    let hub = ClauseHub::new(2);
    let opts = CheckOptions::with_depth(16).with_share_hub(Arc::clone(&hub));

    let (_, first) = run(EngineKind::Bmc, &sys, &p, &opts);
    assert!(
        first.runtime.clauses_exported > 0,
        "first run exported nothing:\n{}",
        first.counters_json()
    );
    let (_, second) = run(EngineKind::Bmc, &sys, &p, &opts);
    assert!(
        second.runtime.clauses_imported > 0,
        "second run imported nothing:\n{}",
        second.counters_json()
    );
    assert!(
        second.runtime.import_hits > 0,
        "imported clauses never propagated or conflicted:\n{}",
        second.counters_json()
    );
}

#[test]
fn sharing_does_not_change_verdicts() {
    // Soundness at the engine level: for both a holds-style and a
    // violated property, a run that imports a peer's clauses reaches
    // the same verdict as an isolated run.
    let sys = walker_system();
    for (prop, name) in [
        (holds_prop(&sys), "holds"),
        (deep_violation_prop(&sys), "violated"),
    ] {
        for kind in [EngineKind::Bmc, EngineKind::KInduction] {
            let isolated = CheckOptions::with_depth(16).with_sharing(false);
            let (base, _) = run(kind, &sys, &prop, &isolated);

            let hub = ClauseHub::new(2);
            let shared = CheckOptions::with_depth(16).with_share_hub(Arc::clone(&hub));
            // Prime the hub with a first run, then check the importer.
            let _ = run(kind, &sys, &prop, &shared);
            let (imported, _) = run(kind, &sys, &prop, &shared);

            assert_eq!(base.holds(), imported.holds(), "{kind}/{name}");
            assert_eq!(base.violated(), imported.violated(), "{kind}/{name}");
        }
    }
}

#[test]
fn certify_passes_with_sharing_enabled() {
    // Certification re-checks verdicts with machinery that never
    // imports (fresh solvers for Unsat re-proofs, trace replay for
    // counterexamples), so it must keep passing when the deciding
    // solver was fed shared clauses.
    let sys = walker_system();
    let hub = ClauseHub::new(4);
    let opts = CheckOptions::with_depth(16)
        .with_certify()
        .with_share_hub(Arc::clone(&hub));

    let violated = deep_violation_prop(&sys);
    let _ = run(EngineKind::Bmc, &sys, &violated, &opts);
    let (result, _) = run(EngineKind::Bmc, &sys, &violated, &opts);
    assert!(
        result.violated(),
        "certified counterexample expected: {result:?}"
    );

    let holds = holds_prop(&sys);
    let (result, _) = run(EngineKind::KInduction, &sys, &holds, &opts);
    assert!(result.holds(), "certified proof expected: {result:?}");
}

#[test]
fn sequential_runs_without_hub_reproduce_baseline_stats() {
    // The determinism half of the contract: with jobs = 1 and no hub
    // installed, the runtime counter group stays all zero and the
    // counter JSON is byte-identical to a sharing-disabled run — the
    // parallel runtime is invisible to the PR-5 observability baseline.
    let sys = walker_system();
    let p = holds_prop(&sys);
    let plain = CheckOptions::with_depth(12).with_jobs(1);
    let disabled = CheckOptions::with_depth(12)
        .with_jobs(1)
        .with_sharing(false);
    for kind in [EngineKind::Bmc, EngineKind::KInduction] {
        let (_, a) = run(kind, &sys, &p, &plain);
        let (_, b) = run(kind, &sys, &p, &disabled);
        assert!(
            a.runtime.is_zero(),
            "{kind}: runtime counters nonzero without a hub:\n{}",
            a.counters_json()
        );
        assert_eq!(
            a.counters_json(),
            b.counters_json(),
            "{kind}: sharing-disabled run drifted from the no-hub baseline"
        );
    }
}

#[test]
fn sequential_sweep_keeps_runtime_counters_silent() {
    // A jobs = 1 synthesis sweep without a pre-installed hub must be
    // reproducible and report an all-zero runtime group, both on the
    // clone path and the incremental path.
    let mut sys = System::new("param-walk");
    let limit = sys.int_var("limit", 0, 3);
    let n = sys.int_var("n", 0, 8);
    sys.add_init(Expr::var(n).eq(Expr::int(0)));
    sys.add_trans(Expr::next(n).eq(Expr::ite(
        Expr::var(n).lt(Expr::int(8)),
        Expr::var(n).add(Expr::int(1)),
        Expr::var(n),
    )));
    sys.add_trans(Expr::next(limit).eq(Expr::var(limit)));
    let prop = Property::Invariant(Expr::var(n).lt(Expr::var(limit).add(Expr::int(5))));

    for incremental in [false, true] {
        let opts = CheckOptions::with_depth(10)
            .with_jobs(1)
            .with_incremental(incremental);
        let a = synthesize(&sys, &[limit], &prop, SynthesisEngine::KInduction, &opts).unwrap();
        let b = synthesize(&sys, &[limit], &prop, SynthesisEngine::KInduction, &opts).unwrap();
        assert!(
            a.runtime.is_zero(),
            "incremental={incremental}: sequential sweep touched the parallel runtime"
        );
        assert_eq!(a.verdicts.len(), 4);
        for (x, y) in a.verdicts.iter().zip(&b.verdicts) {
            assert_eq!(x.values, y.values, "sweep order drifted");
            assert_eq!(x.result.holds(), y.result.holds());
            assert_eq!(x.result.violated(), y.result.violated());
        }
    }
}

#[test]
fn synthesis_sweep_with_hub_reports_sharing_traffic() {
    // An incremental jobs = 1 sweep with a pre-installed hub routes the
    // worker's persistent base solver through an endpoint; a second
    // sweep over the same system imports the first sweep's clauses.
    let mut sys = System::new("shared-sweep");
    let slack = sys.int_var("slack", 0, 1);
    let a = sys.int_var("a", 0, 40);
    let b = sys.int_var("b", 0, 40);
    sys.add_init(Expr::var(a).eq(Expr::int(0)));
    sys.add_init(Expr::var(b).eq(Expr::int(0)));
    for v in [a, b] {
        sys.add_trans(
            Expr::next(v)
                .eq(Expr::var(v).add(Expr::int(1)))
                .or(Expr::next(v).eq(Expr::var(v).add(Expr::int(2)))),
        );
    }
    sys.add_trans(Expr::next(slack).eq(Expr::var(slack)));
    // Holds for both slack values: b <= 2a <= 2a + slack.
    let prop =
        Property::Invariant(Expr::var(b).le(Expr::var(a).add(Expr::var(a)).add(Expr::var(slack))));

    let hub = ClauseHub::new(2);
    let opts = CheckOptions::with_depth(12)
        .with_jobs(1)
        .with_incremental(true)
        .with_share_hub(Arc::clone(&hub));
    let first = synthesize(&sys, &[slack], &prop, SynthesisEngine::KInduction, &opts).unwrap();
    assert!(
        first.runtime.clauses_exported > 0,
        "sweep exported nothing through the installed hub"
    );
    let second = synthesize(&sys, &[slack], &prop, SynthesisEngine::KInduction, &opts).unwrap();
    assert!(
        second.runtime.clauses_imported > 0,
        "second sweep imported nothing"
    );
}
