//! Cross-engine agreement for the partitioned symbolic engine.
//!
//! The partitioned transition relation, early quantification, dynamic
//! sifting, and care-set property lowering are all pure optimizations:
//! every verdict — including under `--certify` — must be identical to
//! the monolithic relation and to k-induction. This suite pins that on
//! the shipped case studies (`examples/models/*.vd`, the rollout
//! topologies) and on a batch of seeded random systems.

use verdict_mc::prelude::*;
use verdict_mc::{Stats, UnknownReason};
use verdict_models::{RolloutModel, RolloutSpec, Topology};
use verdict_prng::Prng;
use verdict_ts::{Expr, System, VarId};

fn check(sys: &System, p: &Expr, opts: &CheckOptions) -> CheckResult {
    engine(EngineKind::Bdd)
        .check_invariant(sys, p, opts, &mut Stats::default())
        .unwrap()
}

fn partitioned(depth: usize) -> CheckOptions {
    CheckOptions::with_depth(depth)
}

fn monolithic(depth: usize) -> CheckOptions {
    CheckOptions::with_depth(depth).with_bdd_partitioned(false)
}

/// Compiles a `.vd` case study from `examples/models`. (The leaky-bucket
/// example is real-valued and thus out of reach of any BDD mode, so this
/// suite drives the two finite-state examples.)
fn vd_model(file: &str) -> verdict_dsl::CompiledModel {
    let path = format!(
        "{}/../../examples/models/{file}",
        env!("CARGO_MANIFEST_DIR")
    );
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    verdict_dsl::parse(&source).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

#[test]
fn case_study_invariants_agree_partitioned_vs_monolithic_vs_kinduction() {
    let model = vd_model("step_counter.vd");
    for (name, p) in &model.properties {
        let verdict_dsl::CompiledProperty::Invariant(p) = p else {
            continue;
        };
        let sys = &model.system;
        let part = check(sys, p, &partitioned(24));
        let mono = check(sys, p, &monolithic(24));
        let kind = engine(EngineKind::KInduction)
            .check_invariant(sys, p, &CheckOptions::with_depth(24), &mut Stats::default())
            .unwrap();
        assert_eq!(
            part.holds(),
            mono.holds(),
            "{name}: partitioned vs monolithic"
        );
        assert_eq!(
            part.violated(),
            mono.violated(),
            "{name}: partitioned vs monolithic"
        );
        if kind.holds() || kind.violated() {
            assert_eq!(
                part.violated(),
                kind.violated(),
                "{name}: partitioned vs k-induction"
            );
        }
        // Shortest-counterexample lengths must also agree: both BDD
        // modes do ring-indexed breadth-first reachability.
        if let (Some(a), Some(b)) = (part.trace(), mono.trace()) {
            assert_eq!(a.len(), b.len(), "{name}: trace lengths differ");
        }
    }
}

#[test]
fn case_study_ltl_agrees_partitioned_vs_monolithic_vs_explicit() {
    // The taint-loop case study ships an LTL property (F G running);
    // liveness via the product construction must be partition-agnostic.
    let model = vd_model("taint_loop.vd");
    let mut checked = 0;
    for (name, p) in &model.properties {
        let verdict_dsl::CompiledProperty::Ltl(phi) = p else {
            continue;
        };
        let run = |opts: &CheckOptions, kind: EngineKind| {
            engine(kind)
                .check_ltl(&model.system, phi, opts, &mut Stats::default())
                .unwrap()
        };
        let part = run(&partitioned(24), EngineKind::Bdd);
        let mono = run(&monolithic(24), EngineKind::Bdd);
        let oracle = run(&CheckOptions::with_depth(24), EngineKind::Explicit);
        assert_eq!(
            part.holds(),
            mono.holds(),
            "{name}: partitioned vs monolithic"
        );
        assert_eq!(
            part.violated(),
            mono.violated(),
            "{name}: partitioned vs monolithic"
        );
        assert_eq!(
            part.holds(),
            oracle.holds(),
            "{name}: partitioned vs explicit"
        );
        checked += 1;
    }
    assert!(checked > 0, "taint_loop must ship an LTL property");
}

#[test]
fn rollout_sweep_agrees_partitioned_vs_monolithic() {
    // The paper's case study 1 on the test topology, over the Fig. 5/6
    // configurations: violated and holding cases both covered.
    let model = RolloutModel::build(&RolloutSpec::paper(Topology::test_topology()))
        .expect("valid topology");
    for (p, k, m) in [(1, 2, 1), (0, 0, 1), (1, 1, 1), (2, 1, 1), (2, 0, 3)] {
        let sys = model.pinned(p, k, m);
        let part = check(&sys, &model.property, &partitioned(24));
        let mono = check(&sys, &model.property, &monolithic(24));
        assert_eq!(
            part.holds(),
            mono.holds(),
            "(p={p},k={k},m={m}): partitioned vs monolithic"
        );
        assert_eq!(
            part.violated(),
            mono.violated(),
            "(p={p},k={k},m={m}): partitioned vs monolithic"
        );
        if let (Some(a), Some(b)) = (part.trace(), mono.trace()) {
            assert_eq!(a.len(), b.len(), "(p={p},k={k},m={m}): trace lengths");
        }
    }
}

/// A random small finite system (same shape as the cross-engine suite:
/// a few booleans with latch/flip/free dynamics and one bounded
/// saturating counter).
fn random_system(seed: u64) -> (System, VarId) {
    let mut rng = Prng::seed_from_u64(seed);
    let mut sys = System::new("random");
    let nbools = 1 + rng.gen_index(3);
    let bools: Vec<VarId> = (0..nbools)
        .map(|i| sys.bool_var(&format!("b{i}")))
        .collect();
    let hi = rng.gen_range_i64(2, 5);
    let n = sys.int_var("n", 0, hi);
    for &b in &bools {
        if rng.gen_bool() {
            let positive = rng.gen_bool();
            sys.add_init(if positive {
                Expr::var(b)
            } else {
                Expr::var(b).not()
            });
        }
    }
    sys.add_init(Expr::var(n).eq(Expr::int(0)));
    let guard_bool = bools[rng.gen_index(nbools)];
    sys.add_trans(Expr::next(n).eq(Expr::ite(
        Expr::var(guard_bool).and(Expr::var(n).lt(Expr::int(hi))),
        Expr::var(n).add(Expr::int(1)),
        Expr::var(n),
    )));
    for &b in &bools {
        match rng.gen_index(3) {
            0 => sys.add_trans(Expr::var(b).implies(Expr::next(b))),
            1 => sys.add_trans(Expr::next(b).eq(Expr::var(b).not())),
            _ => {}
        }
    }
    (sys, n)
}

#[test]
fn random_models_agree_partitioned_vs_monolithic() {
    for seed in 0..60u64 {
        let (sys, n) = random_system(seed.wrapping_mul(2654435761));
        let mut rng = Prng::seed_from_u64(seed ^ 0x9e37);
        let p = Expr::var(n).lt(Expr::int(rng.gen_range_i64(1, 4)));
        let part = check(&sys, &p, &partitioned(32));
        let mono = check(&sys, &p, &monolithic(32));
        assert_eq!(part.holds(), mono.holds(), "seed {seed}\n{sys}");
        assert_eq!(part.violated(), mono.violated(), "seed {seed}\n{sys}");
        if let (Some(a), Some(b)) = (part.trace(), mono.trace()) {
            assert_eq!(a.len(), b.len(), "seed {seed}: shortest traces\n{sys}");
        }
    }
}

#[test]
fn certify_survives_partitioning() {
    // Certified verdicts under the partitioned relation: proofs pass the
    // partition re-check plus the SAT re-check, counterexamples replay.
    // No spurious CertificateRejected demotions.
    for seed in 0..25u64 {
        let (sys, n) = random_system(seed.wrapping_mul(48271));
        let p = Expr::var(n).lt(Expr::int(2));
        let plain = check(&sys, &p, &partitioned(32));
        let certified = check(&sys, &p, &partitioned(32).with_certify());
        assert_eq!(plain.holds(), certified.holds(), "seed {seed}\n{sys}");
        assert_eq!(plain.violated(), certified.violated(), "seed {seed}\n{sys}");
        assert!(
            !matches!(
                certified,
                CheckResult::Unknown(UnknownReason::CertificateRejected)
            ),
            "seed {seed}: spurious certificate rejection\n{sys}"
        );
    }
    // And on a holding rollout configuration, where the partition count
    // is real (> 1).
    let model = RolloutModel::build(&RolloutSpec::paper(Topology::test_topology()))
        .expect("valid topology");
    let sys = model.pinned(1, 1, 1);
    let mut stats = Stats::default();
    let r = engine(EngineKind::Bdd)
        .check_invariant(
            &sys,
            &model.property,
            &partitioned(24).with_certify(),
            &mut stats,
        )
        .unwrap();
    assert!(
        r.holds(),
        "rollout (1,1,1) certified under partitioning: {r}"
    );
    assert!(
        stats.bdd.partitions > 1,
        "rollout must exercise a genuinely partitioned relation, got {}",
        stats.bdd.partitions
    );
}

#[test]
fn forced_sift_mid_fixpoint_is_deterministic() {
    // A sift threshold of 1 forces reordering inside every reachability
    // fixpoint. Verdicts and traces must be bit-identical across runs
    // and identical to the sift-free run.
    for seed in [3u64, 11, 17] {
        let (sys, n) = random_system(seed.wrapping_mul(6364136223846793005));
        let p = Expr::var(n).lt(Expr::int(2));
        let sifted = partitioned(32).with_bdd_sift_threshold(1);
        let quiet = partitioned(32).with_bdd_sift(false);
        let a = check(&sys, &p, &sifted);
        let b = check(&sys, &p, &sifted);
        let c = check(&sys, &p, &quiet);
        for (name, other) in [("rerun", &b), ("sift-off", &c)] {
            assert_eq!(a.holds(), other.holds(), "seed {seed} vs {name}\n{sys}");
            assert_eq!(
                a.violated(),
                other.violated(),
                "seed {seed} vs {name}\n{sys}"
            );
        }
        match (a.trace(), b.trace(), c.trace()) {
            (Some(ta), Some(tb), Some(tc)) => {
                assert_eq!(ta.states, tb.states, "seed {seed}: reruns differ\n{sys}");
                assert_eq!(
                    ta.states.len(),
                    tc.states.len(),
                    "seed {seed}: sift changed trace length\n{sys}"
                );
            }
            (None, None, None) => {}
            _ => panic!("seed {seed}: trace presence differs"),
        }
    }
}

#[test]
fn encode_phase_respects_the_wall_clock_timeout() {
    // The monolithic relation for fattree6 grinds inside a single
    // `and_all` where no engine loop can poll the budget; the deadline
    // armed inside the manager must unwind it. (Before that fix this
    // check ran for tens of minutes regardless of the timeout.)
    let model =
        RolloutModel::build(&RolloutSpec::paper(Topology::fat_tree(6))).expect("valid topology");
    let sys = model.pinned(1, 1, 1);
    let start = std::time::Instant::now();
    let r = check(
        &sys,
        &model.property,
        &monolithic(24).with_timeout(std::time::Duration::from_secs(2)),
    );
    let took = start.elapsed();
    if !r.holds() {
        // On fast hosts the check may legitimately finish inside the
        // budget; otherwise the verdict must be a timeout, promptly.
        assert!(
            matches!(r, CheckResult::Unknown(UnknownReason::Timeout)),
            "expected timeout, got {r}"
        );
    }
    assert!(
        took.as_secs() < 30,
        "2s timeout must not take {took:?} to honor"
    );
}

#[test]
fn tiny_node_ceiling_fails_promptly_on_a_large_model() {
    // Memory-safety regression: a node ceiling far below what fattree4
    // needs must produce Unknown(ResourceExhausted) quickly — the
    // poisoned manager unwinds instead of thrashing toward a timeout.
    let model =
        RolloutModel::build(&RolloutSpec::paper(Topology::fat_tree(4))).expect("valid topology");
    let sys = model.pinned(1, 1, 1);
    let start = std::time::Instant::now();
    let r = check(
        &sys,
        &model.property,
        &partitioned(24).with_max_bdd_nodes(2_000),
    );
    let took = start.elapsed();
    assert!(
        matches!(r, CheckResult::Unknown(UnknownReason::ResourceExhausted)),
        "expected resource exhaustion, got {r}"
    );
    assert!(
        took.as_secs() < 30,
        "poisoned run must fail promptly, took {took:?}"
    );
}

#[test]
fn partitioned_stats_report_partitions_and_sifts() {
    let model = RolloutModel::build(&RolloutSpec::paper(Topology::test_topology()))
        .expect("valid topology");
    let sys = model.pinned(1, 1, 1);
    let mut stats = Stats::default();
    let r = engine(EngineKind::Bdd)
        .check_invariant(
            &sys,
            &model.property,
            &partitioned(24).with_bdd_sift_threshold(1),
            &mut stats,
        )
        .unwrap();
    assert!(r.holds(), "{r}");
    assert!(stats.bdd.partitions > 1, "got {}", stats.bdd.partitions);
    assert!(stats.bdd.sifts > 0, "forced threshold must sift");
    assert!(
        stats.bdd.sift_nodes_before >= stats.bdd.sift_nodes_after,
        "sifting must not grow the arena: {} -> {}",
        stats.bdd.sift_nodes_before,
        stats.bdd.sift_nodes_after
    );
    // Monolithic mode reports exactly one partition.
    let mut stats = Stats::default();
    let _ = engine(EngineKind::Bdd)
        .check_invariant(&sys, &model.property, &monolithic(24), &mut stats)
        .unwrap();
    assert_eq!(stats.bdd.partitions, 1, "monolithic is one partition");
}
