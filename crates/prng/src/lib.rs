//! A small, dependency-free, deterministic pseudo-random number
//! generator: xoshiro256** seeded through splitmix64.
//!
//! The container this project builds in has no access to crates.io, so
//! `rand` is not available; this crate provides the subset the workspace
//! actually needs — seeded construction, uniform integer ranges, and
//! Bernoulli draws — with stable output across platforms and releases
//! (the ksim workload generator and the differential test suites all
//! promise "same seed ⇒ same trace").
//!
//! ```
//! use verdict_prng::Prng;
//!
//! let mut a = Prng::seed_from_u64(7);
//! let mut b = Prng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let die = a.gen_range_u64(1, 6);
//! assert!((1..=6).contains(&die));
//! ```

/// xoshiro256** state, seeded via splitmix64.
#[derive(Clone, Debug)]
pub struct Prng {
    s: [u64; 4],
}

/// One splitmix64 step — used to expand a 64-bit seed into generator
/// state that is never all-zero.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Prng {
    /// A generator whose whole stream is a deterministic function of
    /// `seed`.
    pub fn seed_from_u64(seed: u64) -> Prng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Prng { s }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from the **inclusive** range `lo..=hi`.
    ///
    /// Uses rejection sampling (Lemire-style threshold on the low word)
    /// so the distribution is exactly uniform.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "gen_range_u64: empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let bound = span + 1;
        // Rejection sampling on the top bits: unbiased and cheap for the
        // small ranges this workspace draws from.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % bound;
            }
        }
    }

    /// Uniform draw from the inclusive signed range `lo..=hi`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "gen_range_i64: empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128) as u64;
        let off = self.gen_range_u64(0, span);
        (lo as i128 + off as i128) as i64
    }

    /// Uniform draw from the **exclusive** range `0..n` as a `usize`
    /// (the `rng.gen_range(0..len)` indexing idiom).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index: empty range");
        self.gen_range_u64(0, n as u64 - 1) as usize
    }

    /// `true` with probability `percent / 100`.
    pub fn gen_percent(&mut self, percent: u32) -> bool {
        self.gen_range_u64(0, 99) < u64::from(percent)
    }

    /// A uniformly random `bool`.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::seed_from_u64(43);
        assert_ne!(Prng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn known_answer_locks_the_stream() {
        // Lock the exact output so refactors cannot silently change every
        // seeded simulation in the workspace.
        let mut p = Prng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| p.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532
            ]
        );
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_endpoints() {
        let mut p = Prng::seed_from_u64(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = p.gen_range_u64(3, 9);
            assert!((3..=9).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 9;
        }
        assert!(seen_lo && seen_hi);
        for _ in 0..100 {
            let v = p.gen_range_i64(-5, 5);
            assert!((-5..=5).contains(&v));
            let i = p.gen_index(3);
            assert!(i < 3);
        }
    }

    #[test]
    fn degenerate_ranges() {
        let mut p = Prng::seed_from_u64(1);
        assert_eq!(p.gen_range_u64(4, 4), 4);
        assert_eq!(p.gen_range_i64(-2, -2), -2);
        assert!(!p.gen_percent(0));
        assert!(p.gen_percent(100));
    }

    #[test]
    fn rough_uniformity() {
        let mut p = Prng::seed_from_u64(99);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[p.gen_index(10)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} out of range");
        }
    }
}
