//! Self-healing daemon tests: watchdog escalation, worker respawn,
//! panic containment, crash-loop quarantine, hedged re-execution,
//! deadline propagation, idempotent resubmits, and client timeouts.
//!
//! Fault injection is process-global, so every test (even one that
//! installs no faults) serializes on the journal crate's test lock.

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use verdict_journal::fault;
use verdict_journal::json::Json;
use verdict_server::{Client, ClientError, JobSpec, Server, ServerConfig};

/// A model every engine decides instantly.
const TINY: &str = "\
system tiny {
    var n : 0..7;
    init n = 0;
    trans next(n) = if n < 7 then n + 1 else n;
    invariant in_range: n <= 7;
}
";

/// A model the explicit engine grinds on for >30s, but the provers
/// (k-induction, portfolio) decide instantly — the hedging testbed.
const SLOW: &str = "\
system slow {
    var n : 0..20000;
    init n = 0;
    trans next(n) = if n < 20000 then n + 1 else n;
    invariant nonneg: n >= 0;
}
";

struct TestServer {
    socket: PathBuf,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    runner: Option<std::thread::JoinHandle<verdict_server::DrainReport>>,
    _dir: tempdir::TempDir,
}

impl TestServer {
    fn start(configure: impl FnOnce(&mut ServerConfig)) -> TestServer {
        let dir = tempdir::TempDir::new();
        let socket = dir.path.join("verdict.sock");
        let mut cfg = ServerConfig::new(&socket, dir.path.join("wal"));
        cfg.workers = 1;
        cfg.grace = Duration::from_secs(2);
        configure(&mut cfg);
        let (server, _recovery) = Server::open(cfg).expect("server opens");
        let stop = server.stop_flag();
        let runner = std::thread::spawn(move || server.run().expect("server runs"));
        TestServer {
            socket,
            stop,
            runner: Some(runner),
            _dir: dir,
        }
    }

    fn client(&self) -> Client {
        Client::connect_with_retry(&self.socket, Duration::from_secs(5)).expect("client connects")
    }

    fn finish(mut self) -> verdict_server::DrainReport {
        self.stop.store(true, Ordering::Release);
        self.runner.take().unwrap().join().expect("runner joins")
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(r) = self.runner.take() {
            let _ = r.join();
        }
    }
}

/// Minimal self-cleaning tempdir (no external crates allowed).
mod tempdir {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    pub struct TempDir {
        pub path: PathBuf,
    }

    impl TempDir {
        pub fn new() -> TempDir {
            let path = std::env::temp_dir().join(format!(
                "verdict-supervision-test-{}-{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&path).unwrap();
            TempDir { path }
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

fn wait_until_running(client: &mut Client, job: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = client.status(job).expect("status");
        if s.state == "running" {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "job {job} never started running (state {})",
            s.state
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn supervision_counter(client: &mut Client, name: &str) -> i64 {
    let stats = client.stats().expect("stats");
    stats
        .get("supervision")
        .and_then(|s| s.get(name))
        .and_then(Json::as_int)
        .unwrap_or_else(|| panic!("stats missing supervision.{name}"))
}

#[test]
fn watchdog_abandons_hung_worker_and_respawns_the_slot() {
    let _guard = fault::test_lock();
    fault::clear();
    // One worker, tight watchdog, hedging off: a wedged job must be
    // escalated (stop -> poison -> abandon), finalized honestly, and
    // the slot must come back for the next job.
    let server = TestServer::start(|cfg| {
        cfg.workers = 1;
        cfg.watchdog_grace = Duration::from_millis(100);
        cfg.hedge_after = None;
    });
    fault::install(&fault::FaultPlan::parse("server.worker.hang:panic:1").unwrap());
    let mut client = server.client();

    let mut spec = JobSpec::check(TINY);
    spec.deadline_ms = Some(100);
    let hung = client.submit(&spec).expect("submit");
    let started = Instant::now();
    let outcome = client.wait(hung, |_| {}).expect("wait");
    assert_eq!(outcome.state, "done");
    assert_eq!(outcome.verdicts.len(), 1);
    assert_eq!(outcome.verdicts[0].verdict, "unknown");
    assert_eq!(outcome.verdicts[0].reason.as_deref(), Some("hung-worker"));
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "watchdog took {:?} to abandon a wedged worker",
        started.elapsed()
    );

    // The respawned slot serves the next job normally.
    let next = client.submit(&JobSpec::check(TINY)).expect("resubmit");
    let outcome = client.wait(next, |_| {}).expect("wait next");
    assert_eq!(outcome.state, "done");
    assert_eq!(outcome.verdicts[0].verdict, "safe");

    assert!(supervision_counter(&mut client, "escalations") >= 1);
    assert!(supervision_counter(&mut client, "hung_workers") >= 1);
    assert!(supervision_counter(&mut client, "workers_respawned") >= 1);
    fault::clear();
    let report = server.finish();
    // The hung job's verdict was journaled, not lost.
    assert_eq!(report.jobs_completed, 2);
    assert_eq!(report.jobs_abandoned, 0);
}

#[test]
fn worker_panic_is_contained_and_crash_loops_are_quarantined() {
    let _guard = fault::test_lock();
    fault::clear();
    let server = TestServer::start(|cfg| {
        cfg.workers = 1;
        cfg.quarantine_after = 2;
        cfg.hedge_after = None;
    });
    fault::install(
        &fault::FaultPlan::parse("server.worker.panic:panic:1,server.worker.panic:panic:2")
            .unwrap(),
    );
    let mut client = server.client();

    // Two panics of the same spec: each is contained into an honest
    // engine-failure verdict (the daemon survives)…
    for _ in 0..2 {
        let job = client.submit(&JobSpec::check(TINY)).expect("submit");
        let outcome = client.wait(job, |_| {}).expect("wait");
        assert_eq!(outcome.state, "done");
        assert_eq!(outcome.verdicts[0].verdict, "unknown");
        assert_eq!(
            outcome.verdicts[0].reason.as_deref(),
            Some("engine-failure")
        );
        assert!(
            outcome.verdicts[0].detail.contains("panicked"),
            "detail should name the panic: {}",
            outcome.verdicts[0].detail
        );
    }

    // …and the second one arms the circuit breaker.
    let fp = match client.submit(&JobSpec::check(TINY)) {
        Err(ClientError::Rejected(r)) => {
            assert_eq!(r.reason, "quarantined");
            assert!(r.retry_after_ms.is_some());
            r.fingerprint.expect("quarantined rejection carries the fp")
        }
        other => panic!("expected quarantined rejection, got {other:?}"),
    };
    assert!(supervision_counter(&mut client, "quarantined") >= 1);
    assert!(supervision_counter(&mut client, "quarantine_hits") >= 1);

    // Lifting it (faults exhausted) lets the spec run clean again.
    assert!(client.unquarantine(&fp).expect("unquarantine"), "was armed");
    assert!(
        !client.unquarantine(&fp).expect("second lift"),
        "idempotent"
    );
    let job = client.submit(&JobSpec::check(TINY)).expect("submit clean");
    let outcome = client.wait(job, |_| {}).expect("wait clean");
    assert_eq!(outcome.verdicts[0].verdict, "safe");
    fault::clear();
    server.finish();
}

#[test]
fn hedged_reexecution_wins_without_changing_the_verdict() {
    let _guard = fault::test_lock();
    fault::clear();
    let server = TestServer::start(|cfg| {
        cfg.workers = 2;
        cfg.hedge_after = Some(Duration::from_millis(50));
    });
    let mut client = server.client();

    // The explicit engine grinds on SLOW for >30s; the hedge races a
    // portfolio run that proves `nonneg` immediately. The job must
    // return the same verdict an unhedged run would eventually reach
    // (the invariant genuinely holds), just much sooner — with
    // certification on, so hedged verdicts stay independently checked.
    let mut spec = JobSpec::check(SLOW);
    spec.engine = "explicit".into();
    spec.certify = true;
    let job = client.submit(&spec).expect("submit");
    let started = Instant::now();
    let outcome = client.wait(job, |_| {}).expect("wait");
    assert_eq!(outcome.state, "done");
    assert_eq!(outcome.verdicts[0].verdict, "safe");
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "hedge never rescued the slow primary ({:?})",
        started.elapsed()
    );
    assert!(supervision_counter(&mut client, "hedges_launched") >= 1);
    assert!(supervision_counter(&mut client, "hedges_won") >= 1);
    server.finish();
}

#[test]
fn deadline_counts_queue_wait() {
    let _guard = fault::test_lock();
    fault::clear();
    let server = TestServer::start(|cfg| {
        cfg.workers = 1;
        cfg.hedge_after = None;
    });
    let mut client = server.client();

    // Occupy the only worker…
    let mut blocker = JobSpec::check(SLOW);
    blocker.engine = "explicit".into();
    blocker.deadline_ms = Some(60_000);
    let blocker_id = client.submit(&blocker).expect("blocker");
    wait_until_running(&mut client, blocker_id);

    // …so this job's whole 200ms budget burns in the queue.
    let mut starved = JobSpec::check(TINY);
    starved.deadline_ms = Some(200);
    let starved_id = client.submit(&starved).expect("starved");
    std::thread::sleep(Duration::from_millis(400));
    client.cancel(blocker_id).expect("cancel blocker");

    let outcome = client.wait(starved_id, |_| {}).expect("wait starved");
    assert_eq!(outcome.state, "done");
    assert_eq!(outcome.verdicts[0].verdict, "unknown");
    assert_eq!(outcome.verdicts[0].reason.as_deref(), Some("timeout"));
    assert!(
        outcome.verdicts[0].detail.contains("queued"),
        "detail should say the deadline expired in the queue: {}",
        outcome.verdicts[0].detail
    );
    server.finish();
}

#[test]
fn idempotency_key_deduplicates_resubmits() {
    let _guard = fault::test_lock();
    fault::clear();
    let server = TestServer::start(|cfg| {
        cfg.hedge_after = None;
    });
    let mut client = server.client();

    let mut spec = JobSpec::check(TINY);
    spec.idem = Some("retry-key-1".into());
    let first = client.submit(&spec).expect("first");
    let replay = client.submit(&spec).expect("replay");
    assert_eq!(first, replay, "same key must map to the same job");

    let mut other = spec.clone();
    other.idem = Some("retry-key-2".into());
    let second = client.submit(&other).expect("second");
    assert_ne!(first, second, "a fresh key admits a fresh job");

    // submit_resilient pins a generated key — safe to call on a healthy
    // connection too.
    let resilient = client
        .submit_resilient(&JobSpec::check(TINY), Duration::from_secs(5))
        .expect("resilient");
    let outcome = client.wait(resilient, |_| {}).expect("wait");
    assert_eq!(outcome.verdicts[0].verdict, "safe");
    server.finish();
}

#[test]
fn drain_with_hung_worker_escalates_and_requeues_without_journaling() {
    let _guard = fault::test_lock();
    fault::clear();
    let dir = tempdir::TempDir::new();
    let wal_dir = dir.path.join("wal");
    let socket_a = dir.path.join("a.sock");
    let socket_b = dir.path.join("b.sock");

    // Life 1: wedge the only worker on a job with no deadline, then
    // drain. The watchdog (not the full grace budget) must unstick the
    // exit, and the hung job must NOT get a done record.
    {
        let mut cfg = ServerConfig::new(&socket_a, &wal_dir);
        cfg.workers = 1;
        cfg.grace = Duration::from_millis(300);
        cfg.watchdog_grace = Duration::from_millis(100);
        cfg.hedge_after = None;
        let (server, _) = Server::open(cfg).expect("open");
        let stop = server.stop_flag();
        let runner = std::thread::spawn(move || server.run().expect("run"));
        fault::install(&fault::FaultPlan::parse("server.worker.hang:panic:1").unwrap());
        let mut client =
            Client::connect_with_retry(&socket_a, Duration::from_secs(5)).expect("connect");
        let job = client.submit(&JobSpec::check(TINY)).expect("submit");
        wait_until_running(&mut client, job);

        let begun = Instant::now();
        stop.store(true, Ordering::Release);
        let report = runner.join().expect("drain completes");
        fault::clear();
        assert!(
            begun.elapsed() < Duration::from_secs(10),
            "drain with a wedged worker took {:?}",
            begun.elapsed()
        );
        assert_eq!(report.jobs_completed, 0);
        assert_eq!(report.jobs_abandoned, 1);
    }

    // Life 2: the hung job re-enters the queue from its submit record
    // (requeued, not trusted) and completes clean without the fault.
    let mut cfg = ServerConfig::new(&socket_b, &wal_dir);
    cfg.workers = 1;
    cfg.grace = Duration::from_millis(300);
    let (server, recovery) = Server::open(cfg).expect("reopen");
    assert_eq!(recovery.jobs_requeued, 1);
    assert_eq!(recovery.jobs_trusted, 0);
    let stop = server.stop_flag();
    let runner = std::thread::spawn(move || server.run().expect("run"));
    let mut client =
        Client::connect_with_retry(&socket_b, Duration::from_secs(5)).expect("connect");
    let outcome = client.wait(1, |_| {}).expect("wait recovered job");
    assert_eq!(outcome.state, "done");
    assert_eq!(outcome.verdicts[0].verdict, "safe");
    stop.store(true, Ordering::Release);
    runner.join().expect("drain");
}

#[test]
fn client_read_timeout_is_structured() {
    let _guard = fault::test_lock();
    fault::clear();
    // A listener that accepts and then never answers: the client must
    // surface a structured Timeout, not block forever.
    let dir = tempdir::TempDir::new();
    let socket = dir.path.join("mute.sock");
    let listener = std::os::unix::net::UnixListener::bind(&socket).expect("bind");
    let sink = std::thread::spawn(move || {
        let mut held = Vec::new();
        for stream in listener.incoming() {
            match stream {
                Ok(s) => held.push(s),
                Err(_) => return,
            }
        }
    });

    let mut client = Client::connect(&socket).expect("connect");
    client
        .set_io_timeout(Some(Duration::from_millis(150)))
        .expect("set timeout");
    let started = Instant::now();
    match client.ping() {
        Err(ClientError::Timeout(_)) => {}
        other => panic!("expected ClientError::Timeout, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "timeout took {:?}",
        started.elapsed()
    );
    drop(client);
    let _ = std::fs::remove_file(&socket);
    drop(sink);
}

#[test]
fn keepalives_carry_long_waits_past_the_socket_timeout() {
    let _guard = fault::test_lock();
    fault::clear();
    let server = TestServer::start(|cfg| {
        cfg.workers = 1;
        cfg.hedge_after = None;
    });
    let mut client = server.client();
    // Job runs ~3s with no trace output near the end; the client reads
    // with a 2s timeout. Only the server's keepalive lines make this
    // wait survive.
    let mut spec = JobSpec::check(SLOW);
    spec.engine = "explicit".into();
    spec.deadline_ms = Some(3_000);
    let job = client.submit(&spec).expect("submit");
    client
        .set_io_timeout(Some(Duration::from_secs(2)))
        .expect("set timeout");
    let outcome = client.wait(job, |_| {}).expect("wait rides keepalives");
    assert_eq!(outcome.state, "done");
    assert_eq!(outcome.verdicts[0].reason.as_deref(), Some("timeout"));
    server.finish();
}
