//! In-process daemon tests: admission control, cancellation, drain, and
//! crash-recovery semantics — everything short of actually SIGKILLing a
//! process (the CLI integration test covers that).

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use verdict_server::{Client, ClientError, JobSpec, Server, ServerConfig};

/// A model every engine decides instantly.
const TINY: &str = "\
system tiny {
    var n : 0..7;
    init n = 0;
    trans next(n) = if n < 7 then n + 1 else n;
    invariant in_range: n <= 7;
}
";

/// A model the explicit engine grinds on for >30s (it rescans the full
/// domain per visited state), but abandons within ~10ms on a cancel or
/// deadline — calibrated so tests never hang on a missed stop flag.
const SLOW: &str = "\
system slow {
    var n : 0..20000;
    init n = 0;
    trans next(n) = if n < 20000 then n + 1 else n;
    invariant nonneg: n >= 0;
}
";

struct TestServer {
    socket: PathBuf,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    runner: Option<std::thread::JoinHandle<verdict_server::DrainReport>>,
    _dir: tempdir::TempDir,
}

impl TestServer {
    /// Starts a daemon on fresh socket/WAL paths inside a tempdir.
    fn start(configure: impl FnOnce(&mut ServerConfig)) -> TestServer {
        let dir = tempdir::TempDir::new();
        let socket = dir.path.join("verdict.sock");
        let mut cfg = ServerConfig::new(&socket, dir.path.join("wal"));
        cfg.workers = 1;
        cfg.grace = Duration::from_secs(2);
        configure(&mut cfg);
        let (server, _recovery) = Server::open(cfg).expect("server opens");
        let stop = server.stop_flag();
        let runner = std::thread::spawn(move || server.run().expect("server runs"));
        TestServer {
            socket,
            stop,
            runner: Some(runner),
            _dir: dir,
        }
    }

    fn client(&self) -> Client {
        Client::connect_with_retry(&self.socket, Duration::from_secs(5)).expect("client connects")
    }

    fn finish(mut self) -> verdict_server::DrainReport {
        self.stop.store(true, Ordering::Release);
        self.runner.take().unwrap().join().expect("runner joins")
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(r) = self.runner.take() {
            let _ = r.join();
        }
    }
}

/// Minimal self-cleaning tempdir (no external crates allowed).
mod tempdir {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    pub struct TempDir {
        pub path: PathBuf,
    }

    impl TempDir {
        pub fn new() -> TempDir {
            let path = std::env::temp_dir().join(format!(
                "verdict-daemon-test-{}-{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&path).unwrap();
            TempDir { path }
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

fn wait_until_running(client: &mut Client, job: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = client.status(job).expect("status");
        if s.state == "running" {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "job {job} never started running (state {})",
            s.state
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn check_job_round_trip_with_events() {
    let server = TestServer::start(|_| {});
    let mut client = server.client();
    client.ping().expect("ping");

    let job = client.submit(&JobSpec::check(TINY)).expect("submit");
    let mut events = Vec::new();
    let outcome = client.wait(job, |ev| events.push(ev.to_string())).unwrap();
    assert_eq!(outcome.state, "done");
    assert!(!outcome.recovered);
    assert_eq!(outcome.verdicts.len(), 1);
    assert_eq!(outcome.verdicts[0].name, "in_range");
    assert_eq!(outcome.verdicts[0].verdict, "safe");
    // The stream carries PR-5 trace JSONL: span/depth events with the
    // engine tag.
    assert!(
        events
            .iter()
            .any(|e| e.contains("\"kind\"") && e.contains("\"engine\"")),
        "no trace events streamed: {events:?}"
    );

    let stats = client.stats().expect("stats");
    let server_group = stats
        .get("server")
        .cloned()
        .expect("stats has a server counter group");
    assert_eq!(
        server_group
            .get("jobs_completed")
            .and_then(verdict_journal::json::Json::as_int),
        Some(1)
    );
    assert!(
        server_group
            .get("wal_fsyncs")
            .and_then(verdict_journal::json::Json::as_int)
            .unwrap_or(0)
            > 0
    );

    let report = server.finish();
    assert_eq!(report.jobs_completed, 1);
    assert_eq!(report.jobs_abandoned, 0);
}

#[test]
fn bad_jobs_rejected_before_journaling() {
    let server = TestServer::start(|_| {});
    let mut client = server.client();

    let reason = |r: Result<u64, ClientError>| match r {
        Err(ClientError::Rejected(rej)) => rej.reason,
        other => panic!("expected rejection, got {other:?}"),
    };
    assert_eq!(
        reason(client.submit(&JobSpec::check("not a model"))),
        "parse-error"
    );
    let mut spec = JobSpec::check(TINY);
    spec.engine = "warp-drive".into();
    assert_eq!(reason(client.submit(&spec)), "bad-request");
    let mut spec = JobSpec::check(TINY);
    spec.prop = Some("no_such_prop".into());
    assert_eq!(reason(client.submit(&spec)), "bad-request");
    assert_eq!(
        reason(client.submit(&JobSpec::synth(TINY, &["ghost"]))),
        "bad-request"
    );

    // Nothing was journaled, so nothing recovers.
    let stats = client.stats().expect("stats");
    let rejected = stats
        .get("server")
        .and_then(|s| s.get("jobs_rejected"))
        .and_then(verdict_journal::json::Json::as_int);
    assert_eq!(rejected, Some(4));
    server.finish();
}

#[test]
fn full_queue_rejects_with_structured_reason() {
    let server = TestServer::start(|cfg| {
        cfg.workers = 1;
        cfg.queue_capacity = 2;
    });
    let mut client = server.client();

    // Occupy the single worker so later submits stay queued.
    let mut slow = JobSpec::check(SLOW);
    slow.engine = "explicit".into();
    slow.deadline_ms = Some(60_000);
    let blocker = client.submit(&slow).expect("blocker admitted");
    wait_until_running(&mut client, blocker);

    let a = client.submit(&JobSpec::check(TINY)).expect("fits");
    let _b = client.submit(&JobSpec::check(TINY)).expect("fits");
    match client.submit(&JobSpec::check(TINY)) {
        Err(ClientError::Rejected(rej)) => {
            assert_eq!(rej.reason, "queue-full");
            assert_eq!(rej.queued, Some(2));
            assert_eq!(rej.capacity, Some(2));
        }
        other => panic!("expected queue-full, got {other:?}"),
    }

    // Cancel the blocker; the queued jobs then complete normally.
    client.cancel(blocker).expect("cancel");
    let outcome = client.wait(blocker, |_| {}).expect("wait blocker");
    assert_eq!(outcome.state, "cancelled");
    let outcome = client.wait(a, |_| {}).expect("wait queued");
    assert_eq!(outcome.state, "done");
    assert_eq!(outcome.verdicts[0].verdict, "safe");
    server.finish();
}

#[test]
fn cancel_running_job_is_prompt_and_durable() {
    let server = TestServer::start(|_| {});
    let mut client = server.client();
    let mut slow = JobSpec::check(SLOW);
    slow.engine = "explicit".into();
    slow.deadline_ms = Some(60_000);
    let job = client.submit(&slow).expect("submit");
    wait_until_running(&mut client, job);

    let started = Instant::now();
    client.cancel(job).expect("cancel");
    let outcome = client.wait(job, |_| {}).expect("wait");
    assert_eq!(outcome.state, "cancelled");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "cancellation took {:?}",
        started.elapsed()
    );
    server.finish();
}

#[test]
fn deadline_expires_to_unknown_timeout() {
    let server = TestServer::start(|_| {});
    let mut client = server.client();
    let mut slow = JobSpec::check(SLOW);
    slow.engine = "explicit".into();
    slow.deadline_ms = Some(300);
    let job = client.submit(&slow).expect("submit");
    let outcome = client.wait(job, |_| {}).expect("wait");
    assert_eq!(outcome.state, "done");
    assert_eq!(outcome.verdicts[0].verdict, "unknown");
    assert_eq!(outcome.verdicts[0].reason.as_deref(), Some("timeout"));
    server.finish();
}

#[test]
fn shutdown_drains_and_rejects_new_submits() {
    let server = TestServer::start(|cfg| {
        cfg.grace = Duration::from_secs(5);
    });
    let mut client = server.client();
    let mut slow = JobSpec::check(SLOW);
    slow.engine = "explicit".into();
    slow.deadline_ms = Some(60_000);
    let job = client.submit(&slow).expect("submit");
    wait_until_running(&mut client, job);

    client.shutdown().expect("shutdown acked");
    match client.submit(&JobSpec::check(TINY)) {
        Err(ClientError::Rejected(rej)) => assert_eq!(rej.reason, "draining"),
        other => panic!("expected draining rejection, got {other:?}"),
    }
    let report = server.finish();
    // The running job was stopped by the drain, not completed.
    assert_eq!(report.jobs_completed, 0);
    assert_eq!(report.jobs_abandoned, 1);
}

#[test]
fn restart_trusts_decided_verdicts_and_reruns_the_rest() {
    let dir = tempdir::TempDir::new();
    let wal_dir = dir.path.join("wal");
    let socket_a = dir.path.join("a.sock");
    let socket_b = dir.path.join("b.sock");

    // Life 1: complete one decided job, leave one cancelled-by-drain.
    let (decided_job, decided_rows) = {
        let mut cfg = ServerConfig::new(&socket_a, &wal_dir);
        cfg.workers = 1;
        cfg.grace = Duration::from_millis(200);
        let (server, recovery) = Server::open(cfg).expect("open");
        assert_eq!(recovery.jobs_requeued + recovery.jobs_trusted, 0);
        let stop = server.stop_flag();
        let runner = std::thread::spawn(move || server.run().unwrap());
        let mut client =
            Client::connect_with_retry(&socket_a, Duration::from_secs(5)).expect("connect");
        let done = client.submit(&JobSpec::check(TINY)).expect("submit");
        let outcome = client.wait(done, |_| {}).expect("wait");
        assert_eq!(outcome.state, "done");
        let mut slow = JobSpec::check(SLOW);
        slow.engine = "explicit".into();
        slow.deadline_ms = Some(60_000);
        let interrupted = client.submit(&slow).expect("submit slow");
        let deadline = Instant::now() + Duration::from_secs(10);
        while client.status(interrupted).unwrap().state != "running" {
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(20));
        }
        stop.store(true, Ordering::Release);
        runner.join().unwrap();
        (done, outcome.verdicts)
    };

    // Life 2: decided verdicts come back as recovered, the interrupted
    // job re-enters the queue and runs again.
    let mut cfg = ServerConfig::new(&socket_b, &wal_dir);
    cfg.workers = 1;
    cfg.grace = Duration::from_millis(200);
    let (server, recovery) = Server::open(cfg).expect("reopen");
    assert_eq!(recovery.jobs_trusted, 1);
    assert_eq!(recovery.jobs_requeued, 1);
    let stop = server.stop_flag();
    let runner = std::thread::spawn(move || server.run().unwrap());
    let mut client =
        Client::connect_with_retry(&socket_b, Duration::from_secs(5)).expect("connect");
    let outcome = client.status(decided_job).expect("status");
    assert_eq!(outcome.state, "done");
    assert!(outcome.recovered, "decided job must be trusted, not re-run");
    assert_eq!(outcome.verdicts, decided_rows);
    // The re-queued job is present and either queued/running again or
    // already finished — but never falsely "done with decided rows".
    let requeued = client.status(decided_job + 1).expect("status requeued");
    assert!(!requeued.recovered || requeued.state != "done");
    stop.store(true, Ordering::Release);
    runner.join().unwrap();
}

#[test]
fn cancel_survives_restart() {
    let dir = tempdir::TempDir::new();
    let wal_dir = dir.path.join("wal");
    let socket_a = dir.path.join("a.sock");
    let socket_b = dir.path.join("b.sock");

    let job = {
        let mut cfg = ServerConfig::new(&socket_a, &wal_dir);
        cfg.workers = 1;
        cfg.grace = Duration::from_millis(200);
        let (server, _) = Server::open(cfg).expect("open");
        let stop = server.stop_flag();
        let runner = std::thread::spawn(move || server.run().unwrap());
        let mut client =
            Client::connect_with_retry(&socket_a, Duration::from_secs(5)).expect("connect");
        let mut slow = JobSpec::check(SLOW);
        slow.engine = "explicit".into();
        slow.deadline_ms = Some(60_000);
        let job = client.submit(&slow).expect("submit");
        client.cancel(job).expect("cancel");
        let outcome = client.wait(job, |_| {}).expect("wait");
        assert_eq!(outcome.state, "cancelled");
        stop.store(true, Ordering::Release);
        runner.join().unwrap();
        job
    };

    let mut cfg = ServerConfig::new(&socket_b, &wal_dir);
    cfg.workers = 1;
    let (server, recovery) = Server::open(cfg).expect("reopen");
    assert_eq!(recovery.jobs_cancelled, 1);
    assert_eq!(recovery.jobs_requeued, 0);
    let stop = server.stop_flag();
    let runner = std::thread::spawn(move || server.run().unwrap());
    let mut client =
        Client::connect_with_retry(&socket_b, Duration::from_secs(5)).expect("connect");
    let outcome = client.status(job).expect("status");
    assert_eq!(outcome.state, "cancelled");
    stop.store(true, Ordering::Release);
    runner.join().unwrap();
}

#[test]
fn stale_socket_is_reclaimed_but_live_daemon_is_not() {
    let dir = tempdir::TempDir::new();
    let socket = dir.path.join("verdict.sock");

    // A dead daemon's leftover socket file must not block restart.
    std::fs::write(&socket, b"").unwrap();
    let mut cfg = ServerConfig::new(&socket, dir.path.join("wal"));
    cfg.workers = 1;
    let (server, _) = Server::open(cfg.clone()).expect("stale socket reclaimed");
    let stop = server.stop_flag();
    let runner = std::thread::spawn(move || server.run().unwrap());
    let mut client = Client::connect_with_retry(&socket, Duration::from_secs(5)).expect("connect");
    client.ping().expect("ping");

    // A live daemon must not be usurped.
    cfg.wal_dir = dir.path.join("wal2");
    match Server::open(cfg) {
        Err(verdict_server::ServerError::SocketBusy(_)) => {}
        other => panic!("expected SocketBusy, got {other:?}"),
    }
    stop.store(true, Ordering::Release);
    runner.join().unwrap();
}
