//! Verdict-as-a-service: a crash-safe, self-healing verification daemon.
//!
//! The paper pitches verification as *infrastructure* — a standing
//! service operators query continuously, not a one-shot CLI. This crate
//! is that daemon. It accepts `check`/`synth` jobs over a local
//! Unix-socket JSONL API ([`proto`]), schedules them across a bounded
//! worker fleet, and streams per-job progress using the `--trace` JSONL
//! event format as the wire format.
//!
//! The robustness surface is the point:
//!
//! * **Durability.** Every admitted job is written to a group-commit
//!   write-ahead log ([`verdict_journal::wal`]) *before* the submit is
//!   acknowledged — an acked job survives `SIGKILL` at any byte
//!   boundary. Completion writes a `done` record with the full verdict
//!   map; on restart, decided verdicts are trusted (the PR-4 re-gating
//!   policy — the WAL pins the exact model source, so a `done` record
//!   provably describes the same input) and everything else re-runs.
//! * **Admission control.** The queue is bounded. A full queue, a
//!   draining server, an unparseable model, or a quarantined spec
//!   rejects with a structured reason ([`proto::Rejection`]) — never
//!   unbounded growth, never a silent hang.
//! * **Supervision.** A watchdog thread reads per-worker heartbeats
//!   (stamped by the engines' budget polls) and per-job deadlines. A
//!   job past `deadline + watchdog_grace` — or a worker whose heartbeat
//!   has gone stale — is escalated through a ladder: cooperative stop
//!   flag, then solver poisoning (the next budget poll returns
//!   `Unknown(HungWorker)`), then thread abandonment with a fresh
//!   worker respawned into the slot. The hung job's honest
//!   `unknown/hung-worker` verdict is journaled; the service keeps its
//!   full fleet.
//! * **Hedged re-execution.** A job running well past its spec's
//!   historical p99 gets a speculative second run on a spare worker
//!   with a different engine; the first finished verdict wins and the
//!   loser is cancelled. Hedging never changes verdicts — an undecided
//!   hedge result defers to a still-live primary.
//! * **Crash-loop quarantine.** A spec fingerprint that crashes or
//!   hangs workers N times consecutively is circuit-broken: further
//!   submits reject with `quarantined` (carrying the fingerprint and a
//!   TTL) instead of wedging the fleet again. The `unquarantine` op
//!   lifts it early; quarantine state is journaled and survives
//!   restart.
//! * **Deadlines and cancellation.** Per-job wall-clock deadlines count
//!   from *admission* (queue wait is charged), and `cancel` routes into
//!   the engines' cooperative stop-flag plumbing; a cancel is journaled
//!   so it survives restart too.
//! * **Graceful drain.** SIGTERM/SIGINT (or the `shutdown` op) stops
//!   admission, lets running jobs finish within a grace period, then
//!   raises their stop flags; a worker that ignores the flag is
//!   escalated by the watchdog rather than stalling the exit. Queued
//!   and wedged jobs are already journaled and re-run on the next
//!   start. The daemon exits 0.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read as _, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use verdict_journal::json::Json;
use verdict_journal::wal::{Wal, WalError, WalOptions, WalRecovery, WriterPool};
use verdict_mc::{
    ServerCounters, Stats, Supervision, SupervisionCounters, TraceSink, UnknownReason,
};
use verdict_ring::Heartbeat;

mod client;
pub mod proto;

pub use client::{Client, ClientError, JobOutcome};
pub use proto::{JobKind, JobSpec, Rejection, Request, VerdictRow};

/// How the daemon is wired: socket path, WAL directory, fleet size,
/// admission-queue capacity, and the supervision knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Unix socket path to listen on.
    pub socket: PathBuf,
    /// Directory for the write-ahead log's segment files.
    pub wal_dir: PathBuf,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Maximum jobs waiting in the admission queue; submits beyond this
    /// are rejected with `queue-full`.
    pub queue_capacity: usize,
    /// WAL segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// How long a drain waits for running jobs before raising their
    /// stop flags.
    pub grace: Duration,
    /// Watchdog patience: a job is hung once it runs past
    /// `deadline + watchdog_grace`, and each escalation step (stop →
    /// poison → abandon) waits this long before the next.
    pub watchdog_grace: Duration,
    /// A worker whose heartbeat hasn't advanced for this long is
    /// treated as hung even without a deadline. Generous by default:
    /// solver inner loops poll stop flags without stamping heartbeats,
    /// so staleness is the backstop, deadline overrun the primary
    /// detector.
    pub heartbeat_timeout: Duration,
    /// Base hedging threshold: a job running longer than this (or than
    /// twice its spec's observed p99, once enough history exists) gets
    /// a speculative second run on a spare worker. `None` disables
    /// hedging.
    pub hedge_after: Option<Duration>,
    /// Consecutive crashes/hangs of one spec fingerprint before it is
    /// quarantined. `0` disables the circuit breaker.
    pub quarantine_after: u32,
    /// How long a quarantine holds before submits are admitted again.
    pub quarantine_ttl: Duration,
}

impl ServerConfig {
    /// A config with defaults for everything but the two paths.
    pub fn new(socket: impl Into<PathBuf>, wal_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            socket: socket.into(),
            wal_dir: wal_dir.into(),
            workers: 2,
            queue_capacity: 64,
            segment_bytes: 4 << 20,
            grace: Duration::from_secs(10),
            watchdog_grace: Duration::from_secs(2),
            heartbeat_timeout: Duration::from_secs(120),
            hedge_after: Some(Duration::from_secs(2)),
            quarantine_after: 3,
            quarantine_ttl: Duration::from_secs(300),
        }
    }
}

/// Errors from opening or running the daemon.
#[derive(Debug)]
pub enum ServerError {
    /// Underlying socket/filesystem failure.
    Io(io::Error),
    /// The write-ahead log failed.
    Wal(WalError),
    /// Another live daemon already owns the socket.
    SocketBusy(PathBuf),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "server i/o error: {e}"),
            ServerError::Wal(e) => write!(f, "server wal error: {e}"),
            ServerError::SocketBusy(p) => write!(
                f,
                "another daemon is already serving on {} (connect to it, or stop it first)",
                p.display()
            ),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> ServerError {
        ServerError::Io(e)
    }
}

impl From<WalError> for ServerError {
    fn from(e: WalError) -> ServerError {
        ServerError::Wal(e)
    }
}

/// What [`Server::open`] recovered from the WAL.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// WAL scan details (segments, torn-tail truncation).
    pub wal: WalRecovery,
    /// Jobs re-enqueued because they were admitted but not finished (or
    /// finished with undecided verdicts).
    pub jobs_requeued: u64,
    /// Jobs whose decided verdict maps were trusted and re-reported.
    pub jobs_trusted: u64,
    /// Jobs that were durably cancelled.
    pub jobs_cancelled: u64,
}

/// What a completed drain looked like.
#[derive(Clone, Debug, Default)]
pub struct DrainReport {
    /// Jobs that finished during this server's lifetime.
    pub jobs_completed: u64,
    /// Jobs still queued or stopped mid-run at exit; all are journaled
    /// and re-run on the next start.
    pub jobs_abandoned: u64,
    /// Final WAL counters.
    pub wal: verdict_journal::wal::WalStats,
}

/// Job lifecycle phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobPhase {
    Queued,
    Running,
    Done,
    Cancelled,
}

impl JobPhase {
    fn tag(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Cancelled => "cancelled",
        }
    }
}

/// Mutable job state, guarded by the job's mutex.
struct JobState {
    phase: JobPhase,
    /// PR-5 trace JSONL lines, appended live while the job runs.
    events: Vec<String>,
    verdicts: Vec<VerdictRow>,
    /// True when the verdicts were recovered from the WAL, not computed
    /// by this process.
    recovered: bool,
}

/// One job: immutable spec plus guarded state. A job can have several
/// executions alive at once (primary plus hedge, or a zombie plus its
/// replacement), so stop flags live per-execution and are collected
/// here for cancel/drain to raise; `finalized` is the swap-once gate
/// ensuring exactly one execution's outcome is journaled.
struct Job {
    id: u64,
    spec: JobSpec,
    /// Spec fingerprint ([`JobSpec::fingerprint`]) — quarantine and
    /// hedge-latency key.
    fp: u64,
    /// Stop flags of every execution ever started for this job.
    stops: Mutex<Vec<Arc<AtomicBool>>>,
    /// Set by the `cancel` op (as opposed to a drain or the watchdog
    /// raising stop flags).
    cancel_requested: AtomicBool,
    /// Swap-once outcome gate: the execution (or watchdog) that flips
    /// this owns the WAL `done` record and the terminal phase.
    finalized: AtomicBool,
    /// Set once a hedge has been launched — at most one per job.
    hedged: AtomicBool,
    /// When the job entered the queue; deadlines count from here.
    enqueued_at: Mutex<Instant>,
    state: Mutex<JobState>,
    cv: Condvar,
}

impl Job {
    fn new(id: u64, spec: JobSpec) -> Arc<Job> {
        let fp = spec.fingerprint();
        Arc::new(Job {
            id,
            spec,
            fp,
            stops: Mutex::new(Vec::new()),
            cancel_requested: AtomicBool::new(false),
            finalized: AtomicBool::new(false),
            hedged: AtomicBool::new(false),
            enqueued_at: Mutex::new(Instant::now()),
            state: Mutex::new(JobState {
                phase: JobPhase::Queued,
                events: Vec::new(),
                verdicts: Vec::new(),
                recovered: false,
            }),
            cv: Condvar::new(),
        })
    }

    fn set_phase(&self, phase: JobPhase, verdicts: Vec<VerdictRow>, recovered: bool) {
        let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        g.phase = phase;
        g.verdicts = verdicts;
        g.recovered = recovered;
        self.cv.notify_all();
    }

    /// Raises the stop flag of every execution of this job.
    fn raise_stops(&self) {
        let stops = self.stops.lock().unwrap_or_else(|e| e.into_inner());
        for s in stops.iter() {
            s.store(true, Ordering::Release);
        }
    }

    /// The job's absolute deadline, if the spec set one. Counted from
    /// admission: queue wait is charged against it.
    fn deadline(&self) -> Option<Instant> {
        let enq = *self.enqueued_at.lock().unwrap_or_else(|e| e.into_inner());
        self.spec
            .deadline_ms
            .map(|ms| enq + Duration::from_millis(ms))
    }
}

/// A worker slot: a stable index in the fleet whose thread can be
/// replaced. The heartbeat cell is shared with whatever execution the
/// slot's thread is running (stamped on every engine budget poll); the
/// generation bumps when the watchdog abandons the thread, telling the
/// old thread — should it ever wake — that it has been replaced.
struct Slot {
    heartbeat: Arc<Heartbeat>,
    generation: AtomicU64,
    handle: Mutex<Option<JoinHandle<()>>>,
}

/// One attempt at running a job: the primary worker run, a hedge, or a
/// respawned retry all get their own `Execution` with their own stop
/// flag and supervision handle. The watchdog walks these.
struct Execution {
    job: Arc<Job>,
    /// The worker slot running this, or `None` for a hedge thread.
    slot: Option<usize>,
    /// Engine tag overriding the spec's (hedges run a different engine).
    engine_override: Option<String>,
    is_hedge: bool,
    stop: Arc<AtomicBool>,
    sup: Arc<Supervision>,
    started: Instant,
    /// Absolute deadline (admission time + `deadline_ms`), if any.
    deadline: Option<Instant>,
    /// Watchdog escalation ladder position: 0 = healthy, 1 = stop flag
    /// raised, 2 = poisoned, 3 = abandoned.
    escalation: AtomicU8,
    escalated_at: Mutex<Instant>,
    /// Last heartbeat count the watchdog observed, and when it last
    /// changed — staleness detection by *change*, not by absolute rate.
    last_beat: AtomicU64,
    last_beat_change: Mutex<Instant>,
    /// Set when the watchdog gave up on this execution's thread.
    abandoned: AtomicBool,
    /// Set exactly once when the execution is finished with (normally
    /// or by abandonment); retiring decrements the running count.
    retired: AtomicBool,
}

impl Execution {
    fn new(
        job: Arc<Job>,
        slot: Option<usize>,
        heartbeat: Arc<Heartbeat>,
        engine_override: Option<String>,
        is_hedge: bool,
    ) -> Arc<Execution> {
        let now = Instant::now();
        let deadline = job.deadline();
        let stop = Arc::new(AtomicBool::new(false));
        job.stops
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&stop));
        let hb0 = heartbeat.count();
        Arc::new(Execution {
            job,
            slot,
            engine_override,
            is_hedge,
            stop,
            sup: Arc::new(Supervision::new(heartbeat)),
            started: now,
            deadline,
            escalation: AtomicU8::new(0),
            escalated_at: Mutex::new(now),
            last_beat: AtomicU64::new(hb0),
            last_beat_change: Mutex::new(now),
            abandoned: AtomicBool::new(false),
            retired: AtomicBool::new(false),
        })
    }
}

/// Everything the supervisor thread walks: the worker slots, the live
/// execution list, and the thread handles it has given up on.
struct SupervisorState {
    slots: Vec<Arc<Slot>>,
    runs: Mutex<Vec<Arc<Execution>>>,
    /// Handles of abandoned worker threads — joined at drain if they
    /// ever finish, detached otherwise.
    orphans: Mutex<Vec<JoinHandle<()>>>,
    hedge_handles: Mutex<Vec<JoinHandle<()>>>,
}

/// One quarantine-table entry, keyed by spec fingerprint.
#[derive(Clone, Debug, Default)]
struct QEntry {
    /// Consecutive crash/hang completions; a success resets it.
    consecutive: u32,
    /// Armed quarantine: submits reject until this instant.
    until: Option<Instant>,
    /// What the last failure looked like, echoed in rejections.
    detail: String,
}

/// State shared by the accept loop, connection handlers, workers, and
/// the supervisor.
struct Inner {
    cfg: ServerConfig,
    wal: Wal,
    pool: WriterPool,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    queue: Mutex<VecDeque<u64>>,
    queue_cv: Condvar,
    /// Jobs queued or mid-admission — the bounded-queue occupancy count.
    admitted: AtomicU64,
    running: AtomicU64,
    next_job: AtomicU64,
    /// Set on SIGTERM/SIGINT/`shutdown`: stop admitting, begin drain.
    stop: Arc<AtomicBool>,
    /// Set once drain is complete: connection handlers exit.
    terminating: AtomicBool,
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    recovered: AtomicU64,
    /// Aggregate engine stats across every job this process ran.
    engine_stats: Mutex<Stats>,
    sup: SupervisorState,
    /// Circuit breaker: spec fingerprint → consecutive-failure entry.
    quarantine: Mutex<HashMap<u64, QEntry>>,
    /// Completion-latency sketch (ms, newest-last, capped) per spec
    /// fingerprint — feeds the p99-derived hedge threshold.
    sketch: Mutex<HashMap<u64, Vec<u64>>>,
    /// Idempotency-key → job-id dedup map.
    idem: Mutex<HashMap<String, u64>>,
    escalations: AtomicU64,
    hung_workers: AtomicU64,
    workers_respawned: AtomicU64,
    hedges_launched: AtomicU64,
    hedges_won: AtomicU64,
    hedges_lost: AtomicU64,
    hedges_wasted: AtomicU64,
    quarantine_hits: AtomicU64,
    quarantined: AtomicU64,
}

impl Inner {
    fn server_counters(&self) -> ServerCounters {
        let wal = self.wal.stats();
        ServerCounters {
            jobs_accepted: self.accepted.load(Ordering::Relaxed),
            jobs_rejected: self.rejected.load(Ordering::Relaxed),
            jobs_queued: self.queue.lock().unwrap_or_else(|e| e.into_inner()).len() as u64,
            jobs_running: self.running.load(Ordering::Relaxed),
            jobs_completed: self.completed.load(Ordering::Relaxed),
            jobs_recovered: self.recovered.load(Ordering::Relaxed),
            wal_appends: wal.appends,
            wal_group_commits: wal.group_commits,
            wal_fsyncs: wal.fsyncs,
            wal_rotations: wal.rotations,
        }
    }

    fn supervision_counters(&self) -> SupervisionCounters {
        SupervisionCounters {
            heartbeats: self.sup.slots.iter().map(|s| s.heartbeat.count()).sum(),
            escalations: self.escalations.load(Ordering::Relaxed),
            hung_workers: self.hung_workers.load(Ordering::Relaxed),
            workers_respawned: self.workers_respawned.load(Ordering::Relaxed),
            hedges_launched: self.hedges_launched.load(Ordering::Relaxed),
            hedges_won: self.hedges_won.load(Ordering::Relaxed),
            hedges_lost: self.hedges_lost.load(Ordering::Relaxed),
            hedges_wasted: self.hedges_wasted.load(Ordering::Relaxed),
            quarantine_hits: self.quarantine_hits.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }
}

/// Executions not yet retired — what a drain waits on (hedges included).
fn live_runs(inner: &Inner) -> usize {
    inner
        .sup
        .runs
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .filter(|r| !r.retired.load(Ordering::Acquire))
        .count()
}

/// The daemon. [`Server::open`] binds the socket and recovers the WAL;
/// [`Server::run`] blocks serving until the stop flag is raised and the
/// drain completes.
pub struct Server {
    inner: Arc<Inner>,
    listener: UnixListener,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("socket", &self.inner.cfg.socket)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Opens the WAL (recovering every acknowledged job and the
    /// quarantine table), binds the socket, and returns the
    /// ready-to-run server plus what recovery found. The socket is
    /// connectable as soon as this returns, even before [`Server::run`]
    /// starts accepting.
    pub fn open(cfg: ServerConfig) -> Result<(Server, RecoveryReport), ServerError> {
        // A leftover socket file from a SIGKILL'd daemon must not block
        // restart — but a *live* daemon must not be usurped.
        if cfg.socket.exists() {
            match UnixStream::connect(&cfg.socket) {
                Ok(_) => return Err(ServerError::SocketBusy(cfg.socket.clone())),
                Err(_) => {
                    let _ = std::fs::remove_file(&cfg.socket);
                }
            }
        }
        let (wal, wal_recovery) = Wal::open(
            &cfg.wal_dir,
            WalOptions {
                segment_bytes: cfg.segment_bytes,
                ..WalOptions::default()
            },
        )?;
        let pool = WriterPool::new(&wal, cfg.workers.max(2));
        let listener = UnixListener::bind(&cfg.socket)?;

        let slots: Vec<Arc<Slot>> = (0..cfg.workers.max(1))
            .map(|_| {
                Arc::new(Slot {
                    heartbeat: Arc::new(Heartbeat::new()),
                    generation: AtomicU64::new(0),
                    handle: Mutex::new(None),
                })
            })
            .collect();

        let inner = Arc::new(Inner {
            cfg,
            wal,
            pool,
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            admitted: AtomicU64::new(0),
            running: AtomicU64::new(0),
            next_job: AtomicU64::new(1),
            stop: Arc::new(AtomicBool::new(false)),
            terminating: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            engine_stats: Mutex::new(Stats::default()),
            sup: SupervisorState {
                slots,
                runs: Mutex::new(Vec::new()),
                orphans: Mutex::new(Vec::new()),
                hedge_handles: Mutex::new(Vec::new()),
            },
            quarantine: Mutex::new(HashMap::new()),
            sketch: Mutex::new(HashMap::new()),
            idem: Mutex::new(HashMap::new()),
            escalations: AtomicU64::new(0),
            hung_workers: AtomicU64::new(0),
            workers_respawned: AtomicU64::new(0),
            hedges_launched: AtomicU64::new(0),
            hedges_won: AtomicU64::new(0),
            hedges_lost: AtomicU64::new(0),
            hedges_wasted: AtomicU64::new(0),
            quarantine_hits: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        });

        let mut report = RecoveryReport {
            wal: wal_recovery,
            ..RecoveryReport::default()
        };
        recover_jobs(&inner, &report.wal.records.clone(), &mut report);
        Ok((Server { inner, listener }, report))
    }

    /// The flag that triggers graceful drain — wire SIGTERM/SIGINT to
    /// set it. The `shutdown` op sets the same flag.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.inner.stop)
    }

    /// Serves until the stop flag is raised, then drains: admission
    /// stops, running jobs get `grace` to finish before their stop
    /// flags are raised, and the watchdog escalates any worker that
    /// ignores the flag — a wedged engine can delay exit by a few
    /// `watchdog_grace` periods, never hang it. Queued and abandoned
    /// jobs are left journaled for the next start. Returns once
    /// everything is quiesced and the socket is unlinked.
    pub fn run(self) -> Result<DrainReport, ServerError> {
        let inner = Arc::clone(&self.inner);
        for idx in 0..inner.sup.slots.len() {
            spawn_worker(&inner, idx);
        }
        let supervisor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("verdict-supervisor".to_string())
                .spawn(move || supervisor_loop(&inner))
                .expect("supervisor thread spawns")
        };

        self.listener.set_nonblocking(true)?;
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        while !inner.stop.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let inner = Arc::clone(&inner);
                    handlers.push(
                        std::thread::Builder::new()
                            .name("verdict-conn".to_string())
                            .spawn(move || handle_connection(stream, &inner))
                            .expect("connection thread spawns"),
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => {
                    // A transient accept failure must not kill the
                    // daemon; back off and retry.
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
            handlers.retain(|h| !h.is_finished());
        }

        // Drain, phase 1: wake idle workers so they observe the stop
        // flag, and give running executions the grace period.
        inner.queue_cv.notify_all();
        let deadline = Instant::now() + inner.cfg.grace;
        while live_runs(&inner) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        // Phase 2: cancel the stragglers cooperatively.
        if live_runs(&inner) > 0 {
            let jobs = inner.jobs.lock().unwrap_or_else(|e| e.into_inner());
            for job in jobs.values() {
                job.raise_stops();
            }
        }
        // Phase 3: wait for the fleet to quiesce. A worker wedged past
        // the stop flag is escalated and abandoned by the supervisor
        // (still running), so this wait is bounded by a few watchdog
        // grace periods — never by the hung engine itself.
        let hard = Instant::now() + inner.cfg.watchdog_grace * 4 + Duration::from_secs(2);
        while live_runs(&inner) > 0 && Instant::now() < hard {
            std::thread::sleep(Duration::from_millis(10));
        }
        inner.terminating.store(true, Ordering::Release);
        let _ = supervisor.join();
        // Join worker threads that actually finished; abandon the rest
        // (their jobs are journaled and re-run on the next start).
        let join_by = Instant::now() + Duration::from_secs(1);
        for slot in &inner.sup.slots {
            let handle = slot.handle.lock().unwrap_or_else(|e| e.into_inner()).take();
            if let Some(h) = handle {
                while !h.is_finished() && Instant::now() < join_by {
                    std::thread::sleep(Duration::from_millis(10));
                }
                if h.is_finished() {
                    let _ = h.join();
                } else {
                    inner
                        .sup
                        .orphans
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(h);
                }
            }
        }
        {
            let mut hedges = inner
                .sup
                .hedge_handles
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            for h in hedges.drain(..) {
                if h.is_finished() {
                    let _ = h.join();
                }
                // Unfinished hedges are detached; their jobs' outcomes
                // are owned by finalize's swap-once gate either way.
            }
        }
        // Detach abandoned threads: they hold no locks we need, and
        // their jobs were either finalized as hung or left journaled.
        inner
            .sup
            .orphans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        for h in handlers {
            let _ = h.join();
        }

        let abandoned = {
            let jobs = inner.jobs.lock().unwrap_or_else(|e| e.into_inner());
            jobs.values()
                .filter(|j| {
                    let g = j.state.lock().unwrap_or_else(|e| e.into_inner());
                    matches!(g.phase, JobPhase::Queued | JobPhase::Running)
                        || (g.phase == JobPhase::Cancelled
                            && !j.cancel_requested.load(Ordering::Acquire))
                })
                .count() as u64
        };
        let report = DrainReport {
            jobs_completed: inner.completed.load(Ordering::Relaxed),
            jobs_abandoned: abandoned,
            wal: inner.wal.stats(),
        };
        let _ = std::fs::remove_file(&inner.cfg.socket);
        // Dropping the last Arc closes the WAL (drains + final fsync).
        drop(inner);
        Ok(report)
    }
}

/// Replays the WAL into job state: `submit` without a matching `done`
/// or `cancel` re-enqueues; `done` with every verdict decided is
/// trusted; `done` with any undecided verdict re-runs (the re-gating
/// policy); `cancel` sticks. `quarantine`/`unquarantine` records
/// rebuild the circuit-breaker table (re-armed with a fresh TTL), and
/// recovered idempotency keys repopulate the dedup map.
fn recover_jobs(inner: &Arc<Inner>, records: &[String], report: &mut RecoveryReport) {
    struct Entry {
        spec: Option<JobSpec>,
        done: Option<Vec<VerdictRow>>,
        cancelled: bool,
    }
    let mut entries: HashMap<u64, Entry> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    let mut qmap: HashMap<u64, String> = HashMap::new();
    for payload in records {
        let Ok(v) = verdict_journal::json::parse(payload) else {
            continue;
        };
        match v.get("type").and_then(Json::as_str) {
            Some("quarantine") => {
                if let Some(fp) = v
                    .get("fp")
                    .and_then(Json::as_str)
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                {
                    let detail = v
                        .get("detail")
                        .and_then(Json::as_str)
                        .unwrap_or("recovered from journal")
                        .to_string();
                    qmap.insert(fp, detail);
                }
                continue;
            }
            Some("unquarantine") => {
                if let Some(fp) = v
                    .get("fp")
                    .and_then(Json::as_str)
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                {
                    qmap.remove(&fp);
                }
                continue;
            }
            _ => {}
        }
        let Some(id) = v.get("job").and_then(Json::as_int).filter(|&j| j >= 0) else {
            continue;
        };
        let id = id as u64;
        let entry = entries.entry(id).or_insert_with(|| {
            order.push(id);
            Entry {
                spec: None,
                done: None,
                cancelled: false,
            }
        });
        match v.get("type").and_then(Json::as_str) {
            Some("submit") => {
                if let Some(spec) = v.get("spec").and_then(|s| JobSpec::from_json(s).ok()) {
                    entry.spec = Some(spec);
                }
            }
            Some("done") => {
                if let Some(rows) = v.get("verdicts").and_then(Json::as_arr) {
                    let rows: Result<Vec<_>, _> = rows.iter().map(VerdictRow::from_json).collect();
                    if let Ok(rows) = rows {
                        entry.done = Some(rows);
                    }
                }
            }
            Some("cancel") => entry.cancelled = true,
            _ => {}
        }
    }

    let mut max_id = 0u64;
    for id in order {
        max_id = max_id.max(id);
        let entry = &entries[&id];
        let Some(spec) = entry.spec.clone() else {
            continue;
        };
        if let Some(key) = spec.idem.clone() {
            inner
                .idem
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(key, id);
        }
        let job = Job::new(id, spec);
        if entry.cancelled {
            job.set_phase(JobPhase::Cancelled, Vec::new(), true);
            job.cancel_requested.store(true, Ordering::Release);
            job.finalized.store(true, Ordering::Release);
            report.jobs_cancelled += 1;
        } else if let Some(rows) = entry
            .done
            .as_ref()
            .filter(|rows| rows.iter().all(VerdictRow::decided))
        {
            job.set_phase(JobPhase::Done, rows.clone(), true);
            job.finalized.store(true, Ordering::Release);
            report.jobs_trusted += 1;
            inner.recovered.fetch_add(1, Ordering::Relaxed);
        } else {
            // Unfinished, or finished with undecided verdicts: re-run.
            // The submit record is already durable — no new WAL write.
            report.jobs_requeued += 1;
            inner.recovered.fetch_add(1, Ordering::Relaxed);
            inner.admitted.fetch_add(1, Ordering::Relaxed);
            inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(id);
        }
        inner
            .jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, job);
    }
    inner.next_job.store(max_id + 1, Ordering::Release);

    if !qmap.is_empty() {
        let mut q = inner.quarantine.lock().unwrap_or_else(|e| e.into_inner());
        for (fp, detail) in qmap {
            q.insert(
                fp,
                QEntry {
                    consecutive: inner.cfg.quarantine_after,
                    until: Some(Instant::now() + inner.cfg.quarantine_ttl),
                    detail,
                },
            );
        }
    }
}

/// Admission: validate, consult the quarantine table and idempotency
/// map, reserve a queue slot, journal durably, enqueue. The WAL append
/// *is* the acknowledgment — a submit that returns a job id survives
/// SIGKILL from this moment on.
fn submit(inner: &Arc<Inner>, spec: JobSpec) -> Result<u64, Rejection> {
    let reject = |r: Rejection| {
        inner.rejected.fetch_add(1, Ordering::Relaxed);
        Err(r)
    };
    if inner.stop.load(Ordering::Acquire) {
        return reject(Rejection::new("draining"));
    }
    if let Err(e) = validate_spec(&spec) {
        return reject(e);
    }
    // Circuit breaker: a spec that keeps crashing or hanging workers is
    // refused outright until its TTL expires (or `unquarantine`).
    let fp = spec.fingerprint();
    {
        let mut q = inner.quarantine.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = q.get(&fp) {
            if let Some(until) = entry.until {
                let now = Instant::now();
                if now < until {
                    inner.quarantine_hits.fetch_add(1, Ordering::Relaxed);
                    let mut r = Rejection::new("quarantined").with_detail(format!(
                        "spec crash-looped {} time(s): {}",
                        entry.consecutive, entry.detail
                    ));
                    r.fingerprint = Some(format!("{fp:016x}"));
                    r.retry_after_ms = Some((until - now).as_millis() as u64);
                    return reject(r);
                }
                // TTL expired: lift lazily and admit on probation.
                q.remove(&fp);
            }
        }
    }
    // Idempotent resubmit: a key the daemon has already admitted maps
    // back to the original job instead of running twice.
    if let Some(key) = &spec.idem {
        let idem = inner.idem.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = idem.get(key) {
            return Ok(id);
        }
    }
    // Reserve a bounded-queue slot before the (slow) durable append so
    // concurrent submits can never overshoot the capacity.
    let occupied = inner.admitted.fetch_add(1, Ordering::SeqCst) + 1;
    if occupied > inner.cfg.queue_capacity as u64 {
        inner.admitted.fetch_sub(1, Ordering::SeqCst);
        let mut r = Rejection::new("queue-full");
        r.queued = Some(occupied - 1);
        r.capacity = Some(inner.cfg.queue_capacity as u64);
        return reject(r);
    }
    let id = inner.next_job.fetch_add(1, Ordering::SeqCst);
    if let Some(key) = &spec.idem {
        // Check-and-insert under one lock so two racing submits with
        // the same key admit exactly one job.
        let mut idem = inner.idem.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&existing) = idem.get(key) {
            inner.admitted.fetch_sub(1, Ordering::SeqCst);
            return Ok(existing);
        }
        idem.insert(key.clone(), id);
    }
    let record = proto::obj(vec![
        ("type", Json::Str("submit".into())),
        ("job", Json::Int(id as i64)),
        ("spec", spec.to_json()),
    ])
    .to_string();
    if let Err(e) = inner.pool.append(&record) {
        inner.admitted.fetch_sub(1, Ordering::SeqCst);
        if let Some(key) = &spec.idem {
            inner
                .idem
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(key);
        }
        return reject(Rejection::new("wal-error").with_detail(e.to_string()));
    }
    let job = Job::new(id, spec);
    inner
        .jobs
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(id, job);
    inner
        .queue
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push_back(id);
    inner.queue_cv.notify_one();
    inner.accepted.fetch_add(1, Ordering::Relaxed);
    Ok(id)
}

/// Rejects malformed jobs at admission, before anything is journaled,
/// through the shared `verdict_mc::spec` validation gate — the same
/// rules the CLI applies locally, mapped onto wire rejections.
fn validate_spec(spec: &JobSpec) -> Result<(), Rejection> {
    spec.validate().map(|_| ()).map_err(|e| match e {
        verdict_mc::spec::SpecError::Parse(m) => Rejection::new("parse-error").with_detail(m),
        verdict_mc::spec::SpecError::BadRequest(m) => Rejection::new("bad-request").with_detail(m),
    })
}

/// Durably journals a cancel and raises the job's stop flags. Queued
/// jobs flip to `cancelled` immediately; running jobs get there when
/// the engine observes the flag.
fn cancel(inner: &Arc<Inner>, id: u64) -> Result<(), Rejection> {
    let job = {
        let jobs = inner.jobs.lock().unwrap_or_else(|e| e.into_inner());
        jobs.get(&id).cloned()
    };
    let Some(job) = job else {
        return Err(Rejection::new("bad-request").with_detail(format!("no job {id}")));
    };
    {
        let g = job.state.lock().unwrap_or_else(|e| e.into_inner());
        if matches!(g.phase, JobPhase::Done | JobPhase::Cancelled) {
            return Ok(());
        }
    }
    let record = proto::obj(vec![
        ("type", Json::Str("cancel".into())),
        ("job", Json::Int(id as i64)),
    ])
    .to_string();
    if let Err(e) = inner.pool.append(&record) {
        return Err(Rejection::new("wal-error").with_detail(e.to_string()));
    }
    job.cancel_requested.store(true, Ordering::Release);
    job.raise_stops();
    let mut g = job.state.lock().unwrap_or_else(|e| e.into_inner());
    if g.phase == JobPhase::Queued {
        g.phase = JobPhase::Cancelled;
        job.cv.notify_all();
    }
    Ok(())
}

/// Lifts a quarantine entry. The clear is journaled so a restart does
/// not resurrect the circuit breaker.
fn unquarantine(inner: &Arc<Inner>, fp_hex: &str) -> Result<bool, Rejection> {
    let fp = u64::from_str_radix(fp_hex, 16).map_err(|_| {
        Rejection::new("bad-request").with_detail(format!("bad fingerprint `{fp_hex}`"))
    })?;
    let cleared = inner
        .quarantine
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&fp)
        .is_some();
    if cleared {
        let record = proto::obj(vec![
            ("type", Json::Str("unquarantine".into())),
            ("fp", Json::Str(format!("{fp:016x}"))),
        ])
        .to_string();
        let _ = inner.pool.append(&record);
    }
    Ok(cleared)
}

/// Records a crash/hang completion against a spec fingerprint; arms the
/// circuit breaker (journaled) once the consecutive-failure threshold
/// is crossed.
fn quarantine_failure(inner: &Arc<Inner>, fp: u64, detail: String) {
    if inner.cfg.quarantine_after == 0 {
        return;
    }
    let mut q = inner.quarantine.lock().unwrap_or_else(|e| e.into_inner());
    let entry = q.entry(fp).or_default();
    entry.consecutive += 1;
    entry.detail = detail.clone();
    if entry.until.is_none() && entry.consecutive >= inner.cfg.quarantine_after {
        entry.until = Some(Instant::now() + inner.cfg.quarantine_ttl);
        inner.quarantined.fetch_add(1, Ordering::Relaxed);
        let record = proto::obj(vec![
            ("type", Json::Str("quarantine".into())),
            ("fp", Json::Str(format!("{fp:016x}"))),
            ("detail", Json::Str(detail)),
        ])
        .to_string();
        let _ = inner.pool.append(&record);
    }
}

/// A clean completion resets the spec's consecutive-failure streak.
fn quarantine_success(inner: &Arc<Inner>, fp: u64) {
    inner
        .quarantine
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .remove(&fp);
}

/// Feeds the per-spec completion-latency sketch (bounded window).
fn record_latency(inner: &Arc<Inner>, fp: u64, elapsed: Duration) {
    let mut s = inner.sketch.lock().unwrap_or_else(|e| e.into_inner());
    let v = s.entry(fp).or_default();
    if v.len() >= 32 {
        v.remove(0);
    }
    v.push(elapsed.as_millis() as u64);
}

/// The elapsed time after which a run of this spec deserves a hedge:
/// twice the observed p99 once ≥8 completions are on record, else the
/// configured base threshold.
fn hedge_threshold(inner: &Inner, fp: u64, base: Duration) -> Duration {
    let s = inner.sketch.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(v) = s.get(&fp) {
        if v.len() >= 8 {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            let idx = (sorted.len() * 99).div_ceil(100).saturating_sub(1);
            let p99 = sorted[idx.min(sorted.len() - 1)];
            return Duration::from_millis((p99 * 2).max(10));
        }
    }
    base
}

/// An `io::Write` that turns the engines' trace byte stream back into
/// whole JSONL lines on the job's event list, waking `wait` streams.
struct JobEventWriter {
    job: Arc<Job>,
    partial: Vec<u8>,
}

impl io::Write for JobEventWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.partial.extend_from_slice(buf);
        while let Some(nl) = self.partial.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.partial.drain(..=nl).collect();
            if let Ok(s) = std::str::from_utf8(&line[..line.len() - 1]) {
                let mut g = self.job.state.lock().unwrap_or_else(|e| e.into_inner());
                g.events.push(s.to_string());
                self.job.cv.notify_all();
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Starts (or restarts, after an abandonment) the worker thread for a
/// slot. The spawned loop exits when its generation is superseded.
fn spawn_worker(inner: &Arc<Inner>, idx: usize) {
    let slot = Arc::clone(&inner.sup.slots[idx]);
    let my_gen = slot.generation.load(Ordering::Acquire);
    let inner2 = Arc::clone(inner);
    let handle = std::thread::Builder::new()
        .name(format!("verdict-worker-{idx}"))
        .spawn(move || worker_loop(&inner2, idx, my_gen))
        .expect("worker thread spawns");
    *slot.handle.lock().unwrap_or_else(|e| e.into_inner()) = Some(handle);
}

/// Worker: pop a job, run it under supervision, journal the outcome,
/// repeat until drain — or until this thread's slot generation is
/// superseded because the watchdog abandoned it.
fn worker_loop(inner: &Arc<Inner>, slot_idx: usize, my_gen: u64) {
    let slot = Arc::clone(&inner.sup.slots[slot_idx]);
    loop {
        if slot.generation.load(Ordering::Acquire) != my_gen {
            return;
        }
        let id = {
            let mut q = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if inner.stop.load(Ordering::Acquire)
                    || slot.generation.load(Ordering::Acquire) != my_gen
                {
                    return;
                }
                if let Some(id) = q.pop_front() {
                    inner.admitted.fetch_sub(1, Ordering::SeqCst);
                    break id;
                }
                let (guard, _) = inner
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        };
        let job = {
            let jobs = inner.jobs.lock().unwrap_or_else(|e| e.into_inner());
            jobs.get(&id).cloned()
        };
        let Some(job) = job else { continue };
        // The deadline counts from admission: a job that burned its
        // whole budget waiting in the queue fails honestly right here
        // instead of starting a doomed run.
        if let Some(deadline) = job.deadline() {
            if Instant::now() >= deadline && !job.finalized.swap(true, Ordering::SeqCst) {
                let rows = vec![VerdictRow {
                    name: "(job)".into(),
                    verdict: "unknown".into(),
                    reason: Some(UnknownReason::Timeout.tag().into()),
                    engine: job.spec.engine.clone(),
                    detail: "deadline expired while queued".into(),
                }];
                journal_done(inner, &job, &rows);
                inner.completed.fetch_add(1, Ordering::Relaxed);
                job.set_phase(JobPhase::Done, rows, false);
                continue;
            }
        }
        let exec = Execution::new(
            Arc::clone(&job),
            Some(slot_idx),
            Arc::clone(&slot.heartbeat),
            None,
            false,
        );
        {
            // Cancelled while queued: nothing to run. (The stop flag
            // was registered before this check, so a cancel landing in
            // between still reaches the execution.)
            let mut g = job.state.lock().unwrap_or_else(|e| e.into_inner());
            if g.phase != JobPhase::Queued {
                continue;
            }
            g.phase = JobPhase::Running;
            job.cv.notify_all();
        }
        inner.running.fetch_add(1, Ordering::SeqCst);
        inner
            .sup
            .runs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&exec));
        drive_execution(inner, &exec);
        retire(inner, &exec);
        if exec.abandoned.load(Ordering::Acquire) {
            // The watchdog replaced this thread while it was wedged;
            // the slot belongs to the successor now.
            return;
        }
    }
}

/// Runs one execution with panic containment: a worker-killing panic
/// (an engine bug, or the injected `server.worker.panic` fault) becomes
/// an honest `unknown/engine-failure` verdict instead of a dead slot.
fn drive_execution(inner: &Arc<Inner>, exec: &Arc<Execution>) {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_execution(inner, exec);
    }));
    if let Err(payload) = outcome {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".into());
        let rows = vec![VerdictRow {
            name: "(worker)".into(),
            verdict: "unknown".into(),
            reason: Some(UnknownReason::EngineFailure.tag().into()),
            engine: exec.job.spec.engine.clone(),
            detail: format!("worker thread panicked: {msg}"),
        }];
        finalize_rows(inner, exec, rows, None);
    }
}

/// Executes the spec for one execution and routes the rows through the
/// swap-once finalizer. Fault probes for the chaos harness sit at the
/// top: `server.worker.hang` simulates a wedge that ignores every
/// cooperative signal (only abandonment frees it), `server.worker.panic`
/// kills the thread mid-job.
fn run_execution(inner: &Arc<Inner>, exec: &Arc<Execution>) {
    if verdict_journal::fault::probe("server.worker.hang").is_some() {
        let cap = Instant::now() + Duration::from_secs(120);
        while !exec.abandoned.load(Ordering::Acquire) && Instant::now() < cap {
            std::thread::sleep(Duration::from_millis(5));
        }
        if exec.abandoned.load(Ordering::Acquire) {
            // The watchdog owns the outcome (finalized hung, or left
            // journaled for restart during a drain).
            return;
        }
        let rows = vec![hung_row(&exec.job.spec)];
        finalize_rows(inner, exec, rows, None);
        return;
    }
    verdict_journal::fault::panic_if_armed("server.worker.panic");

    let sink = if exec.is_hedge {
        // Only the primary streams trace events: interleaving two
        // engines' traces on one wait stream would be noise.
        None
    } else {
        Some(Arc::new(TraceSink::from_writer(Box::new(JobEventWriter {
            job: Arc::clone(&exec.job),
            partial: Vec::new(),
        }))))
    };
    let timeout = exec
        .deadline
        .map(|d| d.saturating_duration_since(Instant::now()));
    let (rows, stats) = execute_spec(
        &exec.job.spec,
        Arc::clone(&exec.stop),
        sink,
        Some(Arc::clone(&exec.sup)),
        timeout,
        exec.engine_override.as_deref(),
    );
    finalize_rows(inner, exec, rows, stats);
}

/// The verdict row recorded for a job whose worker hung past every
/// escalation step.
fn hung_row(spec: &JobSpec) -> VerdictRow {
    VerdictRow {
        name: "(job)".into(),
        verdict: "unknown".into(),
        reason: Some(UnknownReason::HungWorker.tag().into()),
        engine: spec.engine.clone(),
        detail: UnknownReason::HungWorker.to_string(),
    }
}

/// Appends the job's `done` record. A WAL failure here leaves the job
/// complete in memory but not durable — it re-runs on restart, which is
/// safe (just wasteful).
fn journal_done(inner: &Arc<Inner>, job: &Arc<Job>, rows: &[VerdictRow]) {
    let record = proto::obj(vec![
        ("type", Json::Str("done".into())),
        ("job", Json::Int(job.id as i64)),
        (
            "verdicts",
            Json::Arr(rows.iter().map(VerdictRow::to_json).collect()),
        ),
    ])
    .to_string();
    let _ = inner.pool.append(&record);
}

/// Routes one execution's finished rows through the job's swap-once
/// outcome gate. Exactly one caller — primary, hedge, or the watchdog's
/// hung-finalizer — wins; the rest account themselves as losers. The
/// winner journals, updates quarantine/latency bookkeeping, and flips
/// the job phase.
fn finalize_rows(
    inner: &Arc<Inner>,
    exec: &Arc<Execution>,
    mut rows: Vec<VerdictRow>,
    stats: Option<Stats>,
) {
    if let Some(stats) = &stats {
        inner
            .engine_stats
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .merge(stats);
    }
    let job = &exec.job;
    // Hedge restraint: an *undecided* hedge result must not race the
    // still-running primary to the gate — a hedge exists to return a
    // faster decided verdict, never to replace one unknown with
    // another. This is what keeps hedged runs agreeing with unhedged
    // baselines.
    if exec.is_hedge
        && !rows.iter().all(VerdictRow::decided)
        && !job.finalized.load(Ordering::Acquire)
        && primary_live(inner, job)
    {
        inner.hedges_wasted.fetch_add(1, Ordering::Relaxed);
        return;
    }
    if job.finalized.swap(true, Ordering::SeqCst) {
        // Lost the race: the other execution's verdict stands.
        if exec.is_hedge {
            inner.hedges_wasted.fetch_add(1, Ordering::Relaxed);
        }
        return;
    }
    // Winner: cancel every other execution of this job.
    job.raise_stops();
    if job.hedged.load(Ordering::Acquire) {
        if exec.is_hedge {
            inner.hedges_won.fetch_add(1, Ordering::Relaxed);
        } else {
            inner.hedges_lost.fetch_add(1, Ordering::Relaxed);
        }
    }
    let was_stopped = exec.stop.load(Ordering::Acquire);
    let any_cancelled = rows.iter().any(|r| r.verdict == "cancelled");
    let escalated = exec.escalation.load(Ordering::Acquire) > 0;
    if escalated && any_cancelled && !job.cancel_requested.load(Ordering::Acquire) {
        // The stop flag was raised by the watchdog, not a client: the
        // honest verdict is hung-worker, not cancelled.
        for r in &mut rows {
            if r.verdict == "cancelled" {
                r.verdict = "unknown".into();
                r.reason = Some(UnknownReason::HungWorker.tag().into());
                r.detail = UnknownReason::HungWorker.to_string();
            }
        }
        journal_done(inner, job, &rows);
        inner.completed.fetch_add(1, Ordering::Relaxed);
        quarantine_failure(inner, job.fp, "job hung past its deadline".into());
        job.set_phase(JobPhase::Done, rows, false);
        return;
    }
    if was_stopped && any_cancelled {
        // User cancel (its `cancel` record is durable) or a drain
        // casualty (its `submit` record re-runs it on restart): either
        // way, no `done` record.
        job.set_phase(JobPhase::Cancelled, rows, false);
        return;
    }
    journal_done(inner, job, &rows);
    inner.completed.fetch_add(1, Ordering::Relaxed);
    let crashed = rows
        .iter()
        .any(|r| r.reason.as_deref() == Some(UnknownReason::EngineFailure.tag()));
    let hung = rows
        .iter()
        .any(|r| r.reason.as_deref() == Some(UnknownReason::HungWorker.tag()));
    if crashed {
        let detail = rows
            .iter()
            .find(|r| r.reason.as_deref() == Some(UnknownReason::EngineFailure.tag()))
            .map(|r| r.detail.clone())
            .unwrap_or_default();
        quarantine_failure(inner, job.fp, detail);
    } else if hung {
        quarantine_failure(inner, job.fp, "worker hung".into());
    } else {
        quarantine_success(inner, job.fp);
        record_latency(inner, job.fp, exec.started.elapsed());
    }
    job.set_phase(JobPhase::Done, rows, false);
}

/// Is a non-hedge execution of this job still live?
fn primary_live(inner: &Inner, job: &Arc<Job>) -> bool {
    inner
        .sup
        .runs
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .any(|r| !r.is_hedge && r.job.id == job.id && !r.retired.load(Ordering::Acquire))
}

/// Marks an execution finished-with. Swap-once: callable from the
/// worker (normal path) and the watchdog (abandonment) without double
/// decrementing the running count.
fn retire(inner: &Arc<Inner>, exec: &Arc<Execution>) {
    if exec.retired.swap(true, Ordering::SeqCst) {
        return;
    }
    if exec.slot.is_some() {
        inner.running.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The watchdog: scans live executions, detects hangs (deadline overrun
/// past the grace, or a stale heartbeat), and walks each hung execution
/// up the escalation ladder. Healthy-but-slow executions are considered
/// for hedging instead.
fn supervisor_loop(inner: &Arc<Inner>) {
    while !inner.terminating.load(Ordering::Acquire) {
        let draining = inner.stop.load(Ordering::Acquire);
        let now = Instant::now();
        let runs: Vec<Arc<Execution>> = {
            let mut g = inner.sup.runs.lock().unwrap_or_else(|e| e.into_inner());
            g.retain(|r| !r.retired.load(Ordering::Acquire));
            g.clone()
        };
        for exec in &runs {
            if exec.retired.load(Ordering::Acquire) {
                continue;
            }
            if exec.job.finalized.load(Ordering::Acquire) {
                // Another execution already decided this job; keep the
                // loser's stop flag raised until it notices.
                exec.stop.store(true, Ordering::Release);
            }
            let hb = exec.sup.heartbeat().count();
            let prev = exec.last_beat.swap(hb, Ordering::AcqRel);
            let stale = {
                let mut changed = exec
                    .last_beat_change
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                if hb != prev {
                    *changed = now;
                }
                now.saturating_duration_since(*changed)
            };
            let grace = inner.cfg.watchdog_grace;
            let overdue = exec.deadline.is_some_and(|d| now > d + grace)
                || stale > inner.cfg.heartbeat_timeout
                || (exec.stop.load(Ordering::Acquire) && stale > grace && draining)
                || (exec.job.finalized.load(Ordering::Acquire) && stale > grace);
            if overdue {
                escalate(inner, exec, now);
            } else if !draining {
                maybe_hedge(inner, exec);
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// One step up the escalation ladder, paced `watchdog_grace` apart:
/// raise the stop flag → poison the supervision handle (the next budget
/// poll returns `Unknown(HungWorker)`) → abandon the thread.
fn escalate(inner: &Arc<Inner>, exec: &Arc<Execution>, now: Instant) {
    let step = exec.escalation.load(Ordering::Acquire);
    if step > 0 {
        let since = {
            let at = exec.escalated_at.lock().unwrap_or_else(|e| e.into_inner());
            now.saturating_duration_since(*at)
        };
        if since < inner.cfg.watchdog_grace {
            return;
        }
    }
    match step {
        0 => exec.stop.store(true, Ordering::Release),
        1 => exec.sup.poison(),
        _ => {
            abandon(inner, exec);
            return;
        }
    }
    exec.escalation.store(step + 1, Ordering::Release);
    *exec.escalated_at.lock().unwrap_or_else(|e| e.into_inner()) = now;
    inner.escalations.fetch_add(1, Ordering::Relaxed);
}

/// The ladder's last rung: give up on the thread. Its slot gets a fresh
/// generation and (outside a drain) a respawned worker, the old handle
/// is parked for best-effort joining at exit, and — unless another
/// execution of the job is still live — the job is finalized with an
/// honest `unknown/hung-worker` verdict. During a drain the job is
/// left `running`, so it counts as abandoned and re-runs on restart.
fn abandon(inner: &Arc<Inner>, exec: &Arc<Execution>) {
    if exec.abandoned.swap(true, Ordering::SeqCst) {
        return;
    }
    inner.escalations.fetch_add(1, Ordering::Relaxed);
    exec.escalation.store(3, Ordering::Release);
    inner.hung_workers.fetch_add(1, Ordering::Relaxed);
    if let Some(idx) = exec.slot {
        let slot = &inner.sup.slots[idx];
        slot.generation.fetch_add(1, Ordering::SeqCst);
        let old = slot.handle.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(h) = old {
            inner
                .sup
                .orphans
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(h);
        }
        if !inner.stop.load(Ordering::Acquire) {
            spawn_worker(inner, idx);
            inner.workers_respawned.fetch_add(1, Ordering::Relaxed);
        }
    }
    retire(inner, exec);
    if inner.stop.load(Ordering::Acquire) {
        return;
    }
    let other_live = {
        let runs = inner.sup.runs.lock().unwrap_or_else(|e| e.into_inner());
        runs.iter().any(|r| {
            r.job.id == exec.job.id && !r.retired.load(Ordering::Acquire) && !Arc::ptr_eq(r, exec)
        })
    };
    if other_live {
        // A hedge (or replacement) is still running; let it decide.
        return;
    }
    let job = &exec.job;
    if job.finalized.swap(true, Ordering::SeqCst) {
        return;
    }
    let rows = vec![hung_row(&job.spec)];
    journal_done(inner, job, &rows);
    inner.completed.fetch_add(1, Ordering::Relaxed);
    quarantine_failure(inner, job.fp, "worker hung; thread abandoned".into());
    job.set_phase(JobPhase::Done, rows, false);
}

/// Launches a speculative second run for a healthy-but-slow execution,
/// if capacity allows: the queue must be empty and a worker-equivalent
/// must be spare. The hedge runs a *different* engine (portfolio unless
/// the spec already asked for it), so a pathological engine/spec pair
/// doesn't just wedge twice.
fn maybe_hedge(inner: &Arc<Inner>, exec: &Arc<Execution>) {
    let Some(base) = inner.cfg.hedge_after else {
        return;
    };
    if exec.is_hedge
        || exec.escalation.load(Ordering::Acquire) > 0
        || exec.stop.load(Ordering::Acquire)
        || exec.job.finalized.load(Ordering::Acquire)
        || exec.job.hedged.load(Ordering::Acquire)
    {
        return;
    }
    if exec.started.elapsed() < hedge_threshold(inner, exec.job.fp, base) {
        return;
    }
    // Spare capacity only: hedges must never delay queued jobs.
    if !inner
        .queue
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .is_empty()
    {
        return;
    }
    let active = {
        let runs = inner.sup.runs.lock().unwrap_or_else(|e| e.into_inner());
        runs.iter()
            .filter(|r| !r.retired.load(Ordering::Acquire))
            .count()
    };
    if active >= inner.cfg.workers.max(1) {
        return;
    }
    if exec.job.hedged.swap(true, Ordering::SeqCst) {
        return;
    }
    inner.hedges_launched.fetch_add(1, Ordering::Relaxed);
    let engine = if exec.job.spec.engine == "portfolio" {
        "auto"
    } else {
        "portfolio"
    };
    let hedge = Execution::new(
        Arc::clone(&exec.job),
        None,
        Arc::new(Heartbeat::new()),
        Some(engine.to_string()),
        true,
    );
    inner
        .sup
        .runs
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Arc::clone(&hedge));
    let inner2 = Arc::clone(inner);
    let handle = std::thread::Builder::new()
        .name(format!("verdict-hedge-{}", exec.job.id))
        .spawn(move || {
            drive_execution(&inner2, &hedge);
            retire(&inner2, &hedge);
        })
        .expect("hedge thread spawns");
    inner
        .sup
        .hedge_handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(handle);
}

/// Runs a spec to a verdict-row list through the shared
/// `verdict_mc::spec::execute` path — the same function the CLI's
/// local sweep uses, which is what makes local and remote verdicts
/// agree structurally. Public within the crate so the bench and the
/// tests can execute specs exactly like a worker does. `timeout` (the
/// job's remaining deadline budget) takes precedence over the spec's
/// `deadline_ms`; `engine_override` replaces the spec's engine tag
/// (hedged re-execution); `supervision` threads the heartbeat/poison
/// handle into every engine budget poll.
pub(crate) fn execute_spec(
    spec: &JobSpec,
    stop: Arc<AtomicBool>,
    sink: Option<Arc<TraceSink>>,
    supervision: Option<Arc<Supervision>>,
    timeout: Option<Duration>,
    engine_override: Option<&str>,
) -> (Vec<VerdictRow>, Option<Stats>) {
    let ctx = verdict_mc::spec::ExecContext {
        stop: Some(stop),
        sink,
        supervision,
        timeout,
        engine_override: engine_override.map(str::to_string),
        jobs: 1,
    };
    verdict_mc::spec::execute(spec, &ctx)
}

/// Serializes a job snapshot into a response document.
fn status_json(job: &Arc<Job>) -> Json {
    let g = job.state.lock().unwrap_or_else(|e| e.into_inner());
    proto::obj(vec![
        ("ok", Json::Bool(true)),
        ("job", Json::Int(job.id as i64)),
        ("state", Json::Str(g.phase.tag().to_string())),
        ("recovered", Json::Bool(g.recovered)),
        (
            "verdicts",
            Json::Arr(g.verdicts.iter().map(VerdictRow::to_json).collect()),
        ),
    ])
}

/// One connection: read JSONL requests, answer each. Uses a short read
/// timeout so the handler can notice server termination mid-read.
fn handle_connection(stream: UnixStream, inner: &Arc<Inner>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = stream;
    let Ok(mut writer) = reader.try_clone() else {
        return;
    };
    let mut acc: Vec<u8> = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        // Extract the next complete line, reading more as needed.
        let line = loop {
            if let Some(nl) = acc.iter().position(|&b| b == b'\n') {
                let raw: Vec<u8> = acc.drain(..=nl).collect();
                break String::from_utf8_lossy(&raw[..raw.len() - 1]).into_owned();
            }
            match reader.read(&mut buf) {
                Ok(0) => return,
                Ok(n) => acc.extend_from_slice(&buf[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if inner.terminating.load(Ordering::Acquire) {
                        return;
                    }
                }
                Err(_) => return,
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let response_ok = match Request::parse(&line) {
            Ok(req) => respond(&req, inner, &mut writer),
            Err(e) => write_line(
                &mut writer,
                &Rejection::new("bad-request").with_detail(e).to_json(),
            ),
        };
        if response_ok.is_err() {
            return;
        }
    }
}

fn write_line(w: &mut UnixStream, v: &Json) -> io::Result<()> {
    let mut line = v.to_string();
    line.push('\n');
    w.write_all(line.as_bytes())
}

/// Answers one request. Errors mean the client hung up.
fn respond(req: &Request, inner: &Arc<Inner>, w: &mut UnixStream) -> io::Result<()> {
    match req {
        Request::Ping => write_line(w, &proto::obj(vec![("ok", Json::Bool(true))])),
        Request::Submit(spec) => match submit(inner, spec.clone()) {
            Ok(id) => write_line(
                w,
                &proto::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("job", Json::Int(id as i64)),
                ]),
            ),
            Err(r) => write_line(w, &r.to_json()),
        },
        Request::Status { job } => {
            let found = {
                let jobs = inner.jobs.lock().unwrap_or_else(|e| e.into_inner());
                jobs.get(job).cloned()
            };
            match found {
                Some(j) => write_line(w, &status_json(&j)),
                None => write_line(
                    w,
                    &Rejection::new("bad-request")
                        .with_detail(format!("no job {job}"))
                        .to_json(),
                ),
            }
        }
        Request::Wait { job } => {
            let found = {
                let jobs = inner.jobs.lock().unwrap_or_else(|e| e.into_inner());
                jobs.get(job).cloned()
            };
            let Some(j) = found else {
                return write_line(
                    w,
                    &Rejection::new("bad-request")
                        .with_detail(format!("no job {job}"))
                        .to_json(),
                );
            };
            // Stream trace events as they land, then the final state.
            // Periodic keepalive lines protect clients running socket
            // read timeouts from long quiet stretches.
            let mut seen = 0usize;
            let mut last_write = Instant::now();
            loop {
                let (pending, finished): (Vec<String>, bool) = {
                    let g = j.state.lock().unwrap_or_else(|e| e.into_inner());
                    let pending = g.events[seen.min(g.events.len())..].to_vec();
                    (
                        pending,
                        matches!(g.phase, JobPhase::Done | JobPhase::Cancelled),
                    )
                };
                for ev in &pending {
                    seen += 1;
                    // Events are verbatim PR-5 trace JSONL lines.
                    let mut framed = format!("{{\"job\":{},\"event\":{ev}}}", j.id);
                    framed.push('\n');
                    w.write_all(framed.as_bytes())?;
                    last_write = Instant::now();
                }
                if finished {
                    return write_line(w, &status_json(&j));
                }
                if inner.terminating.load(Ordering::Acquire) {
                    return write_line(
                        w,
                        &Rejection::new("draining")
                            .with_detail("server shutting down".into())
                            .to_json(),
                    );
                }
                if last_write.elapsed() > Duration::from_secs(1) {
                    let mut line = format!("{{\"job\":{},\"keepalive\":true}}", j.id);
                    line.push('\n');
                    w.write_all(line.as_bytes())?;
                    last_write = Instant::now();
                }
                let g = j.state.lock().unwrap_or_else(|e| e.into_inner());
                let _ =
                    j.cv.wait_timeout(g, Duration::from_millis(100))
                        .unwrap_or_else(|e| e.into_inner());
            }
        }
        Request::Cancel { job } => match cancel(inner, *job) {
            Ok(()) => write_line(w, &proto::obj(vec![("ok", Json::Bool(true))])),
            Err(r) => write_line(w, &r.to_json()),
        },
        Request::Unquarantine { fp } => match unquarantine(inner, fp) {
            Ok(cleared) => write_line(
                w,
                &proto::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("cleared", Json::Bool(cleared)),
                ]),
            ),
            Err(r) => write_line(w, &r.to_json()),
        },
        Request::Stats => {
            let mut stats = inner
                .engine_stats
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone();
            stats.server = inner.server_counters();
            stats.supervision = inner.supervision_counters();
            // to_json is already a JSON document; frame it raw.
            let mut line = format!("{{\"ok\":true,\"stats\":{}}}", stats.to_json());
            line.push('\n');
            w.write_all(line.as_bytes())
        }
        Request::Shutdown => {
            inner.stop.store(true, Ordering::Release);
            inner.queue_cv.notify_all();
            write_line(
                w,
                &proto::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("draining", Json::Bool(true)),
                ]),
            )
        }
    }
}
