//! Verdict-as-a-service: a crash-safe verification job daemon.
//!
//! The paper pitches verification as *infrastructure* — a standing
//! service operators query continuously, not a one-shot CLI. This crate
//! is that daemon. It accepts `check`/`synth` jobs over a local
//! Unix-socket JSONL API ([`proto`]), schedules them across a bounded
//! worker fleet, and streams per-job progress using the `--trace` JSONL
//! event format as the wire format.
//!
//! The robustness surface is the point:
//!
//! * **Durability.** Every admitted job is written to a group-commit
//!   write-ahead log ([`verdict_journal::wal`]) *before* the submit is
//!   acknowledged — an acked job survives `SIGKILL` at any byte
//!   boundary. Completion writes a `done` record with the full verdict
//!   map; on restart, decided verdicts are trusted (the PR-4 re-gating
//!   policy — the WAL pins the exact model source, so a `done` record
//!   provably describes the same input) and everything else re-runs.
//! * **Admission control.** The queue is bounded. A full queue, a
//!   draining server, or an unparseable model rejects with a structured
//!   reason ([`proto::Rejection`]) — never unbounded growth, never a
//!   silent hang.
//! * **Deadlines and cancellation.** Per-job wall-clock deadlines and
//!   `cancel` both route into the engines' cooperative stop-flag
//!   plumbing; a cancel is journaled so it survives restart too.
//! * **Graceful drain.** SIGTERM/SIGINT (or the `shutdown` op) stops
//!   admission, lets running jobs finish within a grace period, then
//!   raises their stop flags; queued jobs are already journaled and
//!   re-run on the next start. The daemon exits 0.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read as _, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use verdict_journal::json::Json;
use verdict_journal::wal::{Wal, WalError, WalOptions, WalRecovery, WriterPool};
use verdict_mc::{
    CheckOptions, CheckResult, EngineKind, ServerCounters, Stats, TraceSink, UnknownReason,
    Verifier,
};

mod client;
pub mod proto;

pub use client::{Client, ClientError, JobOutcome};
pub use proto::{JobKind, JobSpec, Rejection, Request, VerdictRow};

/// How the daemon is wired: socket path, WAL directory, fleet size, and
/// admission-queue capacity.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Unix socket path to listen on.
    pub socket: PathBuf,
    /// Directory for the write-ahead log's segment files.
    pub wal_dir: PathBuf,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Maximum jobs waiting in the admission queue; submits beyond this
    /// are rejected with `queue-full`.
    pub queue_capacity: usize,
    /// WAL segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// How long a drain waits for running jobs before raising their
    /// stop flags.
    pub grace: Duration,
}

impl ServerConfig {
    /// A config with defaults for everything but the two paths.
    pub fn new(socket: impl Into<PathBuf>, wal_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            socket: socket.into(),
            wal_dir: wal_dir.into(),
            workers: 2,
            queue_capacity: 64,
            segment_bytes: 4 << 20,
            grace: Duration::from_secs(10),
        }
    }
}

/// Errors from opening or running the daemon.
#[derive(Debug)]
pub enum ServerError {
    /// Underlying socket/filesystem failure.
    Io(io::Error),
    /// The write-ahead log failed.
    Wal(WalError),
    /// Another live daemon already owns the socket.
    SocketBusy(PathBuf),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "server i/o error: {e}"),
            ServerError::Wal(e) => write!(f, "server wal error: {e}"),
            ServerError::SocketBusy(p) => write!(
                f,
                "another daemon is already serving on {} (connect to it, or stop it first)",
                p.display()
            ),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> ServerError {
        ServerError::Io(e)
    }
}

impl From<WalError> for ServerError {
    fn from(e: WalError) -> ServerError {
        ServerError::Wal(e)
    }
}

/// What [`Server::open`] recovered from the WAL.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// WAL scan details (segments, torn-tail truncation).
    pub wal: WalRecovery,
    /// Jobs re-enqueued because they were admitted but not finished (or
    /// finished with undecided verdicts).
    pub jobs_requeued: u64,
    /// Jobs whose decided verdict maps were trusted and re-reported.
    pub jobs_trusted: u64,
    /// Jobs that were durably cancelled.
    pub jobs_cancelled: u64,
}

/// What a completed drain looked like.
#[derive(Clone, Debug, Default)]
pub struct DrainReport {
    /// Jobs that finished during this server's lifetime.
    pub jobs_completed: u64,
    /// Jobs still queued or stopped mid-run at exit; all are journaled
    /// and re-run on the next start.
    pub jobs_abandoned: u64,
    /// Final WAL counters.
    pub wal: verdict_journal::wal::WalStats,
}

/// Job lifecycle phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobPhase {
    Queued,
    Running,
    Done,
    Cancelled,
}

impl JobPhase {
    fn tag(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Cancelled => "cancelled",
        }
    }
}

/// Mutable job state, guarded by the job's mutex.
struct JobState {
    phase: JobPhase,
    /// PR-5 trace JSONL lines, appended live while the job runs.
    events: Vec<String>,
    verdicts: Vec<VerdictRow>,
    /// True when the verdicts were recovered from the WAL, not computed
    /// by this process.
    recovered: bool,
}

/// One job: immutable spec plus guarded state plus its stop flag.
struct Job {
    id: u64,
    spec: JobSpec,
    stop: Arc<AtomicBool>,
    /// Set by the `cancel` op (as opposed to a drain raising `stop`).
    cancel_requested: AtomicBool,
    state: Mutex<JobState>,
    cv: Condvar,
}

impl Job {
    fn new(id: u64, spec: JobSpec) -> Arc<Job> {
        Arc::new(Job {
            id,
            spec,
            stop: Arc::new(AtomicBool::new(false)),
            cancel_requested: AtomicBool::new(false),
            state: Mutex::new(JobState {
                phase: JobPhase::Queued,
                events: Vec::new(),
                verdicts: Vec::new(),
                recovered: false,
            }),
            cv: Condvar::new(),
        })
    }

    fn set_phase(&self, phase: JobPhase, verdicts: Vec<VerdictRow>, recovered: bool) {
        let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        g.phase = phase;
        g.verdicts = verdicts;
        g.recovered = recovered;
        self.cv.notify_all();
    }
}

/// State shared by the accept loop, connection handlers, and workers.
struct Inner {
    cfg: ServerConfig,
    wal: Wal,
    pool: WriterPool,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    queue: Mutex<VecDeque<u64>>,
    queue_cv: Condvar,
    /// Jobs queued or mid-admission — the bounded-queue occupancy count.
    admitted: AtomicU64,
    running: AtomicU64,
    next_job: AtomicU64,
    /// Set on SIGTERM/SIGINT/`shutdown`: stop admitting, begin drain.
    stop: Arc<AtomicBool>,
    /// Set once drain is complete: connection handlers exit.
    terminating: AtomicBool,
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    recovered: AtomicU64,
    /// Aggregate engine stats across every job this process ran.
    engine_stats: Mutex<Stats>,
}

impl Inner {
    fn server_counters(&self) -> ServerCounters {
        let wal = self.wal.stats();
        ServerCounters {
            jobs_accepted: self.accepted.load(Ordering::Relaxed),
            jobs_rejected: self.rejected.load(Ordering::Relaxed),
            jobs_queued: self.queue.lock().unwrap_or_else(|e| e.into_inner()).len() as u64,
            jobs_running: self.running.load(Ordering::Relaxed),
            jobs_completed: self.completed.load(Ordering::Relaxed),
            jobs_recovered: self.recovered.load(Ordering::Relaxed),
            wal_appends: wal.appends,
            wal_group_commits: wal.group_commits,
            wal_fsyncs: wal.fsyncs,
            wal_rotations: wal.rotations,
        }
    }
}

/// The daemon. [`Server::open`] binds the socket and recovers the WAL;
/// [`Server::run`] blocks serving until the stop flag is raised and the
/// drain completes.
pub struct Server {
    inner: Arc<Inner>,
    listener: UnixListener,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("socket", &self.inner.cfg.socket)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Opens the WAL (recovering every acknowledged job), binds the
    /// socket, and returns the ready-to-run server plus what recovery
    /// found. The socket is connectable as soon as this returns, even
    /// before [`Server::run`] starts accepting.
    pub fn open(cfg: ServerConfig) -> Result<(Server, RecoveryReport), ServerError> {
        // A leftover socket file from a SIGKILL'd daemon must not block
        // restart — but a *live* daemon must not be usurped.
        if cfg.socket.exists() {
            match UnixStream::connect(&cfg.socket) {
                Ok(_) => return Err(ServerError::SocketBusy(cfg.socket.clone())),
                Err(_) => {
                    let _ = std::fs::remove_file(&cfg.socket);
                }
            }
        }
        let (wal, wal_recovery) = Wal::open(
            &cfg.wal_dir,
            WalOptions {
                segment_bytes: cfg.segment_bytes,
                ..WalOptions::default()
            },
        )?;
        let pool = WriterPool::new(&wal, cfg.workers.max(2));
        let listener = UnixListener::bind(&cfg.socket)?;

        let inner = Arc::new(Inner {
            cfg,
            wal,
            pool,
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            admitted: AtomicU64::new(0),
            running: AtomicU64::new(0),
            next_job: AtomicU64::new(1),
            stop: Arc::new(AtomicBool::new(false)),
            terminating: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            engine_stats: Mutex::new(Stats::default()),
        });

        let mut report = RecoveryReport {
            wal: wal_recovery,
            ..RecoveryReport::default()
        };
        recover_jobs(&inner, &report.wal.records.clone(), &mut report);
        Ok((Server { inner, listener }, report))
    }

    /// The flag that triggers graceful drain — wire SIGTERM/SIGINT to
    /// set it. The `shutdown` op sets the same flag.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.inner.stop)
    }

    /// Serves until the stop flag is raised, then drains: admission
    /// stops, running jobs get `grace` to finish before their stop
    /// flags are raised, queued jobs are left journaled for the next
    /// start. Returns once everything is quiesced and the socket is
    /// unlinked.
    pub fn run(self) -> Result<DrainReport, ServerError> {
        let inner = Arc::clone(&self.inner);
        let mut workers = Vec::new();
        for i in 0..inner.cfg.workers.max(1) {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("verdict-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("worker thread spawns"),
            );
        }

        self.listener.set_nonblocking(true)?;
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !inner.stop.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let inner = Arc::clone(&inner);
                    handlers.push(
                        std::thread::Builder::new()
                            .name("verdict-conn".to_string())
                            .spawn(move || handle_connection(stream, &inner))
                            .expect("connection thread spawns"),
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => {
                    // A transient accept failure must not kill the
                    // daemon; back off and retry.
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
            handlers.retain(|h| !h.is_finished());
        }

        // Drain: wake idle workers so they observe the stop flag, give
        // running jobs the grace period, then cancel the stragglers.
        inner.queue_cv.notify_all();
        let deadline = Instant::now() + inner.cfg.grace;
        while inner.running.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        if inner.running.load(Ordering::Acquire) > 0 {
            let jobs = inner.jobs.lock().unwrap_or_else(|e| e.into_inner());
            for job in jobs.values() {
                job.stop.store(true, Ordering::Release);
            }
        }
        for w in workers {
            let _ = w.join();
        }
        inner.terminating.store(true, Ordering::Release);
        for h in handlers {
            let _ = h.join();
        }

        let abandoned = {
            let jobs = inner.jobs.lock().unwrap_or_else(|e| e.into_inner());
            jobs.values()
                .filter(|j| {
                    let g = j.state.lock().unwrap_or_else(|e| e.into_inner());
                    matches!(g.phase, JobPhase::Queued | JobPhase::Running)
                        || (g.phase == JobPhase::Cancelled
                            && !j.cancel_requested.load(Ordering::Acquire))
                })
                .count() as u64
        };
        let report = DrainReport {
            jobs_completed: inner.completed.load(Ordering::Relaxed),
            jobs_abandoned: abandoned,
            wal: inner.wal.stats(),
        };
        let _ = std::fs::remove_file(&inner.cfg.socket);
        // Dropping the last Arc closes the WAL (drains + final fsync).
        drop(inner);
        Ok(report)
    }
}

/// Replays the WAL into job state: `submit` without a matching `done`
/// or `cancel` re-enqueues; `done` with every verdict decided is
/// trusted; `done` with any undecided verdict re-runs (the re-gating
/// policy); `cancel` sticks.
fn recover_jobs(inner: &Arc<Inner>, records: &[String], report: &mut RecoveryReport) {
    struct Entry {
        spec: Option<JobSpec>,
        done: Option<Vec<VerdictRow>>,
        cancelled: bool,
    }
    let mut entries: HashMap<u64, Entry> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    for payload in records {
        let Ok(v) = verdict_journal::json::parse(payload) else {
            continue;
        };
        let Some(id) = v.get("job").and_then(Json::as_int).filter(|&j| j >= 0) else {
            continue;
        };
        let id = id as u64;
        let entry = entries.entry(id).or_insert_with(|| {
            order.push(id);
            Entry {
                spec: None,
                done: None,
                cancelled: false,
            }
        });
        match v.get("type").and_then(Json::as_str) {
            Some("submit") => {
                if let Some(spec) = v.get("spec").and_then(|s| JobSpec::from_json(s).ok()) {
                    entry.spec = Some(spec);
                }
            }
            Some("done") => {
                if let Some(rows) = v.get("verdicts").and_then(Json::as_arr) {
                    let rows: Result<Vec<_>, _> = rows.iter().map(VerdictRow::from_json).collect();
                    if let Ok(rows) = rows {
                        entry.done = Some(rows);
                    }
                }
            }
            Some("cancel") => entry.cancelled = true,
            _ => {}
        }
    }

    let mut max_id = 0u64;
    for id in order {
        max_id = max_id.max(id);
        let entry = &entries[&id];
        let Some(spec) = entry.spec.clone() else {
            continue;
        };
        let job = Job::new(id, spec);
        if entry.cancelled {
            job.set_phase(JobPhase::Cancelled, Vec::new(), true);
            job.cancel_requested.store(true, Ordering::Release);
            report.jobs_cancelled += 1;
        } else if let Some(rows) = entry
            .done
            .as_ref()
            .filter(|rows| rows.iter().all(VerdictRow::decided))
        {
            job.set_phase(JobPhase::Done, rows.clone(), true);
            report.jobs_trusted += 1;
            inner.recovered.fetch_add(1, Ordering::Relaxed);
        } else {
            // Unfinished, or finished with undecided verdicts: re-run.
            // The submit record is already durable — no new WAL write.
            report.jobs_requeued += 1;
            inner.recovered.fetch_add(1, Ordering::Relaxed);
            inner.admitted.fetch_add(1, Ordering::Relaxed);
            inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(id);
        }
        inner
            .jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id, job);
    }
    inner.next_job.store(max_id + 1, Ordering::Release);
}

/// Admission: validate, reserve a queue slot, journal durably, enqueue.
/// The WAL append *is* the acknowledgment — a submit that returns a job
/// id survives SIGKILL from this moment on.
fn submit(inner: &Arc<Inner>, spec: JobSpec) -> Result<u64, Rejection> {
    let reject = |r: Rejection| {
        inner.rejected.fetch_add(1, Ordering::Relaxed);
        Err(r)
    };
    if inner.stop.load(Ordering::Acquire) {
        return reject(Rejection::new("draining"));
    }
    if let Err(e) = validate_spec(&spec) {
        return reject(e);
    }
    // Reserve a bounded-queue slot before the (slow) durable append so
    // concurrent submits can never overshoot the capacity.
    let occupied = inner.admitted.fetch_add(1, Ordering::SeqCst) + 1;
    if occupied > inner.cfg.queue_capacity as u64 {
        inner.admitted.fetch_sub(1, Ordering::SeqCst);
        let mut r = Rejection::new("queue-full");
        r.queued = Some(occupied - 1);
        r.capacity = Some(inner.cfg.queue_capacity as u64);
        return reject(r);
    }
    let id = inner.next_job.fetch_add(1, Ordering::SeqCst);
    let record = proto::obj(vec![
        ("type", Json::Str("submit".into())),
        ("job", Json::Int(id as i64)),
        ("spec", spec.to_json()),
    ])
    .to_string();
    if let Err(e) = inner.pool.append(&record) {
        inner.admitted.fetch_sub(1, Ordering::SeqCst);
        return reject(Rejection::new("wal-error").with_detail(e.to_string()));
    }
    let job = Job::new(id, spec);
    inner
        .jobs
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(id, job);
    inner
        .queue
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push_back(id);
    inner.queue_cv.notify_one();
    inner.accepted.fetch_add(1, Ordering::Relaxed);
    Ok(id)
}

/// Rejects malformed jobs at admission, before anything is journaled:
/// the model must parse, the engine tag must exist, named properties
/// and parameters must resolve.
fn validate_spec(spec: &JobSpec) -> Result<(), Rejection> {
    let model = verdict_dsl::parse(&spec.source)
        .map_err(|e| Rejection::new("parse-error").with_detail(e.to_string()))?;
    if engine_from_tag(&spec.engine).is_none() {
        return Err(
            Rejection::new("bad-request").with_detail(format!("unknown engine `{}`", spec.engine))
        );
    }
    if let Some(prop) = &spec.prop {
        if !model.properties.iter().any(|(n, _)| n == prop) {
            return Err(Rejection::new("bad-request")
                .with_detail(format!("model has no property `{prop}`")));
        }
    }
    match spec.kind {
        JobKind::Check => {
            if model.properties.is_empty() {
                return Err(
                    Rejection::new("bad-request").with_detail("model has no properties".into())
                );
            }
        }
        JobKind::Synth => {
            if spec.params.is_empty() {
                return Err(
                    Rejection::new("bad-request").with_detail("synth requires params".into())
                );
            }
            for p in &spec.params {
                if model.system.var_by_name(p).is_none() {
                    return Err(Rejection::new("bad-request")
                        .with_detail(format!("unknown parameter `{p}`")));
                }
            }
            let selected = model
                .properties
                .iter()
                .filter(|(n, _)| spec.prop.as_deref().is_none_or(|p| p == n))
                .count();
            if selected != 1 {
                return Err(Rejection::new("bad-request")
                    .with_detail("synth needs exactly one property (use prop)".into()));
            }
        }
    }
    Ok(())
}

fn engine_from_tag(tag: &str) -> Option<EngineKind> {
    match tag {
        "auto" => Some(EngineKind::Auto),
        "bmc" => Some(EngineKind::Bmc),
        "kind" => Some(EngineKind::KInduction),
        "bdd" => Some(EngineKind::Bdd),
        "explicit" => Some(EngineKind::Explicit),
        "smtbmc" => Some(EngineKind::SmtBmc),
        "portfolio" => Some(EngineKind::Portfolio),
        _ => None,
    }
}

/// Durably journals a cancel and raises the job's stop flag. Queued
/// jobs flip to `cancelled` immediately; running jobs get there when
/// the engine observes the flag.
fn cancel(inner: &Arc<Inner>, id: u64) -> Result<(), Rejection> {
    let job = {
        let jobs = inner.jobs.lock().unwrap_or_else(|e| e.into_inner());
        jobs.get(&id).cloned()
    };
    let Some(job) = job else {
        return Err(Rejection::new("bad-request").with_detail(format!("no job {id}")));
    };
    {
        let g = job.state.lock().unwrap_or_else(|e| e.into_inner());
        if matches!(g.phase, JobPhase::Done | JobPhase::Cancelled) {
            return Ok(());
        }
    }
    let record = proto::obj(vec![
        ("type", Json::Str("cancel".into())),
        ("job", Json::Int(id as i64)),
    ])
    .to_string();
    if let Err(e) = inner.pool.append(&record) {
        return Err(Rejection::new("wal-error").with_detail(e.to_string()));
    }
    job.cancel_requested.store(true, Ordering::Release);
    job.stop.store(true, Ordering::Release);
    let mut g = job.state.lock().unwrap_or_else(|e| e.into_inner());
    if g.phase == JobPhase::Queued {
        g.phase = JobPhase::Cancelled;
        job.cv.notify_all();
    }
    Ok(())
}

/// An `io::Write` that turns the engines' trace byte stream back into
/// whole JSONL lines on the job's event list, waking `wait` streams.
struct JobEventWriter {
    job: Arc<Job>,
    partial: Vec<u8>,
}

impl io::Write for JobEventWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.partial.extend_from_slice(buf);
        while let Some(nl) = self.partial.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.partial.drain(..=nl).collect();
            if let Ok(s) = std::str::from_utf8(&line[..line.len() - 1]) {
                let mut g = self.job.state.lock().unwrap_or_else(|e| e.into_inner());
                g.events.push(s.to_string());
                self.job.cv.notify_all();
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Worker: pop a job, run it, journal the outcome, repeat until drain.
fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let id = {
            let mut q = inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if inner.stop.load(Ordering::Acquire) {
                    return;
                }
                if let Some(id) = q.pop_front() {
                    inner.admitted.fetch_sub(1, Ordering::SeqCst);
                    break id;
                }
                let (guard, _) = inner
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        };
        let job = {
            let jobs = inner.jobs.lock().unwrap_or_else(|e| e.into_inner());
            jobs.get(&id).cloned()
        };
        let Some(job) = job else { continue };
        {
            // Cancelled while queued: nothing to run.
            let mut g = job.state.lock().unwrap_or_else(|e| e.into_inner());
            if g.phase != JobPhase::Queued {
                continue;
            }
            g.phase = JobPhase::Running;
            job.cv.notify_all();
        }
        inner.running.fetch_add(1, Ordering::SeqCst);
        run_job(inner, &job);
        inner.running.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Executes one job and records the outcome. A `done` record is written
/// only for runs with no cancelled verdicts: a cancelled run is either
/// user-cancelled (its `cancel` record is already durable) or a drain
/// casualty (its `submit` record re-runs it on restart).
fn run_job(inner: &Arc<Inner>, job: &Arc<Job>) {
    let sink = Arc::new(TraceSink::from_writer(Box::new(JobEventWriter {
        job: Arc::clone(job),
        partial: Vec::new(),
    })));
    let (rows, stats) = execute_spec(&job.spec, Arc::clone(&job.stop), Some(sink));
    if let Some(stats) = stats {
        inner
            .engine_stats
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .merge(&stats);
    }
    let was_stopped = job.stop.load(Ordering::Acquire);
    let any_cancelled = rows.iter().any(|r| r.verdict == "cancelled");
    if was_stopped && any_cancelled {
        job.set_phase(JobPhase::Cancelled, rows, false);
        return;
    }
    let record = proto::obj(vec![
        ("type", Json::Str("done".into())),
        ("job", Json::Int(job.id as i64)),
        (
            "verdicts",
            Json::Arr(rows.iter().map(VerdictRow::to_json).collect()),
        ),
    ])
    .to_string();
    // A WAL failure here leaves the job complete in memory but not
    // durable — it re-runs on restart, which is safe (just wasteful).
    let _ = inner.pool.append(&record);
    inner.completed.fetch_add(1, Ordering::Relaxed);
    job.set_phase(JobPhase::Done, rows, false);
}

/// Runs a spec to a verdict-row list. Public within the crate so the
/// bench and the tests can execute specs exactly like a worker does.
pub(crate) fn execute_spec(
    spec: &JobSpec,
    stop: Arc<AtomicBool>,
    sink: Option<Arc<TraceSink>>,
) -> (Vec<VerdictRow>, Option<Stats>) {
    let model = match verdict_dsl::parse(&spec.source) {
        Ok(m) => m,
        Err(e) => {
            // Validated at admission; reaching this means the model was
            // corrupted in flight — surface as an engine failure.
            return (
                vec![VerdictRow {
                    name: "(model)".into(),
                    verdict: "unknown".into(),
                    reason: Some(UnknownReason::EngineFailure.tag().into()),
                    engine: spec.engine.clone(),
                    detail: e.to_string(),
                }],
                None,
            );
        }
    };
    let engine = engine_from_tag(&spec.engine).unwrap_or(EngineKind::Auto);
    let mut opts = CheckOptions::default().with_jobs(1).with_stop(stop);
    if let Some(d) = spec.depth {
        opts.max_depth = d;
    }
    if let Some(ms) = spec.deadline_ms {
        opts = opts.with_timeout(Duration::from_millis(ms));
    }
    if let Some(sink) = sink {
        opts = opts.with_trace(sink);
    }
    match spec.kind {
        JobKind::Check => {
            let mut rows = Vec::new();
            let mut agg = Stats::default();
            for (name, property) in model
                .properties
                .iter()
                .filter(|(n, _)| spec.prop.as_deref().is_none_or(|p| p == n))
            {
                let verifier = Verifier::new(&model.system)
                    .engine(engine)
                    .options(opts.clone());
                let report = match property {
                    verdict_dsl::CompiledProperty::Invariant(p) => {
                        verifier.check_invariant_report(p)
                    }
                    verdict_dsl::CompiledProperty::Ltl(f) => verifier.check_ltl_report(f),
                    verdict_dsl::CompiledProperty::Ctl(f) => verifier.check_ctl_report(f),
                };
                match report {
                    Ok(r) => {
                        agg.merge(&r.stats);
                        rows.push(VerdictRow {
                            name: name.clone(),
                            verdict: verdict_tag(&r.result).to_string(),
                            reason: match &r.result {
                                CheckResult::Unknown(reason) => Some(reason.tag().to_string()),
                                _ => None,
                            },
                            engine: r.winner.to_string(),
                            detail: r.result.to_string(),
                        });
                    }
                    Err(e) => rows.push(VerdictRow {
                        name: name.clone(),
                        verdict: "unknown".into(),
                        reason: Some(UnknownReason::EngineFailure.tag().into()),
                        engine: spec.engine.clone(),
                        detail: e.to_string(),
                    }),
                }
            }
            (rows, Some(agg))
        }
        JobKind::Synth => {
            let params: Vec<_> = spec
                .params
                .iter()
                .filter_map(|p| model.system.var_by_name(p))
                .collect();
            let (name, property) = match model
                .properties
                .iter()
                .find(|(n, _)| spec.prop.as_deref().is_none_or(|p| p == n))
            {
                Some(pair) => pair,
                None => return (Vec::new(), None),
            };
            let prop = match property {
                verdict_dsl::CompiledProperty::Invariant(p) => {
                    verdict_mc::params::Property::Invariant(p.clone())
                }
                verdict_dsl::CompiledProperty::Ltl(f) => {
                    verdict_mc::params::Property::Ltl(f.clone())
                }
                verdict_dsl::CompiledProperty::Ctl(_) => {
                    return (
                        vec![VerdictRow {
                            name: name.clone(),
                            verdict: "unknown".into(),
                            reason: Some(UnknownReason::EngineFailure.tag().into()),
                            engine: spec.engine.clone(),
                            detail: "synth supports invariant and ltl properties".into(),
                        }],
                        None,
                    );
                }
            };
            let verifier = Verifier::new(&model.system).engine(engine).options(opts);
            let synth_engine = verifier.synthesis_engine(&prop);
            match verifier.synthesize_params_durable(
                &params,
                &prop,
                &verdict_mc::Durability::none(),
            ) {
                Ok(result) => {
                    let rows = result
                        .verdicts
                        .iter()
                        .map(|v| {
                            let assignment: Vec<String> = result
                                .param_names
                                .iter()
                                .zip(&v.values)
                                .map(|(n, x)| format!("{n}={x}"))
                                .collect();
                            VerdictRow {
                                name: assignment.join(","),
                                verdict: verdict_tag(&v.result).to_string(),
                                reason: match &v.result {
                                    CheckResult::Unknown(r) => Some(r.tag().to_string()),
                                    _ => None,
                                },
                                engine: format!("{synth_engine:?}").to_lowercase(),
                                detail: v.result.to_string(),
                            }
                        })
                        .collect();
                    (rows, None)
                }
                Err(e) => (
                    vec![VerdictRow {
                        name: name.clone(),
                        verdict: "unknown".into(),
                        reason: Some(UnknownReason::EngineFailure.tag().into()),
                        engine: spec.engine.clone(),
                        detail: e.to_string(),
                    }],
                    None,
                ),
            }
        }
    }
}

/// The same coarse verdict bucket the CLI uses.
fn verdict_tag(r: &CheckResult) -> &'static str {
    match r {
        CheckResult::Holds => "safe",
        CheckResult::Violated(_) => "unsafe",
        CheckResult::Unknown(UnknownReason::Cancelled) => "cancelled",
        CheckResult::Unknown(_) => "unknown",
    }
}

/// Serializes a job snapshot into a response document.
fn status_json(job: &Arc<Job>) -> Json {
    let g = job.state.lock().unwrap_or_else(|e| e.into_inner());
    proto::obj(vec![
        ("ok", Json::Bool(true)),
        ("job", Json::Int(job.id as i64)),
        ("state", Json::Str(g.phase.tag().to_string())),
        ("recovered", Json::Bool(g.recovered)),
        (
            "verdicts",
            Json::Arr(g.verdicts.iter().map(VerdictRow::to_json).collect()),
        ),
    ])
}

/// One connection: read JSONL requests, answer each. Uses a short read
/// timeout so the handler can notice server termination mid-read.
fn handle_connection(stream: UnixStream, inner: &Arc<Inner>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = stream;
    let Ok(mut writer) = reader.try_clone() else {
        return;
    };
    let mut acc: Vec<u8> = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        // Extract the next complete line, reading more as needed.
        let line = loop {
            if let Some(nl) = acc.iter().position(|&b| b == b'\n') {
                let raw: Vec<u8> = acc.drain(..=nl).collect();
                break String::from_utf8_lossy(&raw[..raw.len() - 1]).into_owned();
            }
            match reader.read(&mut buf) {
                Ok(0) => return,
                Ok(n) => acc.extend_from_slice(&buf[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if inner.terminating.load(Ordering::Acquire) {
                        return;
                    }
                }
                Err(_) => return,
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let response_ok = match Request::parse(&line) {
            Ok(req) => respond(&req, inner, &mut writer),
            Err(e) => write_line(
                &mut writer,
                &Rejection::new("bad-request").with_detail(e).to_json(),
            ),
        };
        if response_ok.is_err() {
            return;
        }
    }
}

fn write_line(w: &mut UnixStream, v: &Json) -> io::Result<()> {
    let mut line = v.to_string();
    line.push('\n');
    w.write_all(line.as_bytes())
}

/// Answers one request. Errors mean the client hung up.
fn respond(req: &Request, inner: &Arc<Inner>, w: &mut UnixStream) -> io::Result<()> {
    match req {
        Request::Ping => write_line(w, &proto::obj(vec![("ok", Json::Bool(true))])),
        Request::Submit(spec) => match submit(inner, spec.clone()) {
            Ok(id) => write_line(
                w,
                &proto::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("job", Json::Int(id as i64)),
                ]),
            ),
            Err(r) => write_line(w, &r.to_json()),
        },
        Request::Status { job } => {
            let found = {
                let jobs = inner.jobs.lock().unwrap_or_else(|e| e.into_inner());
                jobs.get(job).cloned()
            };
            match found {
                Some(j) => write_line(w, &status_json(&j)),
                None => write_line(
                    w,
                    &Rejection::new("bad-request")
                        .with_detail(format!("no job {job}"))
                        .to_json(),
                ),
            }
        }
        Request::Wait { job } => {
            let found = {
                let jobs = inner.jobs.lock().unwrap_or_else(|e| e.into_inner());
                jobs.get(job).cloned()
            };
            let Some(j) = found else {
                return write_line(
                    w,
                    &Rejection::new("bad-request")
                        .with_detail(format!("no job {job}"))
                        .to_json(),
                );
            };
            // Stream trace events as they land, then the final state.
            let mut seen = 0usize;
            loop {
                let (pending, finished): (Vec<String>, bool) = {
                    let g = j.state.lock().unwrap_or_else(|e| e.into_inner());
                    let pending = g.events[seen.min(g.events.len())..].to_vec();
                    (
                        pending,
                        matches!(g.phase, JobPhase::Done | JobPhase::Cancelled),
                    )
                };
                for ev in &pending {
                    seen += 1;
                    // Events are verbatim PR-5 trace JSONL lines.
                    let mut framed = format!("{{\"job\":{},\"event\":{ev}}}", j.id);
                    framed.push('\n');
                    w.write_all(framed.as_bytes())?;
                }
                if finished {
                    return write_line(w, &status_json(&j));
                }
                if inner.terminating.load(Ordering::Acquire) {
                    return write_line(
                        w,
                        &Rejection::new("draining")
                            .with_detail("server shutting down".into())
                            .to_json(),
                    );
                }
                let g = j.state.lock().unwrap_or_else(|e| e.into_inner());
                let _ =
                    j.cv.wait_timeout(g, Duration::from_millis(100))
                        .unwrap_or_else(|e| e.into_inner());
            }
        }
        Request::Cancel { job } => match cancel(inner, *job) {
            Ok(()) => write_line(w, &proto::obj(vec![("ok", Json::Bool(true))])),
            Err(r) => write_line(w, &r.to_json()),
        },
        Request::Stats => {
            let mut stats = inner
                .engine_stats
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone();
            stats.server = inner.server_counters();
            // to_json is already a JSON document; frame it raw.
            let mut line = format!("{{\"ok\":true,\"stats\":{}}}", stats.to_json());
            line.push('\n');
            w.write_all(line.as_bytes())
        }
        Request::Shutdown => {
            inner.stop.store(true, Ordering::Release);
            inner.queue_cv.notify_all();
            write_line(
                w,
                &proto::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("draining", Json::Bool(true)),
                ]),
            )
        }
    }
}
