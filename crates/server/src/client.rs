//! A blocking client for the daemon's Unix-socket JSONL API.
//!
//! One [`Client`] wraps one connection. Requests are serialized calls;
//! [`Client::wait`] additionally streams the job's trace events through
//! a callback before returning the final outcome.
//!
//! Resilience: sockets carry read/write timeouts (`SO_RCVTIMEO` /
//! `SO_SNDTIMEO`) so a wedged daemon surfaces as a structured
//! [`ClientError::Timeout`] instead of a client that blocks forever —
//! the server sends periodic keepalive lines on long `wait` streams so
//! a healthy-but-slow job never trips it. [`Client::connect_with_retry`]
//! uses seeded jittered backoff so a fleet of restarting clients does
//! not stampede the socket, and [`Client::submit_resilient`] retries a
//! submit across reconnects under an idempotency key, so the job never
//! double-runs.

use std::io::{self, Read as _, Write as _};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use verdict_journal::json::{parse, Json};
use verdict_mc::RetryPolicy;

use crate::proto::{JobSpec, Rejection, Request, VerdictRow};

/// Default socket read/write timeout. Generous relative to the server's
/// ~1 s keepalive cadence on `wait` streams: only a daemon that has
/// stopped writing *anything* for this long trips it.
const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// The terminal snapshot of a job, as reported by `status`/`wait`.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Job id.
    pub job: u64,
    /// `queued` / `running` / `done` / `cancelled`.
    pub state: String,
    /// True when the verdicts came from WAL recovery, not a fresh run.
    pub recovered: bool,
    /// Per-property (or per-assignment, for synth) verdict rows.
    pub verdicts: Vec<VerdictRow>,
}

impl JobOutcome {
    fn from_json(v: &Json) -> Result<JobOutcome, String> {
        let job = v
            .get("job")
            .and_then(Json::as_int)
            .ok_or("missing job id")? as u64;
        let state = v
            .get("state")
            .and_then(Json::as_str)
            .ok_or("missing state")?
            .to_string();
        let recovered = matches!(v.get("recovered"), Some(Json::Bool(true)));
        let verdicts = match v.get("verdicts").and_then(Json::as_arr) {
            Some(rows) => rows
                .iter()
                .map(VerdictRow::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        Ok(JobOutcome {
            job,
            state,
            recovered,
            verdicts,
        })
    }
}

/// Client-side failures: transport errors, timeouts, server rejections,
/// or malformed responses.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (daemon gone, connection refused, …).
    Io(io::Error),
    /// The socket read/write timeout elapsed — the daemon stopped
    /// responding mid-exchange (wedged or killed without closing).
    Timeout(io::Error),
    /// The server answered with a structured rejection.
    Rejected(Rejection),
    /// The server's response didn't parse.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Timeout(e) => write!(f, "client timeout: daemon unresponsive ({e})"),
            ClientError::Rejected(r) => {
                write!(f, "rejected: {}", r.reason)?;
                if let Some(d) = &r.detail {
                    write!(f, " ({d})")?;
                }
                Ok(())
            }
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        if matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        ) {
            ClientError::Timeout(e)
        } else {
            ClientError::Io(e)
        }
    }
}

/// Monotone per-process counter feeding generated idempotency keys.
static IDEM_SEQ: AtomicU64 = AtomicU64::new(0);

/// A process-unique idempotency key: pid + wall-clock nanos + sequence.
fn generate_idem_key() -> String {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    format!(
        "c{}-{:x}-{}",
        std::process::id(),
        nanos,
        IDEM_SEQ.fetch_add(1, Ordering::Relaxed)
    )
}

/// A connection to a running daemon.
pub struct Client {
    stream: UnixStream,
    acc: Vec<u8>,
    socket: PathBuf,
    io_timeout: Option<Duration>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl Client {
    fn from_stream(stream: UnixStream, socket: PathBuf) -> Result<Client, ClientError> {
        stream.set_read_timeout(Some(DEFAULT_IO_TIMEOUT))?;
        stream.set_write_timeout(Some(DEFAULT_IO_TIMEOUT))?;
        Ok(Client {
            stream,
            acc: Vec::new(),
            socket,
            io_timeout: Some(DEFAULT_IO_TIMEOUT),
        })
    }

    /// Connects to the daemon's socket. The connection carries a 30 s
    /// read/write timeout (see [`Client::set_io_timeout`]).
    pub fn connect(socket: impl AsRef<Path>) -> Result<Client, ClientError> {
        let stream = UnixStream::connect(socket.as_ref())?;
        Client::from_stream(stream, socket.as_ref().to_path_buf())
    }

    /// Connects, retrying for up to `patience` — for scripts that start
    /// the daemon and immediately submit. Retries back off with seeded
    /// jitter (the PR-4 retry helper) so many clients restarting
    /// together spread their attempts instead of stampeding the socket.
    pub fn connect_with_retry(
        socket: impl AsRef<Path>,
        patience: Duration,
    ) -> Result<Client, ClientError> {
        let deadline = Instant::now() + patience;
        let policy = RetryPolicy::with_retries(u32::MAX)
            .with_backoff(Duration::from_millis(10))
            .with_seed(u64::from(std::process::id()));
        let mut attempt: u32 = 1;
        loop {
            match UnixStream::connect(socket.as_ref()) {
                Ok(stream) => {
                    return Client::from_stream(stream, socket.as_ref().to_path_buf());
                }
                Err(e) if Instant::now() >= deadline => return Err(e.into()),
                Err(_) => {
                    attempt = attempt.saturating_add(1);
                    let pause = policy
                        .backoff_for(0, attempt)
                        .min(Duration::from_millis(250));
                    std::thread::sleep(pause.max(Duration::from_millis(5)));
                }
            }
        }
    }

    /// Overrides the socket read/write timeout (`None` = block forever,
    /// the pre-supervision behaviour).
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)?;
        self.io_timeout = timeout;
        Ok(())
    }

    /// Drops the current connection and dials the socket again.
    fn reconnect(&mut self, patience: Duration) -> Result<(), ClientError> {
        let fresh = Client::connect_with_retry(&self.socket, patience)?;
        self.stream = fresh.stream;
        self.acc.clear();
        let t = self.io_timeout;
        self.set_io_timeout(t)
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        let mut line = req.to_line();
        line.push('\n');
        self.stream.write_all(line.as_bytes())?;
        Ok(())
    }

    /// Reads the next JSONL line from the server.
    fn read_doc(&mut self) -> Result<Json, ClientError> {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(nl) = self.acc.iter().position(|&b| b == b'\n') {
                let raw: Vec<u8> = self.acc.drain(..=nl).collect();
                let line = String::from_utf8_lossy(&raw[..raw.len() - 1]).into_owned();
                return parse(&line).map_err(|e| ClientError::Protocol(e.to_string()));
            }
            match self.stream.read(&mut buf)? {
                0 => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                n => self.acc.extend_from_slice(&buf[..n]),
            }
        }
    }

    /// Turns `{"ok":false,…}` responses into [`ClientError::Rejected`].
    fn expect_ok(doc: Json) -> Result<Json, ClientError> {
        match doc.get("ok") {
            Some(Json::Bool(true)) => Ok(doc),
            _ => match Rejection::from_json(&doc) {
                Ok(r) => Err(ClientError::Rejected(r)),
                Err(m) => Err(ClientError::Protocol(m)),
            },
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Ping)?;
        Self::expect_ok(self.read_doc()?).map(|_| ())
    }

    /// Submits a job; `Ok` means the job is durably journaled.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, ClientError> {
        self.send(&Request::Submit(spec.clone()))?;
        let doc = Self::expect_ok(self.read_doc()?)?;
        doc.get("job")
            .and_then(Json::as_int)
            .map(|j| j as u64)
            .ok_or_else(|| ClientError::Protocol("submit ack missing job id".into()))
    }

    /// Submits a job, riding out transport failures: on an I/O error or
    /// timeout it reconnects (jittered) and resubmits until `patience`
    /// runs out. The spec is pinned to an idempotency key first
    /// (generating one if the caller didn't), so a submit whose *ack*
    /// was lost is deduplicated by the daemon instead of double-run.
    /// Rejections and protocol errors are not retried.
    pub fn submit_resilient(
        &mut self,
        spec: &JobSpec,
        patience: Duration,
    ) -> Result<u64, ClientError> {
        let mut spec = spec.clone();
        if spec.idem.is_none() {
            spec.idem = Some(generate_idem_key());
        }
        let deadline = Instant::now() + patience;
        let policy = RetryPolicy::with_retries(u32::MAX)
            .with_backoff(Duration::from_millis(20))
            .with_seed(u64::from(std::process::id()) ^ 0x5eed);
        let mut attempt: u32 = 1;
        loop {
            match self.submit(&spec) {
                Ok(id) => return Ok(id),
                Err(e @ (ClientError::Rejected(_) | ClientError::Protocol(_))) => return Err(e),
                Err(e @ (ClientError::Io(_) | ClientError::Timeout(_))) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    attempt = attempt.saturating_add(1);
                    let pause = policy
                        .backoff_for(0, attempt)
                        .min(Duration::from_millis(500));
                    std::thread::sleep(pause.max(Duration::from_millis(5)));
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    self.reconnect(remaining.max(Duration::from_millis(50)))?;
                }
            }
        }
    }

    /// A point-in-time snapshot of a job.
    pub fn status(&mut self, job: u64) -> Result<JobOutcome, ClientError> {
        self.send(&Request::Status { job })?;
        let doc = Self::expect_ok(self.read_doc()?)?;
        JobOutcome::from_json(&doc).map_err(ClientError::Protocol)
    }

    /// Blocks until the job finishes, feeding each streamed trace event
    /// line (a PR-5 trace JSONL document) to `on_event`. Server
    /// keepalive lines (sent so the socket timeout doesn't fire on
    /// long-running jobs) are consumed silently.
    pub fn wait(
        &mut self,
        job: u64,
        mut on_event: impl FnMut(&str),
    ) -> Result<JobOutcome, ClientError> {
        self.send(&Request::Wait { job })?;
        loop {
            let doc = self.read_doc()?;
            if matches!(doc.get("keepalive"), Some(Json::Bool(true))) {
                continue;
            }
            if let Some(ev) = doc.get("event") {
                on_event(&ev.to_string());
                continue;
            }
            let doc = Self::expect_ok(doc)?;
            return JobOutcome::from_json(&doc).map_err(ClientError::Protocol);
        }
    }

    /// Requests cancellation; durable once this returns `Ok`.
    pub fn cancel(&mut self, job: u64) -> Result<(), ClientError> {
        self.send(&Request::Cancel { job })?;
        Self::expect_ok(self.read_doc()?).map(|_| ())
    }

    /// Fetches the server's schema-2 stats document (engine counters
    /// plus the `server` and `supervision` groups).
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.send(&Request::Stats)?;
        let doc = Self::expect_ok(self.read_doc()?)?;
        doc.get("stats")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("stats response missing stats".into()))
    }

    /// Lifts a quarantine by spec fingerprint (as printed in a
    /// `quarantined` rejection). Returns true if an armed quarantine
    /// was actually cleared.
    pub fn unquarantine(&mut self, fp: &str) -> Result<bool, ClientError> {
        self.send(&Request::Unquarantine { fp: fp.to_string() })?;
        let doc = Self::expect_ok(self.read_doc()?)?;
        Ok(matches!(doc.get("cleared"), Some(Json::Bool(true))))
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)?;
        Self::expect_ok(self.read_doc()?).map(|_| ())
    }
}
