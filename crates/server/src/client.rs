//! A blocking client for the daemon's Unix-socket JSONL API.
//!
//! One [`Client`] wraps one connection. Requests are serialized calls;
//! [`Client::wait`] additionally streams the job's trace events through
//! a callback before returning the final outcome.

use std::io::{self, Read as _, Write as _};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use verdict_journal::json::{parse, Json};

use crate::proto::{JobSpec, Rejection, Request, VerdictRow};

/// The terminal snapshot of a job, as reported by `status`/`wait`.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Job id.
    pub job: u64,
    /// `queued` / `running` / `done` / `cancelled`.
    pub state: String,
    /// True when the verdicts came from WAL recovery, not a fresh run.
    pub recovered: bool,
    /// Per-property (or per-assignment, for synth) verdict rows.
    pub verdicts: Vec<VerdictRow>,
}

impl JobOutcome {
    fn from_json(v: &Json) -> Result<JobOutcome, String> {
        let job = v
            .get("job")
            .and_then(Json::as_int)
            .ok_or("missing job id")? as u64;
        let state = v
            .get("state")
            .and_then(Json::as_str)
            .ok_or("missing state")?
            .to_string();
        let recovered = matches!(v.get("recovered"), Some(Json::Bool(true)));
        let verdicts = match v.get("verdicts").and_then(Json::as_arr) {
            Some(rows) => rows
                .iter()
                .map(VerdictRow::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        Ok(JobOutcome {
            job,
            state,
            recovered,
            verdicts,
        })
    }
}

/// Client-side failures: transport errors, server rejections, or
/// malformed responses.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (daemon gone, connection refused, …).
    Io(io::Error),
    /// The server answered with a structured rejection.
    Rejected(Rejection),
    /// The server's response didn't parse.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Rejected(r) => {
                write!(f, "rejected: {}", r.reason)?;
                if let Some(d) = &r.detail {
                    write!(f, " ({d})")?;
                }
                Ok(())
            }
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A connection to a running daemon.
pub struct Client {
    stream: UnixStream,
    acc: Vec<u8>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl Client {
    /// Connects to the daemon's socket.
    pub fn connect(socket: impl AsRef<Path>) -> Result<Client, ClientError> {
        let stream = UnixStream::connect(socket.as_ref())?;
        Ok(Client {
            stream,
            acc: Vec::new(),
        })
    }

    /// Connects, retrying for up to `patience` — for scripts that start
    /// the daemon and immediately submit.
    pub fn connect_with_retry(
        socket: impl AsRef<Path>,
        patience: Duration,
    ) -> Result<Client, ClientError> {
        let deadline = std::time::Instant::now() + patience;
        loop {
            match UnixStream::connect(socket.as_ref()) {
                Ok(stream) => {
                    return Ok(Client {
                        stream,
                        acc: Vec::new(),
                    })
                }
                Err(e) if std::time::Instant::now() >= deadline => return Err(e.into()),
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        let mut line = req.to_line();
        line.push('\n');
        self.stream.write_all(line.as_bytes())?;
        Ok(())
    }

    /// Reads the next JSONL line from the server.
    fn read_doc(&mut self) -> Result<Json, ClientError> {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(nl) = self.acc.iter().position(|&b| b == b'\n') {
                let raw: Vec<u8> = self.acc.drain(..=nl).collect();
                let line = String::from_utf8_lossy(&raw[..raw.len() - 1]).into_owned();
                return parse(&line).map_err(|e| ClientError::Protocol(e.to_string()));
            }
            match self.stream.read(&mut buf)? {
                0 => {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )))
                }
                n => self.acc.extend_from_slice(&buf[..n]),
            }
        }
    }

    /// Turns `{"ok":false,…}` responses into [`ClientError::Rejected`].
    fn expect_ok(doc: Json) -> Result<Json, ClientError> {
        match doc.get("ok") {
            Some(Json::Bool(true)) => Ok(doc),
            _ => match Rejection::from_json(&doc) {
                Ok(r) => Err(ClientError::Rejected(r)),
                Err(m) => Err(ClientError::Protocol(m)),
            },
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Ping)?;
        Self::expect_ok(self.read_doc()?).map(|_| ())
    }

    /// Submits a job; `Ok` means the job is durably journaled.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, ClientError> {
        self.send(&Request::Submit(spec.clone()))?;
        let doc = Self::expect_ok(self.read_doc()?)?;
        doc.get("job")
            .and_then(Json::as_int)
            .map(|j| j as u64)
            .ok_or_else(|| ClientError::Protocol("submit ack missing job id".into()))
    }

    /// A point-in-time snapshot of a job.
    pub fn status(&mut self, job: u64) -> Result<JobOutcome, ClientError> {
        self.send(&Request::Status { job })?;
        let doc = Self::expect_ok(self.read_doc()?)?;
        JobOutcome::from_json(&doc).map_err(ClientError::Protocol)
    }

    /// Blocks until the job finishes, feeding each streamed trace event
    /// line (a PR-5 trace JSONL document) to `on_event`.
    pub fn wait(
        &mut self,
        job: u64,
        mut on_event: impl FnMut(&str),
    ) -> Result<JobOutcome, ClientError> {
        self.send(&Request::Wait { job })?;
        loop {
            let doc = self.read_doc()?;
            if let Some(ev) = doc.get("event") {
                on_event(&ev.to_string());
                continue;
            }
            let doc = Self::expect_ok(doc)?;
            return JobOutcome::from_json(&doc).map_err(ClientError::Protocol);
        }
    }

    /// Requests cancellation; durable once this returns `Ok`.
    pub fn cancel(&mut self, job: u64) -> Result<(), ClientError> {
        self.send(&Request::Cancel { job })?;
        Self::expect_ok(self.read_doc()?).map(|_| ())
    }

    /// Fetches the server's schema-2 stats document (engine counters
    /// plus the `server` group).
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.send(&Request::Stats)?;
        let doc = Self::expect_ok(self.read_doc()?)?;
        doc.get("stats")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("stats response missing stats".into()))
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)?;
        Self::expect_ok(self.read_doc()?).map(|_| ())
    }
}
