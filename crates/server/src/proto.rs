//! Wire protocol and WAL record shapes.
//!
//! Everything on the socket and in the WAL is line-delimited JSON built
//! with the journal's in-tree parser — no external dependencies. One
//! request per line; most operations answer with exactly one line, and
//! `wait` streams `{"job":N,"event":…}` lines (PR-5 trace events,
//! verbatim) before its final document.

use std::collections::BTreeMap;

use verdict_journal::json::{parse, Json};

/// Builds a JSON object from ordered pairs.
pub(crate) fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

/// What kind of work a job runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// Check every (or one named) property of the model.
    Check,
    /// Parameter synthesis sweep over the named frozen params.
    Synth,
}

impl JobKind {
    /// Stable lowercase tag used on the wire and in the WAL.
    pub fn tag(self) -> &'static str {
        match self {
            JobKind::Check => "check",
            JobKind::Synth => "synth",
        }
    }

    /// Parses a tag produced by [`JobKind::tag`].
    pub fn from_tag(s: &str) -> Option<JobKind> {
        match s {
            "check" => Some(JobKind::Check),
            "synth" => Some(JobKind::Synth),
            _ => None,
        }
    }
}

/// A job request: the model source travels inline so the daemon never
/// depends on the submitter's filesystem, and so the WAL's `submit`
/// record pins the exact model — recovery re-runs byte-identical input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Check or synth.
    pub kind: JobKind,
    /// The `.vd` model source text.
    pub source: String,
    /// Restrict to one named property (required for synth with several).
    pub prop: Option<String>,
    /// Engine tag (`auto`, `bmc`, `kind`, `bdd`, `explicit`, `smtbmc`,
    /// `portfolio`).
    pub engine: String,
    /// Unrolling depth bound; engine default when absent.
    pub depth: Option<usize>,
    /// Wall-clock budget for the whole job, in milliseconds. Counted
    /// from *admission*: time spent waiting in the queue is charged
    /// against it, so a client's deadline means what it says.
    pub deadline_ms: Option<u64>,
    /// Frozen parameter names (synth only).
    pub params: Vec<String>,
    /// Certify verdicts before reporting (trace replay + proof
    /// re-checking), exactly like the CLI's `--certify`.
    pub certify: bool,
    /// Client-chosen idempotency key: a resubmit carrying a key the
    /// daemon has already admitted returns the original job id instead
    /// of double-running — what makes reconnect-and-resubmit safe.
    pub idem: Option<String>,
}

impl JobSpec {
    /// A check job over `source` with defaults everywhere else.
    pub fn check(source: &str) -> JobSpec {
        JobSpec {
            kind: JobKind::Check,
            source: source.to_string(),
            prop: None,
            engine: "auto".to_string(),
            depth: None,
            deadline_ms: None,
            params: Vec::new(),
            certify: false,
            idem: None,
        }
    }

    /// A synth job over `source` sweeping `params`.
    pub fn synth(source: &str, params: &[&str]) -> JobSpec {
        JobSpec {
            kind: JobKind::Synth,
            source: source.to_string(),
            prop: None,
            engine: "auto".to_string(),
            depth: None,
            deadline_ms: None,
            params: params.iter().map(|p| p.to_string()).collect(),
            certify: false,
            idem: None,
        }
    }

    /// The spec's check fingerprint: a stable 64-bit hash over the
    /// fields that determine *what runs* (kind, source, prop, engine,
    /// depth, params) — deadlines and idempotency keys are excluded.
    /// The quarantine table and the hedge-latency sketch key on this.
    pub fn fingerprint(&self) -> u64 {
        let canon = format!(
            "{}\u{0}{}\u{0}{}\u{0}{}\u{0}{}\u{0}{}",
            self.kind.tag(),
            self.source,
            self.prop.as_deref().unwrap_or(""),
            self.engine,
            self.depth.map_or(-1i64, |d| d as i64),
            self.params.join(","),
        );
        verdict_journal::fnv1a64(canon.as_bytes())
    }

    /// JSON form (wire `submit` requests and WAL `submit` records).
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("kind", Json::Str(self.kind.tag().to_string())),
            ("source", Json::Str(self.source.clone())),
            (
                "prop",
                self.prop
                    .as_ref()
                    .map_or(Json::Null, |p| Json::Str(p.clone())),
            ),
            ("engine", Json::Str(self.engine.clone())),
            (
                "depth",
                self.depth.map_or(Json::Null, |d| Json::Int(d as i64)),
            ),
            (
                "deadline_ms",
                self.deadline_ms.map_or(Json::Null, |d| Json::Int(d as i64)),
            ),
            (
                "params",
                Json::Arr(self.params.iter().map(|p| Json::Str(p.clone())).collect()),
            ),
            ("certify", Json::Bool(self.certify)),
            (
                "idem",
                self.idem
                    .as_ref()
                    .map_or(Json::Null, |k| Json::Str(k.clone())),
            ),
        ])
    }

    /// Parses the JSON form.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .and_then(JobKind::from_tag)
            .ok_or("spec missing or bad `kind`")?;
        let source = v
            .get("source")
            .and_then(Json::as_str)
            .ok_or("spec missing `source`")?
            .to_string();
        let params = match v.get("params") {
            None | Some(Json::Null) => Vec::new(),
            Some(p) => p
                .as_arr()
                .ok_or("spec `params` must be an array")?
                .iter()
                .map(|x| {
                    x.as_str()
                        .map(str::to_string)
                        .ok_or("non-string param name")
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(JobSpec {
            kind,
            source,
            prop: v.get("prop").and_then(Json::as_str).map(str::to_string),
            engine: v
                .get("engine")
                .and_then(Json::as_str)
                .unwrap_or("auto")
                .to_string(),
            depth: v.get("depth").and_then(Json::as_int).map(|d| d as usize),
            deadline_ms: v
                .get("deadline_ms")
                .and_then(Json::as_int)
                .map(|d| d as u64),
            params,
            certify: matches!(v.get("certify"), Some(Json::Bool(true))),
            idem: v.get("idem").and_then(Json::as_str).map(str::to_string),
        })
    }
}

/// One per-property (check) or per-assignment (synth) verdict row, as
/// carried in WAL `done` records and in `status`/`wait` responses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerdictRow {
    /// Property name (check) or `a=1,b=2`-style assignment (synth).
    pub name: String,
    /// Coarse tag: `safe`, `unsafe`, `unknown`, `cancelled`.
    pub verdict: String,
    /// `UnknownReason` tag when `verdict` is `unknown`/`cancelled`.
    pub reason: Option<String>,
    /// The engine that produced the verdict.
    pub engine: String,
    /// Human-readable detail (counterexample summary etc.).
    pub detail: String,
}

impl VerdictRow {
    /// JSON form.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("verdict", Json::Str(self.verdict.clone())),
            (
                "reason",
                self.reason
                    .as_ref()
                    .map_or(Json::Null, |r| Json::Str(r.clone())),
            ),
            ("engine", Json::Str(self.engine.clone())),
            ("detail", Json::Str(self.detail.clone())),
        ])
    }

    /// Parses the JSON form.
    pub fn from_json(v: &Json) -> Result<VerdictRow, String> {
        let field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("verdict row missing `{k}`"))
        };
        Ok(VerdictRow {
            name: field("name")?,
            verdict: field("verdict")?,
            reason: v.get("reason").and_then(Json::as_str).map(str::to_string),
            engine: field("engine")?,
            detail: field("detail")?,
        })
    }

    /// True for decided verdicts (safe/unsafe) — the PR-4 re-gating
    /// policy trusts these across a restart; anything else re-runs.
    pub fn decided(&self) -> bool {
        self.verdict == "safe" || self.verdict == "unsafe"
    }
}

/// A parsed client request (one JSONL line).
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Admit a job.
    Submit(JobSpec),
    /// Snapshot one job's state.
    Status {
        /// Job id.
        job: u64,
    },
    /// Stream a job's trace events, then its final state.
    Wait {
        /// Job id.
        job: u64,
    },
    /// Cancel a queued or running job (durably journaled).
    Cancel {
        /// Job id.
        job: u64,
    },
    /// Server stats (schema-2 JSON, including the `server` and
    /// `supervision` groups).
    Stats,
    /// Lift a quarantine: re-admit the spec fingerprint (as printed in
    /// a `quarantined` rejection) before its TTL expires.
    Unquarantine {
        /// The spec fingerprint, as a 16-digit lowercase hex string.
        fp: String,
    },
    /// Begin graceful drain, as if SIGTERM arrived.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = parse(line).map_err(|e| e.to_string())?;
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request missing `op`")?;
        let job = || -> Result<u64, String> {
            v.get("job")
                .and_then(Json::as_int)
                .filter(|&j| j >= 0)
                .map(|j| j as u64)
                .ok_or_else(|| "request missing `job`".to_string())
        };
        match op {
            "ping" => Ok(Request::Ping),
            "submit" => {
                let spec = v.get("spec").ok_or("submit missing `spec`")?;
                Ok(Request::Submit(JobSpec::from_json(spec)?))
            }
            "status" => Ok(Request::Status { job: job()? }),
            "wait" => Ok(Request::Wait { job: job()? }),
            "cancel" => Ok(Request::Cancel { job: job()? }),
            "stats" => Ok(Request::Stats),
            "unquarantine" => Ok(Request::Unquarantine {
                fp: v
                    .get("fp")
                    .and_then(Json::as_str)
                    .ok_or("unquarantine missing `fp`")?
                    .to_string(),
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// Serializes this request to its wire line (no newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Ping => obj(vec![("op", Json::Str("ping".into()))]),
            Request::Submit(spec) => obj(vec![
                ("op", Json::Str("submit".into())),
                ("spec", spec.to_json()),
            ]),
            Request::Status { job } => obj(vec![
                ("op", Json::Str("status".into())),
                ("job", Json::Int(*job as i64)),
            ]),
            Request::Wait { job } => obj(vec![
                ("op", Json::Str("wait".into())),
                ("job", Json::Int(*job as i64)),
            ]),
            Request::Cancel { job } => obj(vec![
                ("op", Json::Str("cancel".into())),
                ("job", Json::Int(*job as i64)),
            ]),
            Request::Stats => obj(vec![("op", Json::Str("stats".into()))]),
            Request::Unquarantine { fp } => obj(vec![
                ("op", Json::Str("unquarantine".into())),
                ("fp", Json::Str(fp.clone())),
            ]),
            Request::Shutdown => obj(vec![("op", Json::Str("shutdown".into()))]),
        }
        .to_string()
    }
}

/// A structured admission refusal. The daemon never blocks or queues
/// unboundedly: a submit either returns a job id or one of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rejection {
    /// Machine-readable reason: `queue-full`, `draining`, `parse-error`,
    /// `bad-request`, `wal-error`, or `quarantined`.
    pub reason: String,
    /// Human-readable detail, when there is more to say.
    pub detail: Option<String>,
    /// Jobs currently queued (present for `queue-full`).
    pub queued: Option<u64>,
    /// The admission queue's capacity (present for `queue-full`).
    pub capacity: Option<u64>,
    /// The spec fingerprint, hex (present for `quarantined`) — pass it
    /// to the `unquarantine` op to lift the circuit breaker early.
    pub fingerprint: Option<String>,
    /// Milliseconds until the quarantine TTL expires (present for
    /// `quarantined`).
    pub retry_after_ms: Option<u64>,
}

impl Rejection {
    /// A bare rejection with only a reason tag.
    pub fn new(reason: &str) -> Rejection {
        Rejection {
            reason: reason.to_string(),
            detail: None,
            queued: None,
            capacity: None,
            fingerprint: None,
            retry_after_ms: None,
        }
    }

    /// Adds human-readable detail.
    pub fn with_detail(mut self, detail: String) -> Rejection {
        self.detail = Some(detail);
        self
    }

    /// JSON form (merged into the `ok:false` response).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("ok", Json::Bool(false)),
            ("reason", Json::Str(self.reason.clone())),
        ];
        if let Some(d) = &self.detail {
            pairs.push(("detail", Json::Str(d.clone())));
        }
        if let Some(q) = self.queued {
            pairs.push(("queued", Json::Int(q as i64)));
        }
        if let Some(c) = self.capacity {
            pairs.push(("capacity", Json::Int(c as i64)));
        }
        if let Some(fp) = &self.fingerprint {
            pairs.push(("fingerprint", Json::Str(fp.clone())));
        }
        if let Some(ms) = self.retry_after_ms {
            pairs.push(("retry_after_ms", Json::Int(ms as i64)));
        }
        obj(pairs)
    }

    /// Parses the JSON form of an `ok:false` response.
    pub fn from_json(v: &Json) -> Result<Rejection, String> {
        if !matches!(v.get("ok"), Some(Json::Bool(false))) {
            return Err(format!("not a rejection: {v}"));
        }
        Ok(Rejection {
            reason: v
                .get("reason")
                .and_then(Json::as_str)
                .ok_or("rejection missing `reason`")?
                .to_string(),
            detail: v.get("detail").and_then(Json::as_str).map(str::to_string),
            queued: v.get("queued").and_then(Json::as_int).map(|q| q as u64),
            capacity: v.get("capacity").and_then(Json::as_int).map(|c| c as u64),
            fingerprint: v
                .get("fingerprint")
                .and_then(Json::as_str)
                .map(str::to_string),
            retry_after_ms: v
                .get("retry_after_ms")
                .and_then(Json::as_int)
                .map(|m| m as u64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trip() {
        let spec = JobSpec {
            kind: JobKind::Synth,
            source: "system s { var n : 0..3; init n = 0; trans next(n) = n; }".into(),
            prop: Some("miss".into()),
            engine: "kind".into(),
            depth: Some(32),
            deadline_ms: Some(5000),
            params: vec!["a".into(), "b".into()],
            certify: true,
            idem: Some("client-7-42".into()),
        };
        assert_eq!(
            JobSpec::from_json(&parse(&spec.to_json().to_string()).unwrap()).unwrap(),
            spec
        );
        let bare = JobSpec::check("system s {}");
        assert_eq!(
            JobSpec::from_json(&parse(&bare.to_json().to_string()).unwrap()).unwrap(),
            bare
        );
    }

    #[test]
    fn fingerprint_ignores_deadline_and_idem() {
        let mut a = JobSpec::check("system s {}");
        let mut b = a.clone();
        b.deadline_ms = Some(100);
        b.idem = Some("k".into());
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.engine = "bdd".into();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn request_round_trip() {
        for req in [
            Request::Ping,
            Request::Submit(JobSpec::check("x")),
            Request::Status { job: 3 },
            Request::Wait { job: 9 },
            Request::Cancel { job: 1 },
            Request::Stats,
            Request::Unquarantine {
                fp: "00ff00ff00ff00ff".into(),
            },
            Request::Shutdown,
        ] {
            assert_eq!(Request::parse(&req.to_line()).unwrap(), req);
        }
        assert!(Request::parse("{\"op\":\"nope\"}").is_err());
        assert!(Request::parse("garbage").is_err());
        assert!(Request::parse("{\"op\":\"status\"}").is_err());
    }

    #[test]
    fn rejection_shape() {
        let r = Rejection {
            reason: "queue-full".into(),
            detail: None,
            queued: Some(8),
            capacity: Some(8),
            fingerprint: None,
            retry_after_ms: None,
        };
        let line = r.to_json().to_string();
        assert!(line.contains("\"ok\":false"));
        assert!(line.contains("\"reason\":\"queue-full\""));
        assert!(line.contains("\"queued\":8"));
        let mut q = Rejection::new("quarantined");
        q.fingerprint = Some("00ff00ff00ff00ff".into());
        q.retry_after_ms = Some(1234);
        let parsed = Rejection::from_json(&parse(&q.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(parsed, q);
    }
}
