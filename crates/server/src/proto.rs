//! Wire protocol and WAL record shapes.
//!
//! Everything on the socket and in the WAL is line-delimited JSON built
//! with the journal's in-tree parser — no external dependencies. One
//! request per line; most operations answer with exactly one line, and
//! `wait` streams `{"job":N,"event":…}` lines (PR-5 trace events,
//! verbatim) before its final document.

use std::collections::BTreeMap;

use verdict_journal::json::{parse, Json};

/// Builds a JSON object from ordered pairs.
pub(crate) fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

/// The job-spec types are the unified `verdict_mc::spec` ones — the
/// wire serializes exactly the type every local entry point builds, so
/// the local and remote paths cannot drift. Re-exported here so the
/// protocol module remains the one-stop import for wire shapes.
pub use verdict_mc::spec::{JobKind, JobSpec, VerdictRow};

/// A parsed client request (one JSONL line).
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Admit a job.
    Submit(JobSpec),
    /// Snapshot one job's state.
    Status {
        /// Job id.
        job: u64,
    },
    /// Stream a job's trace events, then its final state.
    Wait {
        /// Job id.
        job: u64,
    },
    /// Cancel a queued or running job (durably journaled).
    Cancel {
        /// Job id.
        job: u64,
    },
    /// Server stats (schema-2 JSON, including the `server` and
    /// `supervision` groups).
    Stats,
    /// Lift a quarantine: re-admit the spec fingerprint (as printed in
    /// a `quarantined` rejection) before its TTL expires.
    Unquarantine {
        /// The spec fingerprint, as a 16-digit lowercase hex string.
        fp: String,
    },
    /// Begin graceful drain, as if SIGTERM arrived.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = parse(line).map_err(|e| e.to_string())?;
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("request missing `op`")?;
        let job = || -> Result<u64, String> {
            v.get("job")
                .and_then(Json::as_int)
                .filter(|&j| j >= 0)
                .map(|j| j as u64)
                .ok_or_else(|| "request missing `job`".to_string())
        };
        match op {
            "ping" => Ok(Request::Ping),
            "submit" => {
                let spec = v.get("spec").ok_or("submit missing `spec`")?;
                Ok(Request::Submit(JobSpec::from_json(spec)?))
            }
            "status" => Ok(Request::Status { job: job()? }),
            "wait" => Ok(Request::Wait { job: job()? }),
            "cancel" => Ok(Request::Cancel { job: job()? }),
            "stats" => Ok(Request::Stats),
            "unquarantine" => Ok(Request::Unquarantine {
                fp: v
                    .get("fp")
                    .and_then(Json::as_str)
                    .ok_or("unquarantine missing `fp`")?
                    .to_string(),
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// Serializes this request to its wire line (no newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Ping => obj(vec![("op", Json::Str("ping".into()))]),
            Request::Submit(spec) => obj(vec![
                ("op", Json::Str("submit".into())),
                ("spec", spec.to_json()),
            ]),
            Request::Status { job } => obj(vec![
                ("op", Json::Str("status".into())),
                ("job", Json::Int(*job as i64)),
            ]),
            Request::Wait { job } => obj(vec![
                ("op", Json::Str("wait".into())),
                ("job", Json::Int(*job as i64)),
            ]),
            Request::Cancel { job } => obj(vec![
                ("op", Json::Str("cancel".into())),
                ("job", Json::Int(*job as i64)),
            ]),
            Request::Stats => obj(vec![("op", Json::Str("stats".into()))]),
            Request::Unquarantine { fp } => obj(vec![
                ("op", Json::Str("unquarantine".into())),
                ("fp", Json::Str(fp.clone())),
            ]),
            Request::Shutdown => obj(vec![("op", Json::Str("shutdown".into()))]),
        }
        .to_string()
    }
}

/// A structured admission refusal. The daemon never blocks or queues
/// unboundedly: a submit either returns a job id or one of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rejection {
    /// Machine-readable reason: `queue-full`, `draining`, `parse-error`,
    /// `bad-request`, `wal-error`, or `quarantined`.
    pub reason: String,
    /// Human-readable detail, when there is more to say.
    pub detail: Option<String>,
    /// Jobs currently queued (present for `queue-full`).
    pub queued: Option<u64>,
    /// The admission queue's capacity (present for `queue-full`).
    pub capacity: Option<u64>,
    /// The spec fingerprint, hex (present for `quarantined`) — pass it
    /// to the `unquarantine` op to lift the circuit breaker early.
    pub fingerprint: Option<String>,
    /// Milliseconds until the quarantine TTL expires (present for
    /// `quarantined`).
    pub retry_after_ms: Option<u64>,
}

impl Rejection {
    /// A bare rejection with only a reason tag.
    pub fn new(reason: &str) -> Rejection {
        Rejection {
            reason: reason.to_string(),
            detail: None,
            queued: None,
            capacity: None,
            fingerprint: None,
            retry_after_ms: None,
        }
    }

    /// Adds human-readable detail.
    pub fn with_detail(mut self, detail: String) -> Rejection {
        self.detail = Some(detail);
        self
    }

    /// JSON form (merged into the `ok:false` response).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("ok", Json::Bool(false)),
            ("reason", Json::Str(self.reason.clone())),
        ];
        if let Some(d) = &self.detail {
            pairs.push(("detail", Json::Str(d.clone())));
        }
        if let Some(q) = self.queued {
            pairs.push(("queued", Json::Int(q as i64)));
        }
        if let Some(c) = self.capacity {
            pairs.push(("capacity", Json::Int(c as i64)));
        }
        if let Some(fp) = &self.fingerprint {
            pairs.push(("fingerprint", Json::Str(fp.clone())));
        }
        if let Some(ms) = self.retry_after_ms {
            pairs.push(("retry_after_ms", Json::Int(ms as i64)));
        }
        obj(pairs)
    }

    /// Parses the JSON form of an `ok:false` response.
    pub fn from_json(v: &Json) -> Result<Rejection, String> {
        if !matches!(v.get("ok"), Some(Json::Bool(false))) {
            return Err(format!("not a rejection: {v}"));
        }
        Ok(Rejection {
            reason: v
                .get("reason")
                .and_then(Json::as_str)
                .ok_or("rejection missing `reason`")?
                .to_string(),
            detail: v.get("detail").and_then(Json::as_str).map(str::to_string),
            queued: v.get("queued").and_then(Json::as_int).map(|q| q as u64),
            capacity: v.get("capacity").and_then(Json::as_int).map(|c| c as u64),
            fingerprint: v
                .get("fingerprint")
                .and_then(Json::as_str)
                .map(str::to_string),
            retry_after_ms: v
                .get("retry_after_ms")
                .and_then(Json::as_int)
                .map(|m| m as u64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trip() {
        let spec = JobSpec {
            kind: JobKind::Synth,
            source: "system s { var n : 0..3; init n = 0; trans next(n) = n; }".into(),
            prop: Some("miss".into()),
            engine: "kind".into(),
            depth: Some(32),
            deadline_ms: Some(5000),
            params: vec!["a".into(), "b".into()],
            certify: true,
            idem: Some("client-7-42".into()),
        };
        assert_eq!(
            JobSpec::from_json(&parse(&spec.to_json().to_string()).unwrap()).unwrap(),
            spec
        );
        let bare = JobSpec::check("system s {}");
        assert_eq!(
            JobSpec::from_json(&parse(&bare.to_json().to_string()).unwrap()).unwrap(),
            bare
        );
    }

    #[test]
    fn fingerprint_ignores_deadline_and_idem() {
        let mut a = JobSpec::check("system s {}");
        let mut b = a.clone();
        b.deadline_ms = Some(100);
        b.idem = Some("k".into());
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.engine = "bdd".into();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn request_round_trip() {
        for req in [
            Request::Ping,
            Request::Submit(JobSpec::check("x")),
            Request::Status { job: 3 },
            Request::Wait { job: 9 },
            Request::Cancel { job: 1 },
            Request::Stats,
            Request::Unquarantine {
                fp: "00ff00ff00ff00ff".into(),
            },
            Request::Shutdown,
        ] {
            assert_eq!(Request::parse(&req.to_line()).unwrap(), req);
        }
        assert!(Request::parse("{\"op\":\"nope\"}").is_err());
        assert!(Request::parse("garbage").is_err());
        assert!(Request::parse("{\"op\":\"status\"}").is_err());
    }

    #[test]
    fn rejection_shape() {
        let r = Rejection {
            reason: "queue-full".into(),
            detail: None,
            queued: Some(8),
            capacity: Some(8),
            fingerprint: None,
            retry_after_ms: None,
        };
        let line = r.to_json().to_string();
        assert!(line.contains("\"ok\":false"));
        assert!(line.contains("\"reason\":\"queue-full\""));
        assert!(line.contains("\"queued\":8"));
        let mut q = Rejection::new("quarantined");
        q.fingerprint = Some("00ff00ff00ff00ff".into());
        q.retry_after_ms = Some(1234);
        let parsed = Rejection::from_json(&parse(&q.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(parsed, q);
    }
}
