//! The scenario matrix against the real engines: every base-grid
//! instance must produce exactly the verdict its generator predicts,
//! and the deliberately-unsafe instances must certify.

use verdict_mc::spec::{ExecContext, JobSpec};
use verdict_scenarios::{generate, Expectation, GenConfig, Pattern};

/// Every property of every base-grid instance gets the predicted
/// verdict through the unified spec execution path.
#[test]
fn base_grid_verdicts_match_expectations() {
    let ctx = ExecContext::default();
    for s in generate(&GenConfig::default()) {
        let mut spec = JobSpec::check(&s.source);
        spec.depth = Some(64);
        let (rows, _) = verdict_mc::spec::execute(&spec, &ctx);
        assert_eq!(rows.len(), s.properties.len(), "{}", s.id);
        for p in &s.properties {
            let row = rows
                .iter()
                .find(|r| r.name == p.name)
                .unwrap_or_else(|| panic!("{}: no verdict for {}", s.id, p.name));
            assert_eq!(
                row.verdict,
                p.expected.tag(),
                "{}/{}: expected {}, engines said {} ({})",
                s.id,
                p.name,
                p.expected.tag(),
                row.verdict,
                row.detail
            );
        }
    }
}

/// At least one deliberately-unsafe instance per pattern, and its
/// counterexample survives `--certify` (trace replay re-checks it).
#[test]
fn unsafe_instances_certify_per_pattern() {
    let ctx = ExecContext::default();
    for pattern in Pattern::ALL {
        let scenarios = generate(&GenConfig {
            seed: 0,
            samples: 0,
            patterns: vec![pattern],
        });
        let s = scenarios
            .iter()
            .find(|s| {
                s.properties
                    .iter()
                    .any(|p| p.expected == Expectation::Unsafe)
            })
            .unwrap_or_else(|| panic!("{pattern}: no deliberately-unsafe instance"));
        let unsafe_prop = s
            .properties
            .iter()
            .find(|p| p.expected == Expectation::Unsafe)
            .unwrap();
        let mut spec = JobSpec::check(&s.source);
        spec.prop = Some(unsafe_prop.name.to_string());
        spec.depth = Some(64);
        spec.certify = true;
        let (rows, _) = verdict_mc::spec::execute(&spec, &ctx);
        assert_eq!(rows.len(), 1, "{}", s.id);
        assert_eq!(
            rows[0].verdict, "unsafe",
            "{}/{}: certification rejected or verdict changed: {} ({})",
            s.id, unsafe_prop.name, rows[0].verdict, rows[0].detail
        );
    }
}
