//! Incident-driven scenario factory.
//!
//! The paper's §2 argument is that the 53 studied cloud incidents
//! reduce to a handful of control-loop interaction patterns. This
//! crate turns each [`Pattern`] into a *parameterized model template*:
//! a generator that, given concrete parameters (fleet sizes, load,
//! thresholds, quorums), emits a `.vd` model plus a property pack
//! (one invariant + one LTL obligation per template) together with the
//! ground-truth expectation for every property at that parameter
//! point. The expectation comes from a closed form or an exact Rust
//! simulation of the same transition function the template encodes, so
//! the sweep harness can score engine verdicts instead of merely
//! collecting them — a wrong verdict is a harness failure, not a shrug.
//!
//! Generation is deterministic: the same [`GenConfig`] (seed, sample
//! count, pattern filter) produces a byte-identical scenario list, so
//! a matrix run is reproducible end to end. The base grid alone spans
//! ≥ 8 instances per pattern with both safe and deliberately-unsafe
//! points, and `samples` adds seeded random draws on top.

use std::collections::BTreeSet;

use verdict_prng::Prng;

pub use verdict_incidents::Pattern;

/// Ground truth for one property at one parameter point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// The property holds on this instance.
    Safe,
    /// The property is violated on this instance (deliberately-unsafe
    /// grid points exercise counterexample search and certification).
    Unsafe,
}

impl Expectation {
    /// The verdict tag an engine must produce to match (`safe`/`unsafe`).
    pub fn tag(self) -> &'static str {
        match self {
            Expectation::Safe => "safe",
            Expectation::Unsafe => "unsafe",
        }
    }

    fn of(safe: bool) -> Expectation {
        if safe {
            Expectation::Safe
        } else {
            Expectation::Unsafe
        }
    }
}

/// Property class, for reporting (engines treat them differently).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PropKind {
    /// State invariant (`invariant name: …`).
    Invariant,
    /// Linear-time obligation (`ltl name: …`).
    Ltl,
}

impl PropKind {
    /// Stable lowercase tag.
    pub fn tag(self) -> &'static str {
        match self {
            PropKind::Invariant => "invariant",
            PropKind::Ltl => "ltl",
        }
    }
}

/// One property in a scenario's pack, with its ground truth.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioProperty {
    /// Property name as declared in the model source.
    pub name: &'static str,
    /// Invariant or LTL.
    pub kind: PropKind,
    /// Ground-truth expectation at this parameter point.
    pub expected: Expectation,
}

/// One concrete model instance: a `.vd` source with its property pack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Stable identifier (`<pattern>-<params>`), unique per instance.
    pub id: String,
    /// The incident pattern this instance exercises.
    pub pattern: Pattern,
    /// Concrete parameter values, in declaration order.
    pub params: Vec<(&'static str, i64)>,
    /// One-line description of the instance.
    pub summary: String,
    /// Complete `.vd` model source.
    pub source: String,
    /// Property pack with ground truth.
    pub properties: Vec<ScenarioProperty>,
}

impl Scenario {
    /// The expectation for a named property, if it is in the pack.
    pub fn expected(&self, prop: &str) -> Option<Expectation> {
        self.properties
            .iter()
            .find(|p| p.name == prop)
            .map(|p| p.expected)
    }
}

/// Generation parameters. `Default` is the full base grid, seed 0, no
/// extra samples.
#[derive(Clone, Debug, Default)]
pub struct GenConfig {
    /// Seed for the extra random draws (and nothing else — the base
    /// grid is fixed).
    pub seed: u64,
    /// Extra seeded random parameter points per pattern, on top of the
    /// base grid. Duplicates of existing points are skipped.
    pub samples: usize,
    /// Patterns to generate; empty means all five.
    pub patterns: Vec<Pattern>,
}

/// Ids of the Table 1 incidents that exhibit `pattern` (the
/// `verdict_incidents::by_pattern` index, projected to ids).
pub fn incident_ids(pattern: Pattern) -> Vec<&'static str> {
    verdict_incidents::by_pattern(pattern)
        .into_iter()
        .map(|i| i.id)
        .collect()
}

/// Generates the deterministic scenario matrix for `cfg`: per pattern,
/// the fixed base grid followed by `cfg.samples` seeded random draws
/// (deduplicated against the grid). Output order is stable: patterns
/// in [`Pattern::ALL`] order, grid before samples.
pub fn generate(cfg: &GenConfig) -> Vec<Scenario> {
    let wanted: Vec<Pattern> = if cfg.patterns.is_empty() {
        Pattern::ALL.to_vec()
    } else {
        cfg.patterns.clone()
    };
    let mut out = Vec::new();
    for (pi, pattern) in Pattern::ALL.into_iter().enumerate() {
        if !wanted.contains(&pattern) {
            continue;
        }
        let mut seen: BTreeSet<Vec<i64>> = BTreeSet::new();
        for point in base_grid(pattern) {
            let scenario = build(pattern, &point);
            seen.insert(point);
            out.push(scenario);
        }
        // Per-pattern stream so adding a pattern filter never shifts
        // another pattern's draws.
        let mut prng = Prng::seed_from_u64(cfg.seed ^ (0x5ce7a910 + pi as u64));
        let mut added = 0;
        let mut attempts = 0;
        while added < cfg.samples && attempts < cfg.samples * 20 + 100 {
            attempts += 1;
            let point = sample(pattern, &mut prng);
            if seen.insert(point.clone()) {
                out.push(build(pattern, &point));
                added += 1;
            }
        }
    }
    out
}

/// Integer ceiling division for strictly positive `b`.
fn ceil_div(a: i64, b: i64) -> i64 {
    (a + b - 1) / b
}

/// The fixed base grid for a pattern: ≥ 8 parameter points mixing safe
/// and deliberately-unsafe instances.
fn base_grid(pattern: Pattern) -> Vec<Vec<i64>> {
    match pattern {
        // (replicas, batch, capacity, load)
        Pattern::RolloutLb => vec![
            vec![4, 1, 2, 6],
            vec![4, 2, 2, 6],
            vec![6, 2, 2, 8],
            vec![6, 3, 2, 10],
            vec![8, 2, 2, 8],
            vec![8, 4, 2, 14],
            vec![10, 2, 3, 24],
            vec![10, 5, 3, 27],
        ],
        // (lo, hi, load, grow_per_node, shrink_per_node, initial)
        Pattern::AutoscalerDescheduler => vec![
            vec![1, 8, 10, 4, 2, 1],
            vec![1, 6, 10, 3, 4, 2],
            vec![2, 10, 24, 4, 2, 2],
            vec![1, 5, 9, 2, 3, 5],
            vec![2, 12, 30, 3, 1, 12],
            vec![1, 10, 16, 2, 2, 10],
            vec![1, 4, 12, 2, 5, 1],
            vec![3, 9, 40, 6, 5, 9],
            vec![1, 6, 11, 3, 4, 6],
        ],
        // (nodes, capacity, load, failure_budget)
        Pattern::CascadingFailover => vec![
            vec![4, 2, 4, 1],
            vec![4, 2, 6, 2],
            vec![5, 2, 6, 2],
            vec![5, 2, 8, 2],
            vec![6, 2, 6, 3],
            vec![6, 2, 10, 2],
            vec![6, 3, 9, 3],
            vec![8, 2, 10, 4],
        ],
        // (promote_at, detect_after)
        Pattern::ConfigCanary => vec![
            vec![3, 2],
            vec![3, 4],
            vec![4, 1],
            vec![4, 6],
            vec![5, 5],
            vec![5, 6],
            vec![6, 3],
            vec![2, 4],
        ],
        // (members, side_a, quorum)
        Pattern::SplitBrain => vec![
            vec![3, 1, 2],
            vec![3, 1, 1],
            vec![5, 2, 3],
            vec![5, 2, 2],
            vec![5, 3, 3],
            vec![7, 3, 4],
            vec![7, 3, 3],
            vec![9, 4, 4],
        ],
    }
}

/// One seeded random parameter point for a pattern, within the same
/// well-formedness envelope as the base grid.
fn sample(pattern: Pattern, prng: &mut Prng) -> Vec<i64> {
    match pattern {
        Pattern::RolloutLb => {
            let r = prng.gen_range_i64(2, 12);
            let b = prng.gen_range_i64(1, r - 1);
            let c = prng.gen_range_i64(1, 4);
            let l = prng.gen_range_i64(1, r * c);
            vec![r, b, c, l]
        }
        Pattern::AutoscalerDescheduler => {
            let lo = prng.gen_range_i64(1, 3);
            let hi = lo + prng.gen_range_i64(3, 9);
            let grow = prng.gen_range_i64(1, 6);
            let shrink = prng.gen_range_i64(1, 6);
            let load = prng.gen_range_i64(2, hi * grow.max(shrink));
            let n0 = prng.gen_range_i64(lo, hi);
            vec![lo, hi, load, grow, shrink, n0]
        }
        Pattern::CascadingFailover => {
            let n = prng.gen_range_i64(3, 10);
            let c = prng.gen_range_i64(1, 4);
            let l = prng.gen_range_i64(1, n * c);
            let k = prng.gen_range_i64(1, n - 1);
            vec![n, c, l, k]
        }
        Pattern::ConfigCanary => {
            let p = prng.gen_range_i64(2, 8);
            let e = prng.gen_range_i64(1, p + 2);
            vec![p, e]
        }
        Pattern::SplitBrain => {
            let m = prng.gen_range_i64(3, 9);
            let a = prng.gen_range_i64(1, m - 1);
            let q = prng.gen_range_i64(1, m);
            vec![m, a, q]
        }
    }
}

/// Builds the concrete scenario for a parameter point.
fn build(pattern: Pattern, point: &[i64]) -> Scenario {
    match pattern {
        Pattern::RolloutLb => rollout_lb(point[0], point[1], point[2], point[3]),
        Pattern::AutoscalerDescheduler => {
            autoscaler_descheduler(point[0], point[1], point[2], point[3], point[4], point[5])
        }
        Pattern::CascadingFailover => cascading_failover(point[0], point[1], point[2], point[3]),
        Pattern::ConfigCanary => config_canary(point[0], point[1]),
        Pattern::SplitBrain => split_brain(point[0], point[1], point[2]),
    }
}

fn scenario_id(pattern: Pattern, params: &[(&'static str, i64)]) -> String {
    let mut id = pattern.tag().to_string();
    for (k, v) in params {
        id.push('-');
        id.push_str(k);
        id.push_str(&v.to_string());
    }
    id
}

/// Rollout × load-balancer interference: a rolling update drains
/// `batch` of `replicas` instances at a time while the balancer keeps
/// spreading `load` over the survivors (capacity `cap` each). Safe iff
/// the drained fleet still covers the load:
/// `replicas - batch >= ceil(load / cap)`.
fn rollout_lb(replicas: i64, batch: i64, cap: i64, load: i64) -> Scenario {
    let low = replicas - batch;
    let need = ceil_div(load, cap);
    let params = vec![
        ("replicas", replicas),
        ("batch", batch),
        ("cap", cap),
        ("load", load),
    ];
    let source = format!(
        "// Rolling update cycles the fleet between {replicas} and {low} healthy\n\
         // replicas while the balancer needs {need} to carry load {load}.\n\
         system rollout_lb {{\n\
         \x20   var up : 0..{replicas};\n\
         \x20   var draining : bool;\n\
         \x20   init up = {replicas} & draining;\n\
         \x20   trans next(up) = if draining then (if up > {low} then up - 1 else up)\n\
         \x20                    else (if up < {replicas} then up + 1 else up);\n\
         \x20   trans next(draining) = if draining then up - 1 > {low} else up + 1 >= {replicas};\n\
         \x20   invariant no_overload: up >= {need};\n\
         \x20   ltl recovers: G (F (up = {replicas}));\n\
         }}\n"
    );
    Scenario {
        id: scenario_id(Pattern::RolloutLb, &params),
        pattern: Pattern::RolloutLb,
        summary: format!(
            "rollout drains {batch}/{replicas} replicas under load {load} (cap {cap}/replica)"
        ),
        params,
        source,
        properties: vec![
            ScenarioProperty {
                name: "no_overload",
                kind: PropKind::Invariant,
                expected: Expectation::of(low >= need),
            },
            ScenarioProperty {
                name: "recovers",
                kind: PropKind::Ltl,
                // The rollout cycle always returns to full strength.
                expected: Expectation::Safe,
            },
        ],
    }
}

/// The autoscaler step function: grow while the per-node load exceeds
/// `grow` units, shrink while it is under `shrink` units, clamped to
/// `[lo, hi]`. Grow wins ties, as in a scale-up-biased autoscaler.
fn autoscaler_step(n: i64, lo: i64, hi: i64, load: i64, grow: i64, shrink: i64) -> i64 {
    if load > n * grow {
        (n + 1).min(hi)
    } else if load < n * shrink {
        (n - 1).max(lo)
    } else {
        n
    }
}

/// Autoscaler × descheduler oscillation: a scale-up controller and a
/// bin-packing descheduler chase each other when the shrink threshold
/// exceeds the grow threshold, so no node count satisfies both. The
/// model is the exact deterministic closed loop; expectations come
/// from simulating it to its cycle.
fn autoscaler_descheduler(
    lo: i64,
    hi: i64,
    load: i64,
    grow: i64,
    shrink: i64,
    n0: i64,
) -> Scenario {
    let params = vec![
        ("lo", lo),
        ("hi", hi),
        ("load", load),
        ("grow", grow),
        ("shrink", shrink),
        ("n0", n0),
    ];
    let step = |n: i64| autoscaler_step(n, lo, hi, load, grow, shrink);

    // Exact simulation of (nodes, grew, flips) until the state repeats:
    // `few_flips` is violated iff flips ever exceeds 2, `settles` holds
    // iff the trajectory reaches a fixpoint of the step function.
    let mut seen = BTreeSet::new();
    let mut state = (n0, false, 0i64);
    let mut max_flips = 0;
    let mut settled = false;
    while seen.insert(state) {
        let (n, grew, flips) = state;
        let target = step(n);
        if target == n {
            settled = true;
            break;
        }
        let grows = target > n;
        let flip = grew != grows;
        let flips = if flip && flips < 4 { flips + 1 } else { flips };
        max_flips = max_flips.max(flips);
        state = (target, grows, flips);
    }

    // next(nodes) as a nested if over each concrete count, so the model
    // is the simulated function, literally.
    let mut target_expr = String::new();
    for n in lo..hi {
        target_expr.push_str(&format!("if nodes = {n} then {} else ", step(n)));
    }
    target_expr.push_str(&step(hi).to_string());
    let fixpoints: Vec<String> = (lo..=hi)
        .filter(|&n| step(n) == n)
        .map(|n| format!("nodes = {n}"))
        .collect();
    let stable_expr = if fixpoints.is_empty() {
        "false".to_string()
    } else {
        fixpoints.join(" | ")
    };
    let source = format!(
        "// Autoscaler (grow while load/node > {grow}) vs descheduler (shrink\n\
         // while load/node < {shrink}) over load {load}, {lo}..{hi} nodes.\n\
         system autoscaler_descheduler {{\n\
         \x20   var nodes : {lo}..{hi};\n\
         \x20   var grew : bool;\n\
         \x20   var flips : 0..4;\n\
         \x20   init nodes = {n0} & !grew & flips = 0;\n\
         \x20   define target = {target_expr};\n\
         \x20   define grows = target > nodes;\n\
         \x20   define shrinks = target < nodes;\n\
         \x20   define flip = (grew & shrinks) | (!grew & grows);\n\
         \x20   define stable = {stable_expr};\n\
         \x20   trans next(nodes) = target;\n\
         \x20   trans next(grew) = if grows then true else (if shrinks then false else grew);\n\
         \x20   trans next(flips) = if flip & flips < 4 then flips + 1 else flips;\n\
         \x20   invariant few_flips: flips <= 2;\n\
         \x20   ltl settles: F (G stable);\n\
         }}\n"
    );
    Scenario {
        id: scenario_id(Pattern::AutoscalerDescheduler, &params),
        pattern: Pattern::AutoscalerDescheduler,
        summary: format!(
            "autoscaler (>{grow}/node grows) vs descheduler (<{shrink}/node shrinks) at load {load}"
        ),
        params,
        source,
        properties: vec![
            ScenarioProperty {
                name: "few_flips",
                kind: PropKind::Invariant,
                expected: Expectation::of(max_flips <= 2),
            },
            ScenarioProperty {
                name: "settles",
                kind: PropKind::Ltl,
                expected: Expectation::of(settled),
            },
        ],
    }
}

/// Cascading failover: `budget` environment failures can drop nodes;
/// once the survivors no longer cover the load, overload failures
/// cascade to total loss. Safe iff the failure budget never pushes the
/// fleet past the overload threshold `nodes - ceil(load / cap)`.
fn cascading_failover(nodes: i64, cap: i64, load: i64, budget: i64) -> Scenario {
    let need = ceil_div(load, cap);
    let threshold = nodes - need;
    let params = vec![
        ("nodes", nodes),
        ("cap", cap),
        ("load", load),
        ("budget", budget),
    ];
    // Reachable maximum of `down`: the environment can spend its budget
    // while at or below the threshold; one step past it the cascade is
    // forced all the way to `nodes`.
    let reach = if budget <= threshold { budget } else { nodes };
    let source = format!(
        "// {budget} environment failures against {nodes} nodes; overload\n\
         // cascades once fewer than {need} survivors carry load {load}.\n\
         system cascading_failover {{\n\
         \x20   var down : 0..{nodes};\n\
         \x20   var budget : 0..{budget};\n\
         \x20   init down = 0 & budget = {budget};\n\
         \x20   trans (down > {threshold} & down < {nodes}) ->\n\
         \x20       (next(down) = down + 1 & next(budget) = budget);\n\
         \x20   trans (down <= {threshold}) ->\n\
         \x20       ((next(down) = down & next(budget) = budget) |\n\
         \x20        (budget > 0 & next(down) = down + 1 & next(budget) = budget - 1));\n\
         \x20   trans (down = {nodes}) -> (next(down) = down & next(budget) = budget);\n\
         \x20   invariant contained: down <= {budget};\n\
         \x20   ltl never_total_loss: G (down < {nodes});\n\
         }}\n"
    );
    Scenario {
        id: scenario_id(Pattern::CascadingFailover, &params),
        pattern: Pattern::CascadingFailover,
        summary: format!(
            "{budget} failures against {nodes} nodes needing {need} survivors for load {load}"
        ),
        params,
        source,
        properties: vec![
            ScenarioProperty {
                name: "contained",
                kind: PropKind::Invariant,
                expected: Expectation::of(reach <= budget),
            },
            ScenarioProperty {
                name: "never_total_loss",
                kind: PropKind::Ltl,
                expected: Expectation::of(reach < nodes),
            },
        ],
    }
}

/// Config-canary gone wrong: a bad config is observable only after
/// `detect` ticks of canary bake time, but promotion fires at tick
/// `promote`. Safe iff `detect <= promote` — the blast radius becomes
/// visible before the config ships fleet-wide.
fn config_canary(promote: i64, detect: i64) -> Scenario {
    let window = promote + 2;
    let params = vec![("promote", promote), ("detect", detect)];
    let source = format!(
        "// Canary bakes until tick {promote}, but a bad config is only\n\
         // detectable from tick {detect}; `bad` is a frozen environment bit.\n\
         system config_canary {{\n\
         \x20   var phase : {{canary, promoted, rolledback}};\n\
         \x20   var t : 0..{window};\n\
         \x20   var bad : bool;\n\
         \x20   init phase = canary & t = 0;\n\
         \x20   trans next(bad) = bad;\n\
         \x20   trans next(t) = if t < {window} then t + 1 else t;\n\
         \x20   trans next(phase) = if phase = canary\n\
         \x20       then (if bad & t >= {detect} then rolledback\n\
         \x20             else (if t >= {promote} then promoted else canary))\n\
         \x20       else phase;\n\
         \x20   invariant no_bad_promote: !(phase = promoted & bad);\n\
         \x20   ltl resolves: F (G (phase = promoted | phase = rolledback));\n\
         }}\n"
    );
    Scenario {
        id: scenario_id(Pattern::ConfigCanary, &params),
        pattern: Pattern::ConfigCanary,
        summary: format!(
            "canary promotes at tick {promote}, bad config detectable from tick {detect}"
        ),
        params,
        source,
        properties: vec![
            ScenarioProperty {
                name: "no_bad_promote",
                kind: PropKind::Invariant,
                expected: Expectation::of(detect <= promote),
            },
            ScenarioProperty {
                name: "resolves",
                kind: PropKind::Ltl,
                // Every trace ends promoted or rolled back.
                expected: Expectation::Safe,
            },
        ],
    }
}

/// Multi-cluster split-brain: a partition splits `members` into sides
/// of `side_a` and `members - side_a`; each side elects a primary iff
/// it holds `quorum` votes. Safe iff at most one side can reach quorum
/// — violated exactly when the quorum is misconfigured at or below
/// half the membership.
fn split_brain(members: i64, side_a: i64, quorum: i64) -> Scenario {
    let horizon = 4;
    let heal_at = horizon - 1;
    let pa = side_a >= quorum;
    let pb = (members - side_a) >= quorum;
    let params = vec![("members", members), ("side_a", side_a), ("quorum", quorum)];
    let source = format!(
        "// Partition splits {members} members into {side_a} | {rest}; each side\n\
         // elects a primary iff it holds {quorum} votes; heal at tick {horizon}.\n\
         system split_brain {{\n\
         \x20   var t : 0..{horizon};\n\
         \x20   var a_primary : bool;\n\
         \x20   var b_primary : bool;\n\
         \x20   init t = 0 & a_primary & !b_primary;\n\
         \x20   trans next(t) = if t < {horizon} then t + 1 else t;\n\
         \x20   trans next(a_primary) = if t >= {heal_at} then true else {pa};\n\
         \x20   trans next(b_primary) = if t >= {heal_at} then false else {pb};\n\
         \x20   invariant one_primary: !(a_primary & b_primary);\n\
         \x20   ltl heals: F (G (a_primary & !b_primary));\n\
         }}\n",
        rest = members - side_a,
    );
    Scenario {
        id: scenario_id(Pattern::SplitBrain, &params),
        pattern: Pattern::SplitBrain,
        summary: format!(
            "partition {side_a}|{rest} of {members} members with quorum {quorum}",
            rest = members - side_a
        ),
        params,
        source,
        properties: vec![
            ScenarioProperty {
                name: "one_primary",
                kind: PropKind::Invariant,
                expected: Expectation::of(!(pa && pb)),
            },
            ScenarioProperty {
                name: "heals",
                kind: PropKind::Ltl,
                // After the partition heals, side A holds the single
                // primary forever.
                expected: Expectation::Safe,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_grid_spans_the_matrix_floor() {
        let all = generate(&GenConfig::default());
        assert!(all.len() >= 40, "only {} base instances", all.len());
        for pattern in Pattern::ALL {
            let of: Vec<_> = all.iter().filter(|s| s.pattern == pattern).collect();
            assert!(of.len() >= 8, "{pattern}: only {} instances", of.len());
            // Every pattern must carry at least one deliberately-unsafe
            // instance (counterexample + certification coverage) and at
            // least one safe one.
            assert!(of.iter().any(|s| s
                .properties
                .iter()
                .any(|p| p.expected == Expectation::Unsafe)));
            assert!(of
                .iter()
                .any(|s| s.properties.iter().all(|p| p.expected == Expectation::Safe)));
        }
    }

    #[test]
    fn ids_are_unique_and_stable() {
        let all = generate(&GenConfig {
            seed: 7,
            samples: 3,
            patterns: Vec::new(),
        });
        let mut ids: Vec<_> = all.iter().map(|s| s.id.clone()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), all.len(), "duplicate scenario ids");
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig {
            seed: 42,
            samples: 5,
            patterns: Vec::new(),
        };
        assert_eq!(generate(&cfg), generate(&cfg));
        // A different seed moves the sampled tail but not the grid.
        let other = generate(&GenConfig {
            seed: 43,
            ..cfg.clone()
        });
        assert_ne!(generate(&cfg), other);
        let base = generate(&GenConfig::default());
        for (a, b) in base.iter().zip(generate(&cfg).iter()) {
            let _ = (a, b);
        }
        assert!(generate(&cfg).len() > base.len());
    }

    #[test]
    fn pattern_filter_restricts_output() {
        let only = generate(&GenConfig {
            seed: 0,
            samples: 2,
            patterns: vec![Pattern::SplitBrain],
        });
        assert!(!only.is_empty());
        assert!(only.iter().all(|s| s.pattern == Pattern::SplitBrain));
    }

    #[test]
    fn every_pattern_has_incident_ids() {
        for pattern in Pattern::ALL {
            assert!(
                !incident_ids(pattern).is_empty(),
                "{pattern} maps to no Table 1 incidents"
            );
        }
    }

    #[test]
    fn every_source_parses() {
        for s in generate(&GenConfig {
            seed: 1,
            samples: 4,
            patterns: Vec::new(),
        }) {
            let model = verdict_dsl::parse(&s.source)
                .unwrap_or_else(|e| panic!("{}: {e}\n{}", s.id, s.source));
            for p in &s.properties {
                assert!(
                    model.properties.iter().any(|(n, _)| n == p.name),
                    "{}: missing property {}",
                    s.id,
                    p.name
                );
            }
        }
    }
}
