//! Differential testing of the CDCL solver against brute-force enumeration
//! on random CNF instances, plus Tseitin pipeline round trips.

use verdict_logic::{Cnf, Lit, Var};
use verdict_prng::Prng;
use verdict_sat::Solver;

/// Brute-force satisfiability of a CNF over `n <= 20` variables.
fn brute_force_sat(cnf: &Cnf) -> bool {
    let n = cnf.num_vars();
    assert!(n <= 20);
    (0u64..1 << n).any(|bits| {
        let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        cnf.eval(&assignment)
    })
}

/// Random k-CNF with the given shape.
fn random_cnf(seed: u64, vars: u32, clauses: usize, max_len: usize) -> Cnf {
    let mut rng = Prng::seed_from_u64(seed);
    let mut cnf = Cnf::new();
    cnf.reserve_vars(vars);
    for _ in 0..clauses {
        let len = 1 + rng.gen_index(max_len);
        let lits: Vec<Lit> = (0..len)
            .map(|_| Var(rng.gen_index(vars as usize) as u32).lit(rng.gen_bool()))
            .collect();
        cnf.add_clause(lits);
    }
    cnf
}

#[test]
fn solver_matches_brute_force_on_many_seeds() {
    // Dense sweep over the sat/unsat transition region (ratio ~4.3).
    for seed in 0..300u64 {
        let vars = 4 + (seed % 7) as u32; // 4..=10
        let clauses = (vars as usize) * 4 + (seed % 9) as usize;
        let cnf = random_cnf(seed, vars, clauses, 3);
        let expected = brute_force_sat(&cnf);
        let mut solver = Solver::from_cnf(&cnf);
        match solver.solve() {
            verdict_sat::SolveResult::Sat(m) => {
                assert!(expected, "seed {seed}: solver SAT, brute force UNSAT");
                assert!(
                    cnf.eval(&m.as_slice()[..cnf.num_vars() as usize]),
                    "seed {seed}: model does not satisfy CNF"
                );
            }
            verdict_sat::SolveResult::Unsat => {
                assert!(!expected, "seed {seed}: solver UNSAT, brute force SAT");
            }
            verdict_sat::SolveResult::Unknown => panic!("no limits set"),
        }
    }
}

#[test]
fn assumptions_match_conditioning() {
    // Solving with assumption l must equal solving cnf + unit clause l.
    for seed in 0..100u64 {
        let vars = 5 + (seed % 4) as u32;
        let cnf = random_cnf(seed.wrapping_mul(77), vars, vars as usize * 4, 3);
        let assumption = Var((seed % vars as u64) as u32).lit(seed % 2 == 0);
        let mut s1 = Solver::from_cnf(&cnf);
        let r1 = s1.solve_with_assumptions(&[assumption]).is_sat();
        let mut cnf2 = cnf.clone();
        cnf2.add_clause([assumption]);
        let mut s2 = Solver::from_cnf(&cnf2);
        let r2 = s2.solve().is_sat();
        assert_eq!(r1, r2, "seed {seed} assumption {assumption}");
    }
}

#[test]
fn incremental_matches_monolithic() {
    // Adding clause batches incrementally must agree with a fresh solve.
    for seed in 0..60u64 {
        let vars = 6u32;
        let full = random_cnf(seed.wrapping_mul(1313), vars, 30, 3);
        let mut inc = Solver::new();
        inc.reserve_vars(vars);
        let mut reference = Cnf::new();
        reference.reserve_vars(vars);
        for (i, clause) in full.clauses().iter().enumerate() {
            inc.add_clause(clause.iter().copied());
            reference.add_clause(clause.iter().copied());
            if i % 7 == 6 {
                let got = inc.solve().is_sat();
                let want = brute_force_sat(&reference);
                assert_eq!(got, want, "seed {seed} after {i} clauses");
                if !got {
                    break; // solver is permanently unsat; so is reference
                }
            }
        }
    }
}

#[test]
fn unsat_core_is_sound() {
    // The returned core, asserted as units, must itself be UNSAT.
    for seed in 0..80u64 {
        let vars = 6u32;
        let cnf = random_cnf(seed.wrapping_mul(9091), vars, 18, 3);
        let assumptions: Vec<Lit> = (0..vars).map(|i| Var(i).lit(i % 2 == 0)).collect();
        let mut s = Solver::from_cnf(&cnf);
        if s.solve_with_assumptions(&assumptions).is_unsat() {
            let core = s.unsat_core().to_vec();
            if core.is_empty() {
                // Legitimate only when the CNF is unsatisfiable on its own.
                let mut base = Solver::from_cnf(&cnf);
                assert!(base.solve().is_unsat(), "seed {seed}: empty core");
                continue;
            }
            for l in &core {
                assert!(assumptions.contains(l), "seed {seed}: {l} not assumed");
            }
            let mut s2 = Solver::from_cnf(&cnf);
            for &l in &core {
                s2.add_clause([l]);
            }
            assert!(s2.solve().is_unsat(), "seed {seed}: core not sufficient");
        }
    }
}

/// Property-based end-to-end pipeline tests. The offline build container
/// cannot fetch proptest, so these only compile with
/// `cargo test --features proptest` after restoring the proptest
/// dev-dependency in Cargo.toml.
#[cfg(feature = "proptest")]
mod proptest_suite {
    use proptest::prelude::*;
    use verdict_logic::{Formula, Tseitin, Var};
    use verdict_sat::Solver;

    /// Random formula strategy mirroring the one in verdict-logic tests.
    fn formula(n: u32, depth: u32) -> BoxedStrategy<Formula> {
        let leaf = prop_oneof![
            (0..n).prop_map(|i| Formula::var(Var(i))),
            Just(Formula::tt()),
            Just(Formula::ff()),
        ];
        leaf.prop_recursive(depth, 48, 3, |inner| {
            prop_oneof![
                inner.clone().prop_map(Formula::not),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.xor(b)),
                (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| Formula::ite(c, t, e)),
            ]
        })
        .boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// End-to-end: formula -> Tseitin -> CDCL agrees with formula
        /// brute-force satisfiability.
        #[test]
        fn pipeline_formula_to_solver(f in formula(5, 4)) {
            let n = 5u32;
            let expected = (0u32..1 << n).any(|bits| f.eval(&|v| bits >> v.0 & 1 == 1));
            let mut enc = Tseitin::new();
            enc.reserve_inputs(n);
            enc.assert(&f);
            let cnf = enc.into_cnf();
            let mut solver = Solver::from_cnf(&cnf);
            match solver.solve() {
                verdict_sat::SolveResult::Sat(m) => {
                    prop_assert!(expected);
                    // The model restricted to inputs satisfies the formula.
                    prop_assert!(f.eval(&|v| m.value(v)));
                }
                verdict_sat::SolveResult::Unsat => prop_assert!(!expected),
                verdict_sat::SolveResult::Unknown => prop_assert!(false),
            }
        }
    }
}
