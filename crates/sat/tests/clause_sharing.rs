//! Clause-sharing soundness: verdicts survive imports, foreign and
//! poisoned clauses are refused, proof-logged solvers never import.

use verdict_logic::{Lit, Var};
use verdict_sat::{ClauseHub, ShareConfig, Solver};

/// Loads PHP(holes+1, holes) — hard UNSAT, lots of learnt glue.
fn load_pigeonhole(s: &mut Solver, holes: u32) {
    let pigeons = holes + 1;
    let var = |p: u32, h: u32| Var(p * holes + h);
    for p in 0..pigeons {
        s.add_clause((0..holes).map(|h| var(p, h).positive()));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                s.add_clause([var(p1, h).negative(), var(p2, h).negative()]);
            }
        }
    }
}

#[test]
fn same_prefix_peers_exchange_and_hit() {
    let hub = ClauseHub::with_config(
        2,
        ShareConfig {
            ring_capacity: 4096,
            ..ShareConfig::default()
        },
    );
    let mut a = Solver::new();
    let mut b = Solver::new();
    assert!(a.attach_sharing(hub.endpoint().unwrap()));
    assert!(b.attach_sharing(hub.endpoint().unwrap()));
    load_pigeonhole(&mut a, 7);
    load_pigeonhole(&mut b, 7);

    // A solves first and exports its glue clauses into the rings.
    assert!(a.solve().is_unsat());
    assert!(a.stats().clauses_exported > 0, "A exported nothing");

    // B picks the exports up at solve entry; the prefix chains match, so
    // they must all clear the guard, and on PHP they inevitably take
    // part in conflicts.
    assert!(b.solve().is_unsat());
    let sb = b.stats();
    assert!(sb.clauses_imported > 0, "B imported nothing");
    assert_eq!(sb.imports_rejected, 0, "matching prefixes never reject");
    assert!(sb.import_hits > 0, "imports never used in a conflict");
    // Sharing must speed up (or at least not corrupt) the second solve:
    // B sees strictly fewer conflicts than the solo baseline.
    let mut solo = Solver::new();
    load_pigeonhole(&mut solo, 7);
    assert!(solo.solve().is_unsat());
    assert!(
        sb.conflicts <= solo.stats().conflicts,
        "imports made the search worse: {} vs solo {}",
        sb.conflicts,
        solo.stats().conflicts
    );
}

#[test]
fn sat_instances_stay_sat_under_sharing() {
    // Exact-fit pigeonhole (n pigeons, n holes) is SAT; sharing must not
    // flip the verdict or produce a bogus model.
    let holes = 6u32;
    let load = |s: &mut Solver| {
        let var = |p: u32, h: u32| Var(p * holes + h);
        for p in 0..holes {
            s.add_clause((0..holes).map(|h| var(p, h).positive()));
        }
        for h in 0..holes {
            for p1 in 0..holes {
                for p2 in (p1 + 1)..holes {
                    s.add_clause([var(p1, h).negative(), var(p2, h).negative()]);
                }
            }
        }
    };
    let hub = ClauseHub::new(2);
    let mut a = Solver::new();
    let mut b = Solver::new();
    assert!(a.attach_sharing(hub.endpoint().unwrap()));
    assert!(b.attach_sharing(hub.endpoint().unwrap()));
    load(&mut a);
    load(&mut b);
    assert!(a.solve().is_sat());
    match b.solve() {
        verdict_sat::SolveResult::Sat(model) => {
            // Model must genuinely satisfy: each pigeon somewhere, no
            // hole doubly used.
            let var = |p: u32, h: u32| Var(p * holes + h);
            for p in 0..holes {
                assert!((0..holes).any(|h| model.value(var(p, h))));
            }
            for h in 0..holes {
                let occupants = (0..holes).filter(|&p| model.value(var(p, h))).count();
                assert!(occupants <= 1, "hole {h} double-booked");
            }
        }
        other => panic!("expected Sat, got {other:?}"),
    }
}

#[test]
fn foreign_prefix_is_rejected() {
    // A and B get *different* clause streams: every exchange must be
    // refused by the prefix guard, and B's verdict must stay correct.
    let hub = ClauseHub::new(2);
    let mut a = Solver::new();
    let mut b = Solver::new();
    assert!(a.attach_sharing(hub.endpoint().unwrap()));
    assert!(b.attach_sharing(hub.endpoint().unwrap()));
    load_pigeonhole(&mut a, 6);
    // B solves the SAT exact-fit variant over the same variable space.
    let holes = 6u32;
    let var = |p: u32, h: u32| Var(p * holes + h);
    for p in 0..holes {
        b.add_clause((0..holes).map(|h| var(p, h).positive()));
    }
    for h in 0..holes {
        for p1 in 0..holes {
            for p2 in (p1 + 1)..holes {
                b.add_clause([var(p1, h).negative(), var(p2, h).negative()]);
            }
        }
    }
    assert!(a.solve().is_unsat());
    assert!(b.solve().is_sat(), "foreign UNSAT clauses must not leak in");
    // A's exports are stamped with a prefix longer than B's chain, so at
    // this point B cannot tell "foreign" from "peer ahead": the clauses
    // are parked, not imported.
    let sb = b.stats();
    assert_eq!(sb.clauses_imported, 0, "guard admitted a foreign clause");
    // Grow B's chain past A's stamp with unrelated clauses. Now the
    // parked messages are decidable — B's hash at A's stamped length
    // differs — and the next solve entry must veto every one of them.
    for i in 0..64u32 {
        b.add_clause([Var(200 + i).positive()]);
    }
    assert!(b.solve().is_sat(), "padding clauses kept B satisfiable");
    let sb = b.stats();
    assert_eq!(sb.clauses_imported, 0, "guard admitted a foreign clause");
    assert!(
        sb.imports_rejected > 0,
        "exchanges happened and were vetoed"
    );
}

#[test]
fn poisoned_clause_is_rejected() {
    // A hostile/buggy peer ships a clause that would flip the verdict
    // (the empty-ish unit clauses forcing a contradiction), stamped with
    // a fabricated fingerprint. The guard must refuse it.
    let hub = ClauseHub::new(2);
    let mut attacker = hub.endpoint().unwrap();
    let mut victim = Solver::new();
    assert!(victim.attach_sharing(hub.endpoint().unwrap()));
    // Victim's instance: trivially SAT (x0 or x1).
    victim.add_clause([Var(0).positive(), Var(1).positive()]);
    // Poison: force both false. Wrong prefix hash — guard must refuse.
    attacker.export(&[Var(0).negative()], 1, 1, 0xdead_beef);
    attacker.export(&[Var(1).negative()], 1, 1, 0xdead_beef);
    assert!(
        victim.solve().is_sat(),
        "poisoned units flipped the verdict"
    );
    let s = victim.stats();
    assert_eq!(s.clauses_imported, 0);
    assert_eq!(s.imports_rejected, 2);
}

#[test]
fn proof_logged_solver_refuses_valid_imports() {
    // Even a guard-valid clause is refused while proof logging is on,
    // and the resulting proof still checks.
    let hub = ClauseHub::new(2);
    let mut a = Solver::new();
    let mut b = Solver::new();
    b.enable_proof();
    assert!(a.attach_sharing(hub.endpoint().unwrap()));
    assert!(b.attach_sharing(hub.endpoint().unwrap()));
    load_pigeonhole(&mut a, 5);
    load_pigeonhole(&mut b, 5);
    assert!(a.solve().is_unsat());
    assert!(b.solve().is_unsat());
    let sb = b.stats();
    assert_eq!(sb.clauses_imported, 0, "proof-logged solver imported");
    assert!(sb.imports_rejected > 0, "valid exchanges were offered");
    let proof = b.take_proof();
    verdict_sat::check_proof(&proof).expect("DRUP proof must still check");
}

#[test]
fn attach_after_clauses_is_refused() {
    let hub = ClauseHub::new(2);
    let mut s = Solver::new();
    s.add_clause([Var(0).positive()]);
    assert!(
        !s.attach_sharing(hub.endpoint().unwrap()),
        "prefix chain cannot cover pre-existing clauses"
    );
    assert!(!s.sharing_attached());
}

#[test]
fn incremental_peers_share_across_growing_prefixes() {
    // Peers that grow their databases in lockstep (the incremental
    // synthesis pattern) keep exchanging: clauses learnt at an earlier
    // prefix stay importable after both sides extend.
    let hub = ClauseHub::new(2);
    let mut a = Solver::new();
    let mut b = Solver::new();
    assert!(a.attach_sharing(hub.endpoint().unwrap()));
    assert!(b.attach_sharing(hub.endpoint().unwrap()));
    load_pigeonhole(&mut a, 6);
    load_pigeonhole(&mut b, 6);
    let assume = Lit::new(Var(100), true);
    // A solves under an assumption (irrelevant literal) and exports.
    assert!(a.solve_with_assumptions(&[assume]).is_unsat());
    // Both sides now extend identically; B then solves and must still
    // accept A's earlier-prefix clauses.
    a.add_clause([Var(200).positive(), Var(201).positive()]);
    b.add_clause([Var(200).positive(), Var(201).positive()]);
    assert!(b.solve().is_unsat());
    let sb = b.stats();
    assert!(sb.clauses_imported > 0, "earlier-prefix clauses refused");
    assert_eq!(sb.imports_rejected, 0);
}
