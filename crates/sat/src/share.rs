//! Learned-clause sharing between solvers working on the same CNF prefix.
//!
//! ManySAT/HordeSat-style exchange adapted to this workspace's parallel
//! layers (portfolio contenders, synthesis siblings): each solver owns a
//! [`ClauseHub`] [`Endpoint`] — one lock-free SPSC ring per peer
//! direction, so publication never takes a lock or runs a CAS loop —
//! and exports its good learnt clauses (bounded LBD / length, see
//! [`ShareConfig`]) as it learns them. Peers import at quiet points
//! (solve entry and restart boundaries, i.e. decision level 0).
//!
//! # Soundness
//!
//! A learnt clause is a logical consequence of the clause *database it
//! was learnt against* — importing it into a solver with a different
//! database would be unsound. The guard is a **prefix hash chain**:
//! every solver folds each clause it is handed through `add_clause`
//! into a running FNV-1a chain, `h[k] = fnv(h[k-1], clause_k)`, and an
//! export is stamped with the producer's `(k, h[k])` at learn time. The
//! importer accepts iff its *own* chain has the same hash at position
//! `k` — i.e. both solvers were fed byte-identical clause sequences up
//! to `k`, so the clause is a consequence of the importer's first `k`
//! inputs too (learnt clauses resolve only over input clauses and
//! previously-accepted consequences of the same prefix). Solvers over
//! different encodings (say, BMC's init-anchored unrolling vs.
//! k-induction's free unrolling) diverge at clause 1 and exchange
//! nothing, automatically.
//!
//! Two further rules keep `--certify` sound:
//!
//! * a solver with DRUP proof logging enabled never *imports* (an
//!   imported clause would appear in resolutions without a derivation,
//!   breaking RUP checking); certification always re-proves with fresh
//!   proof-logged solvers, so sharing among the exploration solvers
//!   never taints a certificate;
//! * imports are re-normalized and attached as *learnt* clauses, so
//!   database reduction can drop them like any other learnt clause.

use std::sync::{Arc, Mutex};

use verdict_logic::Lit;
use verdict_ring::spsc::{ring, Consumer, Producer};

/// Hash-chain seed: the FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one clause (as handed to `add_clause`, pre-normalization) into
/// the chain. Byte-identical clause streams — and only those — produce
/// equal chains.
pub(crate) fn chain_step(prev: u64, lits: &[Lit]) -> u64 {
    let mut h = prev;
    let mut fold = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    };
    for b in (lits.len() as u32).to_le_bytes() {
        fold(b);
    }
    for l in lits {
        for b in (l.index() as u32).to_le_bytes() {
            fold(b);
        }
    }
    h
}

/// The running `add_clause` fingerprint of one solver: `hashes[k]` is
/// the chain value after the first `k` clauses (`hashes[0]` is the FNV
/// offset basis, shared by all empty solvers).
#[derive(Debug, Clone)]
pub(crate) struct PrefixChain {
    hashes: Vec<u64>,
}

impl PrefixChain {
    pub(crate) fn new() -> PrefixChain {
        PrefixChain {
            hashes: vec![FNV_OFFSET],
        }
    }

    /// Records the next clause handed to `add_clause`.
    pub(crate) fn record(&mut self, lits: &[Lit]) {
        let prev = *self.hashes.last().expect("chain starts non-empty");
        self.hashes.push(chain_step(prev, lits));
    }

    /// Number of clauses recorded.
    pub(crate) fn len(&self) -> u32 {
        (self.hashes.len() - 1) as u32
    }

    /// The chain value at the current prefix end.
    pub(crate) fn head(&self) -> u64 {
        *self.hashes.last().expect("chain starts non-empty")
    }

    /// True iff this solver's first `len` clauses hash to `hash` — the
    /// import guard.
    pub(crate) fn covers(&self, len: u32, hash: u64) -> bool {
        self.hashes.get(len as usize).is_some_and(|&h| h == hash)
    }
}

/// One learnt clause in flight between solvers.
#[derive(Debug, Clone)]
pub struct SharedClause {
    /// The clause literals (producer's learnt clause, unminimized order).
    pub lits: Vec<Lit>,
    /// Producer-side literal-block-distance at learn time.
    pub lbd: u32,
    /// Producer's `add_clause` count when the clause was learnt.
    pub prefix_len: u32,
    /// Producer's prefix chain value at `prefix_len`.
    pub prefix_hash: u64,
}

/// Export filter and ring sizing for a [`ClauseHub`].
#[derive(Debug, Clone, Copy)]
pub struct ShareConfig {
    /// Export clauses with LBD at most this (glue clauses travel well).
    pub max_lbd: u32,
    /// Never export clauses longer than this, whatever their LBD.
    pub max_len: usize,
    /// Per-direction ring capacity, in clauses; the ring bounds memory,
    /// and a full ring simply drops the export (sharing is best-effort).
    pub ring_capacity: usize,
}

impl Default for ShareConfig {
    fn default() -> Self {
        ShareConfig {
            max_lbd: 6,
            max_len: 32,
            ring_capacity: 256,
        }
    }
}

/// Per-direction ring pair storage, taken by `endpoint()`.
type Slot = (usize, Producer<SharedClause>);
type RSlot = Consumer<SharedClause>;

/// A clause-exchange hub for up to `n` solvers: an `n × (n-1)` matrix of
/// SPSC rings, one per ordered peer pair, created up front so the hot
/// paths never allocate or lock. Hand one [`Endpoint`] to each solver
/// via [`ClauseHub::endpoint`]; when the hub is exhausted the remaining
/// solvers simply run without sharing.
#[derive(Debug)]
pub struct ClauseHub {
    /// `producers[i]` = the send halves solver `i` uses (one per peer).
    producers: Mutex<Vec<Option<Vec<Slot>>>>,
    /// `consumers[i]` = the receive halves solver `i` drains.
    consumers: Mutex<Vec<Option<Vec<RSlot>>>>,
    next: Mutex<usize>,
    config: ShareConfig,
}

impl ClauseHub {
    /// Builds a hub for `n` endpoints with the given config.
    pub fn with_config(n: usize, config: ShareConfig) -> Arc<ClauseHub> {
        let mut producers: Vec<Option<Vec<Slot>>> = (0..n).map(|_| Some(Vec::new())).collect();
        let mut consumers: Vec<Option<Vec<RSlot>>> = (0..n).map(|_| Some(Vec::new())).collect();
        for (i, row) in producers.iter_mut().enumerate() {
            let row = row.as_mut().expect("fresh slot");
            for (j, sink) in consumers.iter_mut().enumerate() {
                if i == j {
                    continue;
                }
                let (tx, rx) = ring::<SharedClause>(config.ring_capacity);
                row.push((j, tx));
                sink.as_mut().expect("fresh slot").push(rx);
            }
        }
        Arc::new(ClauseHub {
            producers: Mutex::new(producers),
            consumers: Mutex::new(consumers),
            next: Mutex::new(0),
            config,
        })
    }

    /// Builds a hub for `n` endpoints with [`ShareConfig::default`].
    pub fn new(n: usize) -> Arc<ClauseHub> {
        ClauseHub::with_config(n, ShareConfig::default())
    }

    /// Takes the next unclaimed endpoint, or `None` if all are handed
    /// out. Claiming locks; everything after is lock-free.
    pub fn endpoint(&self) -> Option<Endpoint> {
        let mut next = self.next.lock().unwrap_or_else(|e| e.into_inner());
        let id = *next;
        let producers = self
            .producers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get_mut(id)?
            .take()?;
        let consumers = self
            .consumers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get_mut(id)?
            .take()?;
        *next = id + 1;
        Some(Endpoint {
            producers,
            consumers,
            config: self.config,
        })
    }
}

/// One solver's handle into a [`ClauseHub`]: send halves to every peer,
/// receive halves from every peer. Attached to a solver with
/// [`crate::Solver::attach_sharing`].
#[derive(Debug)]
pub struct Endpoint {
    producers: Vec<Slot>,
    consumers: Vec<RSlot>,
    config: ShareConfig,
}

impl Endpoint {
    /// True iff the filter admits a clause of this shape. Unit and
    /// binary clauses always travel; otherwise LBD and length both
    /// gate.
    pub fn wants(&self, len: usize, lbd: u32) -> bool {
        len <= 2 || (lbd <= self.config.max_lbd && len <= self.config.max_len)
    }

    /// Publishes a learnt clause to every peer ring (best-effort: full
    /// rings drop). Returns how many peers received it.
    pub fn export(&mut self, lits: &[Lit], lbd: u32, prefix_len: u32, prefix_hash: u64) -> u64 {
        let mut delivered = 0u64;
        for (_, tx) in &mut self.producers {
            let msg = SharedClause {
                lits: lits.to_vec(),
                lbd,
                prefix_len,
                prefix_hash,
            };
            if tx.push(msg).is_ok() {
                delivered += 1;
            }
        }
        delivered
    }

    /// Drains every pending import into `f`.
    pub fn drain(&mut self, mut f: impl FnMut(SharedClause)) {
        for rx in &mut self.consumers {
            rx.drain(&mut f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_logic::Var;

    fn lit(v: u32, pos: bool) -> Lit {
        Lit::new(Var(v), pos)
    }

    #[test]
    fn chain_distinguishes_order_and_content() {
        let a = vec![lit(0, true), lit(1, false)];
        let b = vec![lit(1, false), lit(0, true)];
        let mut c1 = PrefixChain::new();
        let mut c2 = PrefixChain::new();
        assert_eq!(c1.head(), c2.head(), "empty chains agree");
        c1.record(&a);
        c2.record(&a);
        assert_eq!(c1.head(), c2.head(), "same stream, same chain");
        c1.record(&a);
        c2.record(&b);
        assert_ne!(c1.head(), c2.head(), "literal order matters");
        assert!(c1.covers(1, c2.hashes[1]), "shared prefix still covered");
        assert!(!c1.covers(2, c2.head()));
        assert!(!c1.covers(99, c2.head()), "beyond prefix never covered");
    }

    #[test]
    fn chain_separates_clause_boundaries() {
        // [a b] [c] vs [a] [b c]: same flat literal stream, different
        // clause boundaries, different chains (the length prefix).
        let (a, b, c) = (lit(0, true), lit(1, true), lit(2, true));
        let mut c1 = PrefixChain::new();
        c1.record(&[a, b]);
        c1.record(&[c]);
        let mut c2 = PrefixChain::new();
        c2.record(&[a]);
        c2.record(&[b, c]);
        assert_ne!(c1.head(), c2.head());
    }

    #[test]
    fn hub_hands_out_n_endpoints_and_routes_all_pairs() {
        let hub = ClauseHub::new(3);
        let mut eps: Vec<Endpoint> = (0..3).map(|_| hub.endpoint().expect("3 slots")).collect();
        assert!(hub.endpoint().is_none(), "hub exhausted after n");
        // 0 exports; 1 and 2 each see it once.
        let delivered = eps[0].export(&[lit(4, true)], 1, 7, 0xabcd);
        assert_eq!(delivered, 2);
        for peer in [1, 2] {
            let mut got = Vec::new();
            eps[peer].drain(|m| got.push(m));
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].lits, vec![lit(4, true)]);
            assert_eq!((got[0].prefix_len, got[0].prefix_hash), (7, 0xabcd));
        }
        let mut got = Vec::new();
        eps[0].drain(|m| got.push(m));
        assert!(got.is_empty(), "no self-delivery");
    }

    #[test]
    fn default_filter_gates_on_lbd_and_length() {
        let hub = ClauseHub::new(2);
        let ep = hub.endpoint().unwrap();
        assert!(ep.wants(1, 30), "units always travel");
        assert!(ep.wants(2, 30), "binaries always travel");
        assert!(ep.wants(10, 6));
        assert!(!ep.wants(10, 7), "LBD above threshold");
        assert!(!ep.wants(64, 2), "too long even with good LBD");
    }
}
