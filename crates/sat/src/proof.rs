//! DRUP-style clause proofs and an independent checker.
//!
//! When proof logging is enabled ([`crate::Solver::enable_proof`]), the
//! solver records every original clause it is given, every clause it
//! learns, and every learnt clause it deletes. A refutation ends with the
//! empty clause. The log is exactly a DRUP (Delete Reverse Unit
//! Propagation) proof: each learnt clause must be derivable from the
//! clauses active at that point by unit propagation alone — assert the
//! negation of every literal in the learnt clause, propagate, and demand a
//! conflict.
//!
//! [`check_proof`] replays the log with its own naive unit propagator. It
//! shares no code with the CDCL search, so a bug in the solver's watched
//! literals, conflict analysis, or clause minimization cannot also hide in
//! the checker. The propagator is deliberately simple (repeated full scans
//! to fixpoint) — proof checking is an audit path, not a hot path.
//!
//! Theory lemmas from DPLL(T) enter the solver through `add_clause` and are
//! therefore recorded as *inputs* (axioms): they are valid in the theory,
//! not propositionally derivable, so the checker treats them the same way
//! it treats user clauses. A proof checked here certifies "UNSAT given the
//! recorded inputs".

use std::collections::HashMap;

use verdict_logic::Lit;

/// One entry in a clause-proof log, in emission order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofEvent {
    /// An original (or theory-lemma) clause added to the database. Axiom.
    Input(Vec<Lit>),
    /// A clause the solver learnt; must pass reverse unit propagation.
    Learn(Vec<Lit>),
    /// A learnt clause removed from the database; the checker drops it so
    /// later RUP checks run against the clauses the solver actually had.
    Delete(Vec<Lit>),
}

/// Why a proof was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProofError {
    /// A `Learn` clause is not a reverse-unit-propagation consequence of
    /// the active database. Payload: event index and the offending clause.
    NotRup(usize, Vec<Lit>),
    /// A `Delete` event names a clause that is not active.
    UnknownDelete(usize, Vec<Lit>),
    /// The log never derives the empty clause, so it proves nothing.
    NoEmptyClause,
}

impl std::fmt::Display for ProofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofError::NotRup(i, c) => {
                write!(f, "proof event {i}: clause {c:?} is not RUP")
            }
            ProofError::UnknownDelete(i, c) => {
                write!(f, "proof event {i}: delete of inactive clause {c:?}")
            }
            ProofError::NoEmptyClause => {
                write!(f, "proof does not derive the empty clause")
            }
        }
    }
}

/// Three-valued assignment used by the checker's propagator.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Val {
    True,
    False,
    Undef,
}

/// A clause plus its liveness flag in the checker's database.
struct Entry {
    lits: Vec<Lit>,
    active: bool,
}

fn key(lits: &[Lit]) -> Vec<Lit> {
    let mut k = lits.to_vec();
    k.sort_unstable();
    k.dedup();
    k
}

/// Checks a DRUP-style proof log for a refutation.
///
/// Every `Learn` event is verified by reverse unit propagation against the
/// clauses active at that point; `Ok(())` additionally requires that some
/// `Learn` event derives the empty clause (directly, or via a clause whose
/// negated literals propagate to a conflict with nothing assumed — the
/// empty clause is the conventional terminator).
pub fn check_proof(events: &[ProofEvent]) -> Result<(), ProofError> {
    let mut db: Vec<Entry> = Vec::new();
    // Sorted-deduped clause -> indices of active copies, for deletes.
    let mut index: HashMap<Vec<Lit>, Vec<usize>> = HashMap::new();
    let mut refuted = false;

    for (i, ev) in events.iter().enumerate() {
        match ev {
            ProofEvent::Input(c) => {
                index.entry(key(c)).or_default().push(db.len());
                // Store the sorted-deduped form: a clause with a repeated
                // literal (CNF lowerings emit them) is semantically its
                // deduped self, and the naive propagator below would
                // otherwise count the duplicate as a second unassigned
                // literal and never treat the clause as unit.
                db.push(Entry {
                    lits: key(c),
                    active: true,
                });
            }
            ProofEvent::Learn(c) => {
                if !is_rup(&db, c) {
                    return Err(ProofError::NotRup(i, c.clone()));
                }
                if c.is_empty() {
                    refuted = true;
                }
                index.entry(key(c)).or_default().push(db.len());
                db.push(Entry {
                    lits: key(c),
                    active: true,
                });
            }
            ProofEvent::Delete(c) => {
                let slot = index
                    .get_mut(&key(c))
                    .and_then(|ids| ids.iter().position(|&id| db[id].active).map(|p| ids[p]));
                match slot {
                    Some(id) => db[id].active = false,
                    None => return Err(ProofError::UnknownDelete(i, c.clone())),
                }
            }
        }
    }
    if refuted {
        Ok(())
    } else {
        Err(ProofError::NoEmptyClause)
    }
}

/// Reverse unit propagation: assume the negation of every literal in
/// `clause`, propagate the active database to fixpoint, and report whether
/// a conflict (empty or all-false clause) is reached.
fn is_rup(db: &[Entry], clause: &[Lit]) -> bool {
    let mut assign: HashMap<u32, Val> = HashMap::new();
    let set = |assign: &mut HashMap<u32, Val>, l: Lit| -> bool {
        // Returns false on contradiction with an existing assignment.
        let want = if l.is_positive() {
            Val::True
        } else {
            Val::False
        };
        match assign.insert(l.var().0, want) {
            None => true,
            Some(prev) => prev == want,
        }
    };
    let value = |assign: &HashMap<u32, Val>, l: Lit| -> Val {
        match assign.get(&l.var().0) {
            None | Some(Val::Undef) => Val::Undef,
            Some(Val::True) => {
                if l.is_positive() {
                    Val::True
                } else {
                    Val::False
                }
            }
            Some(Val::False) => {
                if l.is_positive() {
                    Val::False
                } else {
                    Val::True
                }
            }
        }
    };

    // Assume the negated clause. A tautologous clause is trivially RUP.
    for &l in clause {
        if !set(&mut assign, !l) {
            return true;
        }
    }

    loop {
        let mut progressed = false;
        for e in db {
            if !e.active {
                continue;
            }
            let mut unassigned: Option<Lit> = None;
            let mut n_unassigned = 0usize;
            let mut satisfied = false;
            for &l in &e.lits {
                match value(&assign, l) {
                    Val::True => {
                        satisfied = true;
                        break;
                    }
                    Val::False => {}
                    Val::Undef => {
                        n_unassigned += 1;
                        unassigned = Some(l);
                    }
                }
            }
            if satisfied {
                continue;
            }
            match n_unassigned {
                0 => return true, // conflict: clause fully falsified
                1 => {
                    let u = unassigned.expect("counted one unassigned literal");
                    if !set(&mut assign, u) {
                        return true;
                    }
                    progressed = true;
                }
                _ => {}
            }
        }
        if !progressed {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_logic::Var;

    fn l(v: u32, pos: bool) -> Lit {
        Var(v).lit(pos)
    }

    #[test]
    fn hand_built_rup_proof_accepted() {
        // (a | b), (!a | b), (a | !b), (!a | !b) is UNSAT.
        // RUP derivation: learn (b), then (a)... then empty.
        let events = vec![
            ProofEvent::Input(vec![l(0, true), l(1, true)]),
            ProofEvent::Input(vec![l(0, false), l(1, true)]),
            ProofEvent::Input(vec![l(0, true), l(1, false)]),
            ProofEvent::Input(vec![l(0, false), l(1, false)]),
            ProofEvent::Learn(vec![l(1, true)]),
            ProofEvent::Learn(vec![]),
        ];
        assert_eq!(check_proof(&events), Ok(()));
    }

    #[test]
    fn bogus_learn_rejected() {
        let events = vec![
            ProofEvent::Input(vec![l(0, true), l(1, true)]),
            // (x2) is not implied by anything.
            ProofEvent::Learn(vec![l(2, true)]),
            ProofEvent::Learn(vec![]),
        ];
        assert!(matches!(
            check_proof(&events),
            Err(ProofError::NotRup(1, _))
        ));
    }

    #[test]
    fn missing_empty_clause_rejected() {
        let events = vec![
            ProofEvent::Input(vec![l(0, true)]),
            ProofEvent::Input(vec![l(0, false), l(1, true)]),
            ProofEvent::Learn(vec![l(1, true)]),
        ];
        assert_eq!(check_proof(&events), Err(ProofError::NoEmptyClause));
    }

    #[test]
    fn delete_of_unknown_clause_rejected() {
        let events = vec![
            ProofEvent::Input(vec![l(0, true)]),
            ProofEvent::Delete(vec![l(1, true)]),
        ];
        assert!(matches!(
            check_proof(&events),
            Err(ProofError::UnknownDelete(1, _))
        ));
    }

    #[test]
    fn deleted_clause_no_longer_supports_rup() {
        // (a), (!a | b) |- (b) by RUP — but not once (a) is deleted.
        let events = vec![
            ProofEvent::Input(vec![l(0, true)]),
            ProofEvent::Input(vec![l(0, false), l(1, true)]),
            ProofEvent::Delete(vec![l(0, true)]),
            ProofEvent::Learn(vec![l(1, true)]),
        ];
        assert!(matches!(
            check_proof(&events),
            Err(ProofError::NotRup(3, _))
        ));
    }

    #[test]
    fn duplicate_literals_still_propagate() {
        // CNF lowerings emit clauses like (!a | b | b). The checker must
        // treat them as their deduped selves — here (!a | b) and (!a | !b)
        // resolve with (a) to the empty clause, and each RUP step needs
        // the duplicated clause to become unit.
        let events = vec![
            ProofEvent::Input(vec![l(0, true)]),
            ProofEvent::Input(vec![l(0, false), l(1, true), l(1, true)]),
            ProofEvent::Input(vec![l(0, false), l(1, false), l(1, false)]),
            ProofEvent::Learn(vec![l(1, true)]),
            ProofEvent::Learn(vec![]),
        ];
        assert_eq!(check_proof(&events), Ok(()));
    }

    #[test]
    fn tautology_is_trivially_rup() {
        let events = vec![
            ProofEvent::Input(vec![l(0, true), l(0, false)]),
            ProofEvent::Learn(vec![l(1, true), l(1, false)]),
            ProofEvent::Input(vec![l(2, true)]),
            ProofEvent::Input(vec![l(2, false)]),
            ProofEvent::Learn(vec![]),
        ];
        assert_eq!(check_proof(&events), Ok(()));
    }
}
